#!/usr/bin/env python3
"""The order workflow under full observability: spans, metrics, replay.

Runs the order-fulfilment workflow with fault injection (a flaky payment
gateway and a permanently dead shipping service) while all three
observability sinks are on, then shows what each one captured:

1. the *span tree* — per-phase timings through translate → Apply →
   Excise → scheduling, with one ``engine.step`` per fired event;
2. the *metrics registry* — the Theorem 5.11 size accounting recorded at
   compile time, the engine's attempt/failure/reroute counters, and
   per-activity latency percentiles;
3. the *flight recorder* — the journal of every scheduler decision,
   written to a JSONL trace and replayed to verify the run is
   deterministic: same schedule, same final database digest.

Run:  python examples/traced_orders.py
"""

import io

from repro import Observability, compile_workflow
from repro.core.engine import WorkflowEngine
from repro.core.resilience import (
    ChaosOracle,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)
from repro.ctr.pretty import pretty
from repro.obs import read_trace, replay_trace, write_trace
from repro.workflows.orders import PAYMENT, SHIPPING, orders_specification


def optimistic(eligible, db):
    """Prefer commits over aborts and cancellations (the happy path)."""
    ranked = sorted(eligible, key=lambda e: (e.startswith(("abort_", "cancel_")), e))
    return ranked[0]


def main() -> None:
    goal, constraints = orders_specification(with_triggers=False)
    obs = Observability.enabled()

    compiled = compile_workflow(goal, constraints, obs=obs)

    clock = VirtualClock()
    chaos = ChaosOracle(clock=clock, seed=11)
    chaos.fail_event(PAYMENT.commit, attempts=2)   # flaky: heals on try 3
    chaos.fail_event(SHIPPING.start)               # dead: forces a reroute
    policies = ResiliencePolicy()
    policies.register(PAYMENT.commit,
                      RetryPolicy.exponential(4, base_delay=0.5))

    engine = WorkflowEngine(compiled, oracle=chaos, strategy=optimistic,
                            policies=policies, clock=clock, obs=obs)
    report = engine.run()

    print("schedule:", " -> ".join(report.schedule))
    print(report.summary())
    print()

    print("span tree")
    print("=========")
    print(obs.tracer.render())
    print()

    print(obs.metrics.render())
    print()

    ratio = obs.metrics.gauge("compile.thm511_ratio").value
    n = obs.metrics.gauge("compile.constraints_N").value
    d = obs.metrics.gauge("compile.arity_d").value
    print(f"Theorem 5.11: N={n:g} constraints of arity d={d:g}; "
          f"|Apply(C,G)| used {ratio:.3g}x of the d^N*|G| budget")
    print()

    # Round-trip the run through a trace file and replay it. The header
    # carries everything replay needs: the specification, the chaos plan,
    # and the retry policies.
    spec_text = "goal: " + pretty(goal) + "\n" + "".join(
        f"constraint: {c}\n" for c in constraints
    )
    buffer = io.StringIO()
    write_trace(
        buffer,
        header={"spec": spec_text, "chaos": chaos.plan(),
                "policies": policies.to_dict(), "strategy": "optimistic"},
        spans=obs.tracer.spans,
        recorder=obs.recorder,
        summary={"schedule": list(report.schedule),
                 "digest": report.database.digest(),
                 "attempts": dict(report.attempts),
                 "failures": len(report.failures),
                 "reroutes": len(report.reroutes)},
    )
    buffer.seek(0)
    result = replay_trace(read_trace(buffer))
    assert result.matches, result.mismatches
    print(f"flight recorder: {len(obs.recorder.decisions)} decisions "
          f"journaled; replay reproduced schedule and digest "
          f"{result.digest} ✓")


if __name__ == "__main__":
    main()
