#!/usr/bin/env python3
"""Resilient payments: loops, sagas, and workflow evolution.

This example exercises the Section 7 extensions implemented in this
library on one scenario — a payment pipeline that

* *retries* the gateway call up to 3 times (bounded loop unrolling, with
  per-iteration event renaming restoring the unique-event property);
* runs a *saga* of reserve → charge → notify with compensations, verified
  correct invariant-by-invariant via Theorem 5.9;
* *evolves*: a new compliance constraint arrives after deployment and is
  compiled into the already-compiled workflow incrementally;
* is *audited* with the static analyzer (mandatory/optional/dead events,
  guaranteed orderings).

Run:  python examples/resilient_payments.py
"""

from repro import atoms, compile_workflow
from repro.constraints import absent, disj, must, order
from repro.core.incremental import add_constraint
from repro.core.saga import SagaStep, saga_goal, saga_invariants
from repro.core.static import analyze
from repro.core.verify import verify_property
from repro.ctr.unroll import bounded_loop, occurrence_names


def retry_section():
    """Call the gateway, retrying on failure, at most 3 attempts."""
    (attempt,) = atoms("call_gateway")
    (succeed,) = atoms("gateway_ok")
    loop = bounded_loop(attempt, bound=3, exit_goal=succeed)
    print("Retry loop (bounded unrolling, events renamed per iteration):")
    from repro.ctr.pretty import pretty

    print(" ", pretty(loop))

    # Policy: giving up without any attempt is not allowed - the gateway
    # must be called at least once before gateway_ok.
    first_attempt = occurrence_names("call_gateway", 3)[0]
    policy = order(first_attempt, "gateway_ok")
    compiled = compile_workflow(loop, [policy])
    print(f"  with 'at least one attempt' policy: consistent={compiled.consistent}")
    schedules = sorted(compiled.schedules())
    for schedule in schedules:
        print("   ", " -> ".join(schedule))
    print()
    return loop, [policy]


def saga_section():
    steps = [SagaStep("reserve"), SagaStep("charge"), SagaStep("notify")]
    goal = saga_goal(steps)
    print(f"Saga over {len(steps)} steps: verifying "
          f"{len(saga_invariants(steps))} invariants (Theorem 5.9)...")
    holds = 0
    for name, invariant in saga_invariants(steps):
        result = verify_property(goal, [], invariant)
        assert result.holds, name
        holds += 1
    print(f"  all {holds} invariants hold "
          "(compensation order, no-undo-without-commit, ...)")
    print()
    return goal


def evolution_section(goal, constraints):
    print("Workflow evolution: a compliance rule arrives post-deployment.")
    compiled = compile_workflow(goal, constraints)
    print(f"  v1 compiled: consistent={compiled.consistent}, "
          f"size={compiled.compiled_size}")

    # New rule: after two failed attempts, stop - third attempts are now
    # forbidden by the fraud team.
    third = occurrence_names("call_gateway", 3)[2]
    v2 = add_constraint(compiled, absent(third))
    print(f"  v2 (+ 'no third attempt'): consistent={v2.consistent}, "
          f"size={v2.compiled_size}")
    print("  v2 schedules:")
    for schedule in sorted(v2.schedules()):
        print("   ", " -> ".join(schedule))

    # And one rule too far: requiring a third attempt AND forbidding it.
    v3 = add_constraint(v2, must(third))
    print(f"  v3 (+ contradictory 'always three attempts'): "
          f"consistent={v3.consistent}  <- caught at design time")
    print()
    return v2


def audit_section(compiled):
    print("Static audit of the evolved workflow:")
    report = analyze(compiled)
    print("  " + report.describe().replace("\n", "\n  "))


def main() -> None:
    loop, policies = retry_section()
    saga_section()
    evolved = evolution_section(loop, policies)
    audit_section(evolved)


if __name__ == "__main__":
    main()
