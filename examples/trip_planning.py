#!/usr/bin/env python3
"""Trip planning: verification, counterexamples, and real execution.

The trip workflow books transport (flight or train), lodging, and an
optional rental car concurrently, then charges the card inside an isolated
(⊙) payment block. Global constraints tie the branches together — e.g. a
rental car requires a flight, and the card is only charged once the hotel
is secured.

This example demonstrates the *analysis* side of the paper:

* property verification with most-general counterexamples (Theorem 5.9);
* redundancy detection (Theorem 5.10);
* executing one schedule against a live database via the transition oracle.

Run:  python examples/trip_planning.py
"""

from repro import (
    Database,
    TransitionOracle,
    WorkflowEngine,
    compile_workflow,
    must,
    order,
    pretty,
    verify_property,
)
from repro.constraints import klein_order, requires_prior
from repro.core.verify import redundant_constraints
from repro.db.oracle import insert_op
from repro.workflows.trip import trip_constraints, trip_goal


def main() -> None:
    goal, constraints = trip_goal(), trip_constraints()
    compiled = compile_workflow(goal, constraints)
    print(f"Trip workflow: consistent={compiled.consistent}, "
          f"|Apply(C,G)|={compiled.applied_size}")
    print()

    # -- Verification (Theorem 5.9) ------------------------------------------
    print("Verification:")
    checks = [
        ("hotel is always booked before the charge", order("book_hotel", "charge_card")),
        ("a car is only rented after a flight exists", klein_order("reserve_flight", "rent_car")),
        ("every trip issues a ticket", must("issue_ticket")),  # false: trains!
    ]
    for description, prop in checks:
        result = verify_property(goal, constraints, prop)
        status = "HOLDS" if result.holds else "FAILS"
        print(f"  [{status}] {description}")
        if not result.holds:
            print(f"          violating schedule: {' -> '.join(result.witness)}")
            print(f"          most general counterexample: "
                  f"{pretty(result.counterexample)[:90]}...")
    print()

    # -- Redundancy (Theorem 5.10) --------------------------------------------
    # Add a constraint implied by the rest and let the analyzer find it.
    extended = constraints + [requires_prior("issue_voucher", "book_hotel")]
    redundant = redundant_constraints(goal, extended)
    print("Redundancy analysis over the extended constraint set:")
    for constraint in extended:
        marker = "redundant" if constraint in redundant else "load-bearing"
        print(f"  [{marker:12}] {constraint}")
    print()

    # -- Execution --------------------------------------------------------------
    oracle = TransitionOracle()
    oracle.register("reserve_flight", insert_op("reservation", "AF-007", "confirmed"))
    oracle.register("book_hotel", insert_op("reservation", "Hotel-Luna", "confirmed"))
    oracle.register("rent_car", insert_op("reservation", "Car-42", "confirmed"))
    oracle.register("charge_card", insert_op("ledger", "charge", 1840))

    engine = WorkflowEngine(compiled, oracle=oracle, db=Database())
    report = engine.run()
    print("Executed schedule:")
    print(" ", " -> ".join(report.schedule))
    print("Database after execution:")
    for row in report.database.query("reservation"):
        print(f"  reservation{row}")
    for row in report.database.query("ledger"):
        print(f"  ledger{row}")


if __name__ == "__main__":
    main()
