#!/usr/bin/env python3
"""Order fulfilment: triggers, transactional tasks, and failure atomicity.

The order workflow runs three transactional tasks (payment, inventory,
shipping) modelled by their start/commit/abort events, wired together with
Singh-style intertask dependencies, plus an ECA trigger ("on inventory
commit, if stock is low, restock") compiled into the control flow.

Demonstrated here:

* triggers as part of the control flow graph (Section 1 / [7]);
* run-time gating of the trigger's condition against the database;
* saga-style abort cascades enforced by the compiled constraints;
* failure atomicity: a crashing activity rolls the database back.

Run:  python examples/order_fulfillment.py
"""

from repro import Database, TransitionOracle, WorkflowEngine, compile_workflow
from repro.db.oracle import delete_op, insert_op
from repro.errors import ExecutionError
from repro.workflows.orders import INVENTORY, PAYMENT, SHIPPING, orders_specification


def build_oracle(stock: int) -> TransitionOracle:
    oracle = TransitionOracle()
    oracle.register("place_order", insert_op("orders", 1, "open"))
    oracle.register(INVENTORY.commit, delete_op("stock_units", stock))
    oracle.register("restock", insert_op("stock_units", 100))
    oracle.register(SHIPPING.commit, insert_op("orders", 1, "shipped"))
    return oracle


def optimistic(eligible, db):
    """Prefer commits over aborts and cancellations (the happy path)."""
    ranked = sorted(eligible, key=lambda e: (e.startswith(("abort_", "cancel_")), e))
    return ranked[0]


def run_with_stock(stock_low: bool) -> None:
    goal, constraints = orders_specification(with_triggers=True)
    compiled = compile_workflow(goal, constraints)

    db = Database()
    if stock_low:
        db.insert("stock_low", "yes")
    engine = WorkflowEngine(compiled, oracle=build_oracle(3), db=db, strategy=optimistic)
    report = engine.run()
    label = "low stock" if stock_low else "stock ok"
    print(f"[{label}] schedule: {' -> '.join(report.schedule)}")
    restocked = "restock" in report.schedule
    print(f"[{label}] restock trigger fired: {restocked}")
    print()


def demonstrate_failure_atomicity() -> None:
    goal, constraints = orders_specification(with_triggers=False)
    compiled = compile_workflow(goal, constraints)

    def explode(db):
        raise RuntimeError("card processor unreachable")

    oracle = TransitionOracle()
    oracle.register("place_order", insert_op("orders", 1, "open"))
    oracle.register(PAYMENT.start, explode)

    db = Database()
    engine = WorkflowEngine(compiled, oracle=oracle, db=db)
    try:
        engine.run()
    except ExecutionError as exc:
        print(f"Activity failed: {exc}")
    print(f"Database rolled back: orders={db.query('orders')}, "
          f"log={db.log.events()}")


def main() -> None:
    print("Consistency check and compiled schedules")
    goal, constraints = orders_specification()
    compiled = compile_workflow(goal, constraints)
    print(f"  consistent: {compiled.consistent}")
    schedules = list(compiled.schedules(limit=100_000))
    print(f"  allowed executions: {len(schedules)}")
    aborting = [s for s in schedules if INVENTORY.abort in s]
    print(f"  executions with an inventory abort: {len(aborting)}")
    assert all(PAYMENT.abort in s for s in aborting), "saga cascade violated!"
    print("  every inventory abort cascades into a payment abort (saga) ✓")
    print()

    print("Trigger gating at run time")
    run_with_stock(stock_low=False)
    run_with_stock(stock_low=True)

    print("Failure atomicity")
    demonstrate_failure_atomicity()


if __name__ == "__main__":
    main()
