#!/usr/bin/env python3
"""Proposition 4.1 live: the workflow verifier is (at least) a SAT solver.

The paper shows that workflow consistency checking is NP-complete even
with existence constraints only, via a reduction from propositional
satisfiability. This example runs the reduction in the forward direction:
it turns a CNF formula into a workflow — one OR node per variable, all in
parallel — plus one existence constraint per clause, and lets the
consistency checker (Theorem 5.8) decide satisfiability. An allowed
schedule of the compiled workflow *is* a satisfying assignment.

Run:  python examples/sat_via_workflows.py
"""

from repro import compile_workflow, pretty
from repro.analysis.sat import (
    Cnf,
    assignment_from_schedule,
    brute_force_sat,
    cnf_to_workflow,
    random_cnf,
)


def show(cnf: Cnf, title: str) -> None:
    print(f"{title}:")
    clause_text = " and ".join(
        "(" + " or ".join(("x" if l > 0 else "not x") + str(abs(l)) for l in clause) + ")"
        for clause in cnf.clauses
    )
    print(f"  CNF: {clause_text}")

    goal, constraints = cnf_to_workflow(cnf)
    print(f"  workflow: {pretty(goal)}")
    print(f"  constraints: {len(constraints)} existence constraints, e.g. {constraints[0]}")

    compiled = compile_workflow(goal, constraints)
    if not compiled.consistent:
        print("  -> workflow inconsistent: the formula is UNSATISFIABLE")
    else:
        schedule = compiled.scheduler().run()
        assignment = assignment_from_schedule(schedule, cnf.n_vars)
        model = ", ".join(f"x{v}={'T' if b else 'F'}" for v, b in sorted(assignment.items()))
        print(f"  -> consistent; schedule {schedule}")
        print(f"     reads back the model: {model}")
        assert cnf.evaluate(assignment)
    # Sanity: agree with brute force.
    assert compiled.consistent == (brute_force_sat(cnf) is not None)
    print()


def main() -> None:
    show(Cnf(3, ((1, 2, 3), (-1, 2, -3), (1, -2, 3))), "A satisfiable instance")
    show(Cnf(2, ((1, 2), (1, -2), (-1, 2), (-1, -2))), "An unsatisfiable instance")
    show(random_cnf(6, 10, seed=2026), "A random 3-CNF (n=6, m=10)")


if __name__ == "__main__":
    main()
