#!/usr/bin/env python3
"""Graduate registration: sub-workflows, auditing, and what-if analysis.

The registration process is specified top-down: the main workflow mentions
``advising``, ``enrollment``, ``funding`` and ``finalize`` as if they were
atomic activities, and concurrent-Horn *rules* supply their definitions
(two alternative definitions for enrollment). This example audits the
specification the way a workflow designer would:

* compile and inspect the allowed executions;
* verify departmental policies (Theorem 5.9), getting concrete
  counterexamples when a policy does not hold;
* test a *proposed* extra policy for consistency before adopting it
  (Theorem 5.8) — the inconsistency feedback arrives at design time, not
  as a stuck workflow in production.

Run:  python examples/registration_audit.py
"""

from repro import compile_workflow, must, order, verify_property
from repro.constraints import absent, conj, disj, klein_existence
from repro.workflows.registration import registration_specification


def main() -> None:
    goal, constraints, rules = registration_specification()
    compiled = compile_workflow(goal, constraints, rules=rules)
    print(f"Registration workflow: consistent={compiled.consistent}")
    schedules = list(compiled.schedules(limit=100_000))
    print(f"Allowed executions: {len(schedules)}")
    late = [s for s in schedules if "pay_late_fee" in s]
    print(f"  ...of which late registrations: {len(late)}")
    print()

    print("Policy audit:")
    policies = [
        ("advising precedes enrollment",
         disj(order("sign_plan", "enroll_online"), order("sign_plan", "enroll_in_person"))),
        ("every student eventually pays tuition", must("pay_tuition")),
        ("TA applicants never pay a late fee",
         disj(absent("apply_ta"), absent("pay_late_fee"))),
        ("everyone applies for funding", disj(must("apply_ta"), must("apply_ra"))),
    ]
    for description, policy in policies:
        result = verify_property(goal, constraints, policy, rules=rules)
        status = "HOLDS" if result.holds else "FAILS"
        print(f"  [{status}] {description}")
        if not result.holds:
            print(f"          counterexample: {' -> '.join(result.witness)}")
    print()

    print("What-if: adopt 'RA holders must enroll in person' as a new rule?")
    proposal = klein_existence("apply_ra", "enroll_in_person")
    extended = constraints + [proposal]
    check = compile_workflow(goal, extended, rules=rules)
    print(f"  extended specification consistent: {check.consistent}")
    if check.consistent:
        remaining = list(check.schedules(limit=100_000))
        print(f"  executions remaining: {len(remaining)} (was {len(schedules)})")
        ra = [s for s in remaining if "apply_ra" in s]
        print(f"  RA paths left: {len(ra)}")
        if not ra:
            print("  -> the proposal silently kills every RA path: late fees are"
                  " waived for RAs, but in-person enrollment requires the fee."
                  " Better reject it.")


if __name__ == "__main__":
    main()
