#!/usr/bin/env python3
"""Quickstart: specify, analyze, and execute a workflow in CTR.

Walks through the full pipeline of the paper on its own Figure 1 example:

1. draw the control flow graph (AND/OR splits, transition conditions);
2. translate it into a concurrent-Horn goal — the paper's formula (1);
3. state global temporal constraints from the CONSTR algebra;
4. compile the constraints *into* the graph (Apply + Excise);
5. check consistency, schedule pro-actively, and execute.

Run:  python examples/quickstart.py
"""

from repro import compile_workflow, goal_size, pretty, pretty_unicode, to_goal
from repro.constraints import klein_existence, klein_order
from repro.graph import ControlFlowGraph


def main() -> None:
    # 1. The control flow graph of Figure 1.
    graph = ControlFlowGraph()
    graph.set_split("a", "and")           # both branches of a run concurrently
    graph.add_arc("a", "b", condition="cond1")
    graph.add_arc("a", "c", condition="cond2")
    graph.set_split("b", "or")            # after b: (d then h) or e
    graph.add_arc("b", "d")
    graph.add_arc("b", "e")
    graph.add_arc("d", "h", condition="cond3")
    graph.add_arc("h", "j")
    graph.add_arc("e", "j")
    graph.set_split("c", "or")            # after c: (f then i) or g
    graph.add_arc("c", "f")
    graph.add_arc("c", "g")
    graph.add_arc("f", "i")
    graph.add_arc("j", "k")
    graph.add_arc("i", "k", condition="cond4")
    graph.add_arc("g", "k", condition="cond5")

    # 2. Encode as a concurrent-Horn goal (the paper's formula (1)).
    goal = to_goal(graph)
    print("Concurrent-Horn encoding (formula (1) of the paper):")
    print(" ", pretty_unicode(goal))
    print()

    # 3. Global constraints that no control flow graph could express.
    constraints = [
        klein_order("d", "g"),       # if d and g both occur, d comes first
        klein_existence("f", "h"),   # if f occurs, h must occur as well
    ]
    print("Global constraints:")
    for constraint in constraints:
        print(" ", constraint)
    print()

    # 4. Compile the constraints into the graph.
    compiled = compile_workflow(goal, constraints)
    print(f"Consistent: {compiled.consistent}")
    print(f"|G| before Apply: {goal_size(goal)}, "
          f"|Apply(C,G)|: {compiled.applied_size}, after Excise: {compiled.compiled_size}")
    print("Compiled goal:")
    print(" ", pretty(compiled.goal))
    print()

    # 5. Pro-active scheduling: at every stage the scheduler knows exactly
    # which events are eligible - no constraint is checked at run time.
    scheduler = compiled.scheduler()
    print("Interactive schedule (always choosing the smallest eligible event):")
    while not scheduler.finished:
        eligible = sorted(scheduler.eligible())
        choice = eligible[0]
        print(f"  eligible: {eligible!r:46} -> fire {choice}")
        scheduler.fire(choice)
    print(f"Completed schedule: {scheduler.history}")
    print()

    print("All allowed executions:")
    for i, schedule in enumerate(compiled.schedules(), start=1):
        print(f"  {i:2}. {' -> '.join(schedule)}")


if __name__ == "__main__":
    main()
