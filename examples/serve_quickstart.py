#!/usr/bin/env python3
"""Quickstart: run the verification service and talk to it over HTTP.

The daemon (`repro serve`) turns the library's decision procedures into
a long-running service: register workflow specifications by name, then
`verify`/`consistency`/`schedule` them over JSON-HTTP. Concurrent
verification requests for the same specification are *batched* — one
Theorem 5.9 fan-out answers every concurrent waiter — and the compile
cost of Theorem 5.11 is paid once per specification content, not once
per request.

This example starts the service in-process on an ephemeral port (the
same harness the test suite and benchmarks use), exercises every
endpoint, fires concurrent clients to show coalescing, and shuts down
gracefully.

Run:  python examples/serve_quickstart.py
"""

import threading

from repro.service import serve_in_thread

ORDERS = """
# Order fulfillment with a credit/stock race before approval.
goal: receive * (credit_check | stock_check) * (approve + reject) * archive

constraint: precedes(credit_check, approve) or never(approve)

property checked_first: precedes(credit_check, approve) or never(approve)
property always_archived: happens(archive)
property stock_gates_credit: precedes(stock_check, credit_check)
"""


def main() -> None:
    # Start the daemon on a background thread, ephemeral port. From a
    # shell you would instead run e.g.:
    #   python -m repro serve --specs-dir examples/specs --port 8745
    handle = serve_in_thread(batch_window=0.005)
    print(f"service is up at {handle.url}")

    with handle.client() as client:
        # 1. Register a specification by name (versioned; re-registering
        # changed text bumps the version and invalidates the memo).
        registered = client.register("orders", ORDERS)
        print(f"registered {registered['name']} v{registered['version']}")
        print("health:", client.healthz())

        # 2. Consistency (Theorem 5.8) and schedule enumeration.
        print("consistent:", client.consistency(spec="orders"))
        schedules = client.schedule(spec="orders", limit=3)["schedules"]
        for schedule in schedules:
            print("  allowed:", " -> ".join(schedule))

        # 3. Verification (Theorem 5.9): the spec's declared properties.
        print("\nverdicts:")
        for result in client.verify(spec="orders")["results"]:
            status = "HOLDS" if result["holds"] else "FAILS"
            print(f"  [{status}] {result['name']}: {result['property']}")
            if result["witness"]:
                print("          witness:", " -> ".join(result["witness"]))

        # 4. Ad-hoc properties and inline (unregistered) specifications.
        adhoc = client.verify(spec="orders", properties=["happens(receive)"])
        print("\nad-hoc happens(receive):", adhoc["results"][0]["holds"])

    # 5. Concurrent clients: identical in-flight requests coalesce into
    # one batched verification — watch the batcher's counters.
    def worker() -> None:
        with handle.client() as c:
            c.verify(spec="orders")

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = handle.service.batcher.stats
    print(f"\nbatcher: {stats.batches} batches, {stats.verified} properties "
          f"verified, {stats.coalesced} answered by coalescing")

    with handle.client() as client:
        exposition = client.metrics()
        interesting = [line for line in exposition.splitlines()
                       if line.startswith("service_verify_batch")]
        print("metrics excerpt:")
        for line in interesting[:4]:
            print(" ", line)

    # 6. Graceful shutdown: drains accepted work, then stops.
    handle.stop(drain=True)
    print("\nservice drained and stopped")


if __name__ == "__main__":
    main()
