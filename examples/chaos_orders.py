#!/usr/bin/env python3
"""Chaos-testing the order workflow: retries, failover, and compensation.

The run-time engine executes a *compiled* goal — and the compiled goal
encodes every legal continuation, including the ones needed when the
happy path dies. This example injects faults into the order-fulfilment
workflow with a :class:`~repro.core.resilience.ChaosOracle` and shows the
engine's three failure layers in action:

1. *retry*: a flaky payment gateway heals under an exponential-backoff
   policy on a deterministic virtual clock;
2. *failover*: when shipping dies permanently, the engine reroutes
   through the ``∨``-alternative (cancel the order) — and the rerouted
   schedule still satisfies every compiled constraint;
3. *compensation*: a saga whose commit fails reroutes into its abort
   branch, undoing the committed steps instead of pretending they never
   happened;
4. *atomic abort*: with no alternative anywhere, the database (event log
   included) rolls back to the pre-run snapshot.

Run:  python examples/chaos_orders.py
"""

from repro import Database, compile_workflow, satisfies
from repro.core.engine import WorkflowEngine
from repro.core.resilience import (
    ChaosOracle,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)
from repro.core.saga import SagaStep, saga_goal, saga_invariants
from repro.ctr.formulas import atoms
from repro.db.oracle import TransitionOracle, delete_op, insert_op
from repro.errors import RetryExhaustedError
from repro.workflows.orders import PAYMENT, SHIPPING, orders_specification


def optimistic(eligible, db):
    """Prefer commits over aborts and cancellations (the happy path)."""
    ranked = sorted(eligible, key=lambda e: (e.startswith(("abort_", "cancel_")), e))
    return ranked[0]


def compile_orders():
    goal, constraints = orders_specification(with_triggers=False)
    return compile_workflow(goal, constraints), constraints


def retry_section():
    print("1. Flaky payment gateway, exponential backoff")
    compiled, _ = compile_orders()
    clock = VirtualClock()
    chaos = ChaosOracle(clock=clock)
    chaos.fail_event(PAYMENT.commit, attempts=2)  # heals on the 3rd try
    policies = ResiliencePolicy()
    policies.register(PAYMENT.commit,
                      RetryPolicy.exponential(4, base_delay=0.5))
    engine = WorkflowEngine(compiled, oracle=chaos, strategy=optimistic,
                            policies=policies, clock=clock)
    report = engine.run()
    print(f"   schedule: {' -> '.join(report.schedule)}")
    print("   " + report.summary().replace("\n", "\n   "))
    assert report.attempts[PAYMENT.commit] == 3
    assert report.elapsed == 1.5  # 0.5 + 1.0 virtual seconds of backoff
    print()


def failover_section():
    print("2. Shipping dies permanently -> failover to the cancel branch")
    compiled, constraints = compile_orders()
    chaos = ChaosOracle()
    chaos.fail_event(SHIPPING.start)
    engine = WorkflowEngine(compiled, oracle=chaos, strategy=optimistic)
    report = engine.run()
    print(f"   schedule: {' -> '.join(report.schedule)}")
    print("   " + report.summary().replace("\n", "\n   "))
    assert "cancel_order" in report.schedule
    assert SHIPPING.start not in report.schedule
    # The reroute is not a best-effort hack: the completed schedule still
    # satisfies every constraint the workflow was compiled with.
    assert all(satisfies(report.schedule, c) for c in constraints)
    print("   rerouted schedule satisfies all "
          f"{len(constraints)} compiled constraints ✓")
    print()


def saga_section():
    print("3. Saga compensation: commit_ship dies, committed pay is undone")
    steps = [SagaStep("pay"), SagaStep("ship")]
    compiled = compile_workflow(saga_goal(steps), [])
    oracle = TransitionOracle()
    oracle.register("commit_pay", insert_op("paid", "order-1"))
    oracle.register("undo_pay", delete_op("paid", "order-1"))
    chaos = ChaosOracle(oracle)
    chaos.fail_event("commit_ship")
    db = Database()
    engine = WorkflowEngine(compiled, oracle=chaos, db=db,
                            strategy=optimistic)
    report = engine.run()
    print(f"   schedule: {' -> '.join(report.schedule)}")
    print(f"   paid relation after compensation: {db.query('paid')}")
    assert "undo_pay" in report.schedule
    assert db.query("paid") == []
    # commit_pay stays in the log: it happened and was *compensated*,
    # not rolled back.
    assert "commit_pay" in db.log.events()
    for name, invariant in saga_invariants(steps):
        assert satisfies(report.schedule, invariant), name
    print(f"   all {len(saga_invariants(steps))} saga invariants hold "
          "on the rerouted schedule ✓")
    print()


def atomic_abort_section():
    print("4. No alternative anywhere -> atomic abort")
    a, b, c = atoms("reserve confirm finalize")
    compiled = compile_workflow(a >> b >> c, [])
    oracle = TransitionOracle()
    oracle.register("reserve", insert_op("held", "seat-12A"))
    chaos = ChaosOracle(oracle)
    chaos.fail_event("confirm")
    db = Database()
    db.insert("inventory", "seat-12A")
    engine = WorkflowEngine(compiled, oracle=chaos, db=db)
    try:
        engine.run()
    except RetryExhaustedError as exc:
        print(f"   failed: {exc}")
        print(f"   partial schedule was: {' -> '.join(exc.schedule)}")
    assert db.query("held") == []          # reserve's effect undone
    assert db.log.events() == ()           # the log too
    assert db.contains("inventory", "seat-12A")  # pre-run data intact
    print(f"   database rolled back: held={db.query('held')}, "
          f"log={db.log.events()}, inventory intact ✓")


def main() -> None:
    retry_section()
    failover_section()
    saga_section()
    atomic_abort_section()


if __name__ == "__main__":
    main()
