"""In-memory relational database states.

CTR's model theory is built over a set of database *states*; for this
library (as the paper suggests) states are plain relational databases. A
:class:`Database` holds named relations of tuples and supports the
elementary operations the transition oracle is built from — insert,
delete, relational assignment — plus simple conjunctive pattern queries,
snapshots (for failure atomicity and ``◇`` tests), and the significant-
event log of assumption (2).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import DatabaseError
from .log import EventLog

__all__ = ["Database"]

Tuple_ = tuple[Any, ...]


class Database:
    """A mutable relational state with snapshot/restore support.

    >>> db = Database()
    >>> db.insert("flight", "JFK", "CDG")
    >>> db.query("flight", None, "CDG")
    [('JFK', 'CDG')]
    """

    def __init__(self) -> None:
        self._relations: dict[str, set[Tuple_]] = {}
        # Per-relation frozen views, invalidated on mutation: successive
        # snapshots only re-freeze the relations touched in between
        # (partial snapshots), which is what makes the engine's mid-run
        # restore-point journaling affordable.
        self._frozen: dict[str, frozenset[Tuple_]] = {}
        self.log = EventLog()

    # -- elementary updates ----------------------------------------------------

    def insert(self, relation: str, *values: Any) -> None:
        """Insert a tuple (idempotent, set semantics)."""
        self._relations.setdefault(relation, set()).add(tuple(values))
        self._frozen.pop(relation, None)

    def delete(self, relation: str, *values: Any) -> None:
        """Delete a tuple if present (unconditional delete: always succeeds,
        leaving the state unchanged when the tuple is absent — the second
        kind of elementary update discussed in Section 2)."""
        self._relations.get(relation, set()).discard(tuple(values))
        self._frozen.pop(relation, None)

    def delete_strict(self, relation: str, *values: Any) -> None:
        """Delete a tuple, failing when it is absent (the first kind of
        elementary update: inapplicable in states lacking the tuple)."""
        rel = self._relations.get(relation, set())
        t = tuple(values)
        if t not in rel:
            raise DatabaseError(f"cannot delete {t!r} from {relation!r}: not present")
        rel.discard(t)
        self._frozen.pop(relation, None)

    def assign(self, relation: str, tuples: Iterator[Tuple_] | list[Tuple_]) -> None:
        """Relational assignment: replace the relation's contents wholesale."""
        self._relations[relation] = {tuple(t) for t in tuples}
        self._frozen.pop(relation, None)

    # -- queries ----------------------------------------------------------------

    def contains(self, relation: str, *values: Any) -> bool:
        return tuple(values) in self._relations.get(relation, set())

    def query(self, relation: str, *pattern: Any) -> list[Tuple_]:
        """Tuples matching ``pattern``; ``None`` components are wildcards."""
        rows = self._relations.get(relation, set())
        if not pattern:
            return sorted(rows)
        out = []
        for row in rows:
            if len(row) != len(pattern):
                continue
            if all(p is None or p == v for p, v in zip(pattern, row)):
                out.append(row)
        return sorted(out)

    def relation(self, name: str) -> frozenset[Tuple_]:
        return self._freeze(name)

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset(name for name, rows in self._relations.items() if rows)

    # -- snapshots ----------------------------------------------------------------

    def _freeze(self, name: str) -> frozenset[Tuple_]:
        """The cached immutable view of one relation (rebuilt only if dirty)."""
        cached = self._frozen.get(name)
        if cached is None:
            cached = frozenset(self._relations.get(name, ()))
            self._frozen[name] = cached
        return cached

    def snapshot(self) -> dict[str, frozenset[Tuple_]]:
        """An immutable copy of the current state (log position included).

        Partial: relations untouched since the previous snapshot reuse
        their cached frozen view, so a sequence of snapshots costs time
        proportional to the data actually changed between them, not to the
        whole database.
        """
        snap: dict[str, frozenset[Tuple_]] = {}
        for name, rows in self._relations.items():
            if rows:
                snap[name] = self._freeze(name)
        snap["__log__"] = self.log.snapshot()  # type: ignore[assignment]
        return snap

    def restore(self, snap: dict[str, frozenset[Tuple_]]) -> None:
        """Roll back to a snapshot taken earlier (failure atomicity)."""
        log_snap = snap["__log__"]
        self._relations = {
            name: set(rows) for name, rows in snap.items() if name != "__log__"
        }
        # The snapshot's frozensets are exact views of the restored state:
        # seed the cache with them so the next snapshot is O(dirty) again.
        self._frozen = {
            name: rows for name, rows in snap.items() if name != "__log__"
        }
        self.log.restore(log_snap)  # type: ignore[arg-type]

    def copy(self) -> "Database":
        clone = Database()
        clone.restore(self.snapshot())
        return clone

    def digest(self) -> str:
        """A stable short hash of the full state (relations + event log).

        Two databases with the same relations and the same logged event
        sequence produce the same digest, independent of insertion order.
        The flight recorder journals it after every engine step, so a
        replayed run can be checked for state identity without
        serializing whole databases into the trace.
        """
        import hashlib

        hasher = hashlib.sha256()
        for name in sorted(n for n, rows in self._relations.items() if rows):
            hasher.update(name.encode())
            hasher.update(b"\x1f")
            for row in sorted(self._relations[name], key=repr):
                hasher.update(repr(row).encode())
                hasher.update(b"\x1e")
        hasher.update(b"\x1d")
        for event in self.log.events():
            hasher.update(event.encode())
            hasher.update(b"\x1e")
        return hasher.hexdigest()[:16]

    # -- equality (state identity for the semantics) -------------------------------

    def same_state(self, other: "Database") -> bool:
        """State equality ignoring the event log."""
        mine = {n: r for n, r in self._relations.items() if r}
        theirs = {n: r for n, r in other._relations.items() if r}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}({len(r)})" for n, r in sorted(self._relations.items()) if r)
        return f"<Database {parts or 'empty'}>"
