"""The transition oracle: elementary updates as state transitions.

In CTR, elementary updates are atomic formulas whose truth is decided by a
*transition oracle*: an update ``u`` is true exactly over the arcs
``⟨s₁, s₂⟩`` such that executing ``u`` in state ``s₁`` can yield state
``s₂`` (Section 2). The oracle is deliberately open-ended — "from simple
tuple insertions and deletions, to relational assignments, to updates
performed by legacy programs".

:class:`TransitionOracle` realises this as a registry mapping update names
to Python callables. An update receives the current :class:`Database` and
either mutates it (deterministic update) or returns a list of candidate
successor databases (non-deterministic update — "any one of a number of
alternative state transitions might be possible"). Raising
:class:`~repro.errors.DatabaseError` models an update that is inapplicable
in the current state.

Unregistered names behave per assumption (2): a significant event applies
in every state and merely appends a record to the log.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..errors import DatabaseError
from .state import Database

__all__ = ["TransitionOracle", "insert_op", "delete_op", "assign_op", "choice_op"]

# A deterministic update mutates the db in place and returns None; a
# non-deterministic one returns candidate successor databases.
UpdateFn = Callable[[Database], None | Sequence[Database]]


class TransitionOracle:
    """Registry of elementary updates, with an execution helper.

    >>> oracle = TransitionOracle()
    >>> oracle.register("reserve", insert_op("reservation", "seat-1"))
    >>> db = Database()
    >>> oracle.execute("reserve", db)
    >>> db.contains("reservation", "seat-1")
    True
    """

    def __init__(self, seed: int | None = None):
        self._updates: dict[str, UpdateFn] = {}
        self._rng = random.Random(seed)

    def register(self, name: str, update: UpdateFn) -> None:
        self._updates[name] = update

    def knows(self, name: str) -> bool:
        return name in self._updates

    def execute(self, name: str, db: Database) -> None:
        """Run the update ``name`` against ``db`` and log the event.

        Non-deterministic updates have one candidate successor chosen by the
        oracle's seeded RNG (the CTR semantics allows any of them).
        """
        update = self._updates.get(name)
        if update is not None:
            candidates = update(db)
            if candidates is not None:
                if not candidates:
                    raise DatabaseError(f"update {name!r} is inapplicable in this state")
                chosen = self._rng.choice(list(candidates))
                db.restore(chosen.snapshot())
        # Assumption (2): every significant event forces a log record.
        db.log.append(name)

    def successors(self, name: str, db: Database) -> list[Database]:
        """All successor states of applying ``name`` to ``db`` (model theory).

        Used by tests and by exhaustive analyses; the run-time
        :meth:`execute` commits to a single successor instead.
        """
        update = self._updates.get(name)
        base = db.copy()
        if update is None:
            base.log.append(name)
            return [base]
        candidates = update(base)
        if candidates is None:
            base.log.append(name)
            return [base]
        out = []
        for candidate in candidates:
            clone = candidate.copy()
            clone.log.append(name)
            out.append(clone)
        return out


def insert_op(relation: str, *values) -> UpdateFn:
    """An elementary update inserting one tuple (applies in every state)."""

    def update(db: Database) -> None:
        db.insert(relation, *values)

    return update


def delete_op(relation: str, *values, strict: bool = False) -> UpdateFn:
    """An elementary update deleting one tuple.

    With ``strict=True`` the update is inapplicable when the tuple is
    absent (the paper's first kind of delete); otherwise it always applies.
    """

    def update(db: Database) -> None:
        if strict:
            db.delete_strict(relation, *values)
        else:
            db.delete(relation, *values)

    return update


def assign_op(relation: str, tuples: list[tuple]) -> UpdateFn:
    """An elementary update performing relational assignment."""

    def update(db: Database) -> None:
        db.assign(relation, tuples)

    return update


def choice_op(*alternatives: UpdateFn) -> UpdateFn:
    """A non-deterministic update: any one of ``alternatives`` may happen."""

    def update(db: Database) -> Sequence[Database]:
        out = []
        for alternative in alternatives:
            clone = db.copy()
            result = alternative(clone)
            if result is None:
                out.append(clone)
            else:
                out.extend(result)
        return out

    return update
