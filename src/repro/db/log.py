"""The significant-event log (assumption (2) of the paper).

"Typically, a significant event amounts to nothing more than forcing a
suitable record into the system log." This module is that log: an
append-only sequence of event records with snapshot/restore support so the
engine's failure atomicity can roll it back together with the data state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["EventRecord", "EventLog"]


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One logged significant event."""

    sequence: int
    event: str
    payload: Any = None


class EventLog:
    """Append-only event log."""

    def __init__(self) -> None:
        self._records: list[EventRecord] = []

    def append(self, event: str, payload: Any = None) -> EventRecord:
        record = EventRecord(sequence=len(self._records), event=event, payload=payload)
        self._records.append(record)
        return record

    def events(self) -> tuple[str, ...]:
        """The logged event names, in order — the execution's trace."""
        return tuple(r.event for r in self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def occurred(self, event: str) -> bool:
        return any(r.event == event for r in self._records)

    def snapshot(self) -> tuple[EventRecord, ...]:
        return tuple(self._records)

    def restore(self, snap: tuple[EventRecord, ...]) -> None:
        self._records = list(snap)
