"""Declarative conjunctive queries over database states.

Transition conditions in the paper "apply to the current state of the
workflow (which, in a broad sense, may include the current state of the
underlying database…)". Rather than forcing users to write Python lambdas
for every condition, this module provides a small Datalog-style query
language — conjunctions of relation patterns with shared variables and
safe negation — that compiles to the predicate callables the engine's
:class:`~repro.ctr.formulas.Test` nodes expect::

    stock_low = Query.where(("stock", V.item, "low"))
    goal = check >> (Test("low", stock_low.predicate()) >> reorder + ...)

Evaluation is a straightforward nested-loop join, which is plenty for
workflow-sized states and keeps the semantics obvious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..ctr.formulas import Test
from ..errors import SpecificationError
from .state import Database

__all__ = ["Var", "V", "Query", "condition_from_query"]


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable; equal occurrences join."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


class _VarFactory:
    """Attribute-style variable construction: ``V.item`` == ``Var("item")``."""

    def __getattr__(self, name: str) -> Var:
        return Var(name)


V = _VarFactory()

Pattern = tuple  # (relation, component, component, ...) with Vars or constants
Binding = dict[Var, Any]


@dataclass(frozen=True)
class Query:
    """A conjunctive query with optional safe negation.

    ``positive`` patterns must all match (joining on shared variables);
    ``negative`` patterns must match *no* tuple under the produced
    binding. Every variable in a negative pattern must also occur
    positively (safety), checked at construction.
    """

    positive: tuple[Pattern, ...]
    negative: tuple[Pattern, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.positive and self.negative:
            raise SpecificationError("negation requires at least one positive pattern")
        bound = {c for p in self.positive for c in p[1:] if isinstance(c, Var)}
        for pattern in self.negative:
            loose = [c for c in pattern[1:] if isinstance(c, Var) and c not in bound]
            if loose:
                raise SpecificationError(
                    f"unsafe negation: variables {loose} are not bound positively"
                )
        for pattern in self.positive + self.negative:
            if not pattern or not isinstance(pattern[0], str):
                raise SpecificationError("a pattern starts with its relation name")

    # -- construction -----------------------------------------------------------

    @classmethod
    def where(cls, *patterns: Pattern) -> "Query":
        """Conjunction of positive patterns."""
        return cls(tuple(patterns))

    def unless(self, *patterns: Pattern) -> "Query":
        """Add safely-negated patterns."""
        return Query(self.positive, self.negative + tuple(patterns))

    # -- evaluation --------------------------------------------------------------

    def bindings(self, db: Database) -> list[Binding]:
        """All variable bindings satisfying the query in ``db``."""
        results = [b for b in self._join(db, self.positive, {})]
        if not self.negative:
            return results
        return [b for b in results if not self._violates_negation(db, b)]

    def holds(self, db: Database) -> bool:
        """Is the query satisfiable in ``db``? (an empty query is vacuously true)"""
        if not self.positive:
            return True
        for binding in self._join(db, self.positive, {}):
            if not self._violates_negation(db, binding):
                return True
        return False

    def predicate(self) -> Callable[[Database], bool]:
        """A predicate suitable for a :class:`~repro.ctr.formulas.Test` node."""
        return self.holds

    def negated_predicate(self) -> Callable[[Database], bool]:
        """The complement predicate (for the 'else' branch of a condition)."""
        return lambda db: not self.holds(db)

    # -- internals ----------------------------------------------------------------

    def _join(
        self, db: Database, patterns: tuple[Pattern, ...], binding: Binding
    ) -> Iterator[Binding]:
        if not patterns:
            yield dict(binding)
            return
        head, rest = patterns[0], patterns[1:]
        relation, components = head[0], head[1:]
        for row in db.query(relation):
            if len(row) != len(components):
                continue
            extended = self._match(components, row, binding)
            if extended is not None:
                yield from self._join(db, rest, extended)

    @staticmethod
    def _match(components: tuple, row: tuple, binding: Binding) -> Binding | None:
        extended = dict(binding)
        for component, value in zip(components, row):
            if isinstance(component, Var):
                if component in extended:
                    if extended[component] != value:
                        return None
                else:
                    extended[component] = value
            elif component != value:
                return None
        return extended

    def _violates_negation(self, db: Database, binding: Binding) -> bool:
        for pattern in self.negative:
            relation, components = pattern[0], pattern[1:]
            grounded = tuple(
                binding[c] if isinstance(c, Var) else c for c in components
            )
            if db.contains(relation, *grounded):
                return True
        return False


def condition_from_query(name: str, query: Query) -> Test:
    """A named transition condition backed by a declarative query."""
    return Test(name, query.predicate())
