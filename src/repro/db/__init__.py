"""Database substrate: states, the transition oracle, and the event log.

Implements the state machinery CTR is interpreted over (Section 2 of the
paper): relational database states (:mod:`~repro.db.state`), elementary
updates via the transition oracle (:mod:`~repro.db.oracle`), and the
significant-event log of assumption (2) (:mod:`~repro.db.log`).
"""

from .log import EventLog, EventRecord
from .oracle import TransitionOracle, assign_op, choice_op, delete_op, insert_op
from .query import Query, V, Var, condition_from_query
from .state import Database

__all__ = [
    "Database",
    "EventLog",
    "EventRecord",
    "TransitionOracle",
    "insert_op",
    "delete_op",
    "assign_op",
    "choice_op",
    "Query",
    "Var",
    "V",
    "condition_from_query",
]
