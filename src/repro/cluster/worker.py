"""Worker handles: how the router and supervisor talk to one daemon.

A *worker* is one ``repro serve`` verification daemon. The cluster layer
manipulates workers through the small :class:`WorkerHandle` duck-type —
``start``/``stop``/``kill``, an async JSON-over-HTTP ``request``, and a
``healthz`` probe — so the supervisor and router never care whether the
daemon is a real subprocess (:class:`ProcessWorker`, production and
chaos tests) or a scripted fake (deterministic supervisor unit tests).

:class:`ProcessWorker` spawns ``python -m repro serve --port 0`` and
reads the bound ephemeral port off the daemon's startup line, so N
workers never race for ports. Restart is just ``start()`` again on the
same handle: a fresh process, a fresh port — and a warm start, when the
workers share an on-disk :class:`~repro.core.compiler.CompileCache`
directory (the resurrected worker re-compiles nothing it ever compiled
before; that persistent cache is what makes crash/restart cheap).

The async HTTP client here (:func:`http_request`) is one short-lived
connection per call, written against :mod:`asyncio` streams. Workers are
local processes; connection setup is microseconds against the NP-hard
verification work a request carries, and a connection-per-request makes
"the worker died mid-response" failures crisp (the read fails, the
router fails over) instead of poisoning a pooled socket.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys

from ..errors import ReproError

__all__ = [
    "WorkerError",
    "WorkerUnavailableError",
    "http_request",
    "ProcessWorker",
]

#: How long to wait for a spawned daemon to print its bound address.
STARTUP_TIMEOUT = 30.0

_SERVING_RE = re.compile(r"serving on http://([^:\s]+):(\d+)")


class WorkerError(ReproError):
    """A worker-management failure (spawn, startup handshake, ...)."""


class WorkerUnavailableError(WorkerError):
    """A request could not reach the worker (dead, refusing, or hung).

    This is the *transport-level* failure the router's failover treats as
    retryable on another replica — distinct from an HTTP error response,
    which means the worker is alive and has an opinion.
    """

    def __init__(self, worker_id: str, reason: str):
        self.worker_id = worker_id
        self.reason = reason
        super().__init__(f"worker {worker_id!r} unavailable: {reason}")


async def http_request(host: str, port: int, method: str, path: str,
                       body: dict | None = None, timeout: float = 30.0,
                       headers: dict[str, str] | None = None):
    """One JSON-over-HTTP exchange on a fresh connection.

    Returns ``(status, data)`` where ``data`` is the decoded JSON body
    (or raw text for non-JSON responses). ``headers`` adds extra request
    headers (the router's trace propagation rides here). Raises
    ``OSError`` / ``asyncio.TimeoutError`` /
    ``asyncio.IncompleteReadError`` on transport failures — the caller
    maps those to its own error type.
    """

    async def exchange():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else b"")
            extra = "".join(
                f"{name}: {value}\r\n"
                for name, value in (headers or {}).items()
            )
            writer.write(
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise asyncio.IncompleteReadError(status_line, None)
            status = int(parts[1])
            response_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = int(response_headers.get("content-length", "0") or 0)
            raw = await reader.readexactly(length) if length else b""
            if response_headers.get("content-type",
                                    "").startswith("application/json"):
                data = json.loads(raw) if raw else {}
            else:
                data = raw.decode("utf-8")
            return status, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    return await asyncio.wait_for(exchange(), timeout)


class ProcessWorker:
    """One ``repro serve`` daemon as a supervised subprocess.

    The handle survives its process: after :meth:`kill` (or a crash),
    :meth:`start` spawns a fresh daemon on a fresh ephemeral port and the
    handle points at it. ``extra_args`` go straight to ``repro serve``
    (``--specs-dir``, ``--cache-dir``, ``--jobs``, ...).
    """

    def __init__(self, worker_id: str, *, host: str = "127.0.0.1",
                 extra_args: tuple[str, ...] = (),
                 startup_timeout: float = STARTUP_TIMEOUT):
        self.worker_id = worker_id
        self.host = host
        self.port: int | None = None
        self.extra_args = tuple(extra_args)
        self.startup_timeout = startup_timeout
        self.started_count = 0
        self._proc: asyncio.subprocess.Process | None = None
        self._stdout_drain: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Is the daemon process alive right now?"""
        return self._proc is not None and self._proc.returncode is None

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    async def start(self) -> tuple[str, int]:
        """Spawn the daemon and wait for its bound address."""
        if self.running:
            return self.host, self.port
        await self._reap()
        self._proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", "0", *self.extra_args,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
        )
        try:
            self.port = await asyncio.wait_for(
                self._read_port(), self.startup_timeout
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            await self.stop()
            raise WorkerError(
                f"worker {self.worker_id!r} failed to announce its port"
            ) from exc
        self.started_count += 1
        # Keep the daemon's stdout flowing into the void so a chatty
        # child can never block on a full pipe.
        self._stdout_drain = asyncio.get_running_loop().create_task(
            self._drain_stdout()
        )
        return self.host, self.port

    async def _read_port(self) -> int:
        assert self._proc is not None and self._proc.stdout is not None
        while True:
            line = await self._proc.stdout.readline()
            if not line:
                raise asyncio.IncompleteReadError(line, None)
            match = _SERVING_RE.search(line.decode("utf-8", "replace"))
            if match:
                return int(match.group(2))

    async def _drain_stdout(self) -> None:
        assert self._proc is not None and self._proc.stdout is not None
        try:
            while await self._proc.stdout.read(4096):
                pass
        except (asyncio.CancelledError, ValueError):
            pass

    async def stop(self, timeout: float = 10.0) -> None:
        """Terminate gracefully (SIGTERM → drain), escalating to SIGKILL."""
        proc = self._proc
        if proc is not None and proc.returncode is None:
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
            try:
                await asyncio.wait_for(proc.wait(), timeout)
            except asyncio.TimeoutError:
                try:
                    proc.kill()
                except ProcessLookupError:
                    pass
                await proc.wait()
        await self._reap()

    def kill(self) -> None:
        """SIGKILL the daemon — the chaos path; no drain, no goodbye."""
        proc = self._proc
        if proc is not None and proc.returncode is None:
            try:
                proc.send_signal(signal.SIGKILL)
            except ProcessLookupError:
                pass

    async def _reap(self) -> None:
        if self._stdout_drain is not None:
            self._stdout_drain.cancel()
            await asyncio.gather(self._stdout_drain, return_exceptions=True)
            self._stdout_drain = None
        if self._proc is not None and self._proc.returncode is None:
            try:
                self._proc.kill()
            except ProcessLookupError:
                pass
            await self._proc.wait()
        self._proc = None
        self.port = None

    # -- I/O ------------------------------------------------------------------

    async def request(self, method: str, path: str, body: dict | None = None,
                      timeout: float = 30.0,
                      headers: dict[str, str] | None = None):
        """Forward one HTTP exchange; transport failures become
        :class:`WorkerUnavailableError` (the failover-retryable kind)."""
        if not self.running or self.port is None:
            raise WorkerUnavailableError(self.worker_id, "process not running")
        try:
            return await http_request(self.host, self.port, method, path,
                                      body, timeout=timeout, headers=headers)
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            raise WorkerUnavailableError(
                self.worker_id, type(exc).__name__
            ) from exc

    async def healthz(self, timeout: float = 5.0) -> dict:
        """Probe ``/healthz``; raises :class:`WorkerUnavailableError` when
        the daemon is dead, hung past ``timeout``, or answering garbage."""
        status, data = await self.request("GET", "/healthz", timeout=timeout)
        if status != 200 or not isinstance(data, dict):
            raise WorkerUnavailableError(
                self.worker_id, f"healthz returned {status}"
            )
        return data
