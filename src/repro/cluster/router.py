"""The cluster front door: consistent-hash routing over supervised workers.

:class:`ClusterRouter` speaks the *exact* wire protocol of the
single-process daemon (it shares :class:`~repro.service.http.
HttpServerBase` with it), so any client of ``repro serve`` talks to a
fleet unchanged. Behind the front door:

* the router owns the :class:`~repro.service.registry.SpecRegistry`
  (registration, hot-reload, tenant namespaces) and forwards the
  *resolved spec text* inline to workers — workers are stateless with
  respect to the catalog, so there is no spec-sync protocol to get
  wrong, while consistent hashing still keeps each worker's inline memo
  and the shared on-disk compile cache warm for its keys;
* a :class:`~repro.cluster.placement.HashRing` maps the batch key
  (``name@version`` / ``inline:<sha16>``) to K replicas; requests walk
  the replica list via :func:`~repro.cluster.failover.call_with_failover`
  (verification is pure — Corollary 3.5 — so a retry on the next replica
  is safe and bit-identical);
* a :class:`~repro.cluster.supervisor.WorkerSupervisor` keeps workers
  alive and feeds ring membership through its up/down callbacks;
* an optional :class:`~repro.cluster.quotas.AdmissionController` meters
  per-tenant in-flight cost (429 on fair shed);
* when *every* replica for a key is down, the router degrades rather
  than drops: the request runs on a bounded in-process fallback service
  (one sequential verifier sharing the router's registry and cache) and
  the response is tagged ``"degraded": true``. Slow beats unavailable.
"""

from __future__ import annotations

import asyncio
import threading

from ..errors import ReproError
from ..obs.config import Observability
from ..obs.context import (
    TRACE_HEADER,
    current_trace_context,
    format_trace_header,
)
from ..obs.distributed import TraceSink, merge_segments, segment_spans
from ..obs.metrics import (
    MetricsRegistry,
    render_federated_prometheus,
    sum_scrapes,
)
from ..obs.slo import SLOMonitor
from ..service.batcher import (
    DeadlineExceededError,
    QueueFullError,
    ServiceDrainingError,
)
from ..service.http import HttpError, HttpServerBase, json_body
from ..service.registry import (
    SpecEntry,
    SpecRegistry,
    TENANT_SEP,
    UnknownSpecError,
)
from ..service.server import VerificationService
from .failover import AllReplicasFailedError, call_with_failover
from .quotas import AdmissionController, TenantQuotaExceededError
from .supervisor import WorkerSupervisor
from .worker import WorkerError
from .placement import HashRing

__all__ = ["ClusterRouter", "ClusterHandle", "cluster_in_thread"]

#: Header carrying the tenant namespace (absent → the default tenant).
TENANT_HEADER = "x-repro-tenant"

_FORWARDED_PATHS = ("/compile", "/consistency", "/verify", "/schedule")


class ClusterRouter(HttpServerBase):
    """HTTP front door routing spec keys onto a supervised worker fleet."""

    metrics_prefix = "cluster"

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        *,
        registry: SpecRegistry | None = None,
        specs_dir=None,
        cache=None,
        replicas: int = 2,
        retry_budget: int | None = None,
        hedge_delay: float | None = None,
        admission: AdmissionController | None = None,
        request_timeout: float = 30.0,
        obs: Observability | None = None,
        slo: SLOMonitor | None = None,
        trace_sink: TraceSink | None = None,
    ):
        super().__init__(obs=obs)
        self.supervisor = supervisor
        self.registry = registry or SpecRegistry(specs_dir=specs_dir,
                                                cache=cache)
        self.ring = HashRing(replicas=replicas)
        self.retry_budget = retry_budget
        self.hedge_delay = hedge_delay
        self.admission = admission
        self.request_timeout = request_timeout
        #: Sliding-window SLOs over every front-door request; the burn
        #: rates surface on /cluster/status, /metrics, and `repro top`.
        self.slo = slo if slo is not None else SLOMonitor()
        #: Optional on-disk store for assembled distributed traces
        #: (written on every /traces/<id> collection).
        self.trace_sink = trace_sink
        # The degraded-mode fallback: a bounded in-process service sharing
        # the router's registry (and therefore its compile memo and disk
        # cache). Its HTTP server never starts; only its handler is used.
        self._fallback = VerificationService(
            registry=self.registry, jobs=1, queue_limit=16, obs=self.obs
        )
        # Ring membership follows supervisor health transitions.
        supervisor.on_up = self._worker_up
        supervisor.on_down = self._worker_down

    # -- lifecycle ------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Start workers, supervision, the fallback, and the front door."""
        await self.supervisor.start()
        self.supervisor.start_loop()
        self._fallback.batcher.start()
        return await super().start(host, port)

    async def shutdown(self, drain: bool = True) -> None:
        await self._stop_accepting()
        if drain:
            await self._drain_connections()
        else:
            self._cancel_connections()
        await self.supervisor.stop()
        await self._fallback.batcher.aclose()
        self._fallback.executor.shutdown(wait=True)

    # -- ring membership ------------------------------------------------------

    def _worker_up(self, worker_id: str) -> None:
        self.ring.add(worker_id)
        self._gauge_ring()

    def _worker_down(self, worker_id: str) -> None:
        self.ring.remove(worker_id)
        self._gauge_ring()

    def _gauge_ring(self) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.set_gauge("cluster.router.ring_size",
                                       len(self.ring))

    # -- routing --------------------------------------------------------------

    def _error_status(self, exc: ReproError) -> int:
        if isinstance(exc, (TenantQuotaExceededError, QueueFullError)):
            return 429
        if isinstance(exc, ServiceDrainingError):
            return 503
        if isinstance(exc, DeadlineExceededError):
            return 504
        if isinstance(exc, UnknownSpecError):
            return 404
        if isinstance(exc, (AllReplicasFailedError, WorkerError)):
            return 502
        return super()._error_status(exc)

    async def _handle(self, method, path, query, headers, body):
        tenant = headers.get(TENANT_HEADER) or None
        if tenant is not None and TENANT_SEP in tenant:
            raise HttpError(400, f"tenant may not contain {TENANT_SEP!r}")
        catalog = (self.registry.namespaced(tenant)
                   if tenant is not None else self.registry)

        if path == "/healthz" and method == "GET":
            healthy = self.supervisor.healthy_workers()
            return 200, {
                "status": "draining" if self._shutting_down else "ok",
                "role": "router",
                "workers": len(self.supervisor.workers),
                "healthy_workers": len(healthy),
                "ring": len(self.ring),
                "specs": len(self.registry),
            }, "application/json"
        if path == "/metrics" and method == "GET":
            self._export_derived_gauges()
            registry = self.obs.metrics or MetricsRegistry()
            if query.get("format") == "json":
                return 200, registry.to_dict(), "application/json"
            return 200, registry.render_prometheus(), \
                "text/plain; version=0.0.4"
        if path == "/cluster/metrics" and method == "GET":
            return await self._cluster_metrics(query)
        if path == "/cluster/status" and method == "GET":
            self.slo.export_gauges(self.obs.metrics)
            return 200, {
                "workers": self.supervisor.status(),
                "ring": list(self.ring.workers),
                "replicas": self.ring.replicas,
                "admission": (self.admission.snapshot()
                              if self.admission is not None else None),
                "slo": self.slo.snapshot(),
            }, "application/json"
        if path == "/traces" and method == "GET":
            traces = list(self.obs.tracer.trace_ids())
            if self.trace_sink is not None:
                seen = set(traces)
                traces += [t for t in self.trace_sink.trace_ids()
                           if t not in seen]
            return 200, {"traces": traces}, "application/json"
        if path.startswith("/traces/") and method == "GET":
            return await self._collect_trace(path[len("/traces/"):])
        if path == "/specs" and method == "GET":
            return 200, {"specs": self._list_specs(tenant, catalog)}, \
                "application/json"
        if path == "/specs" and method == "POST":
            data = json_body(body)
            name, text = data.get("name"), data.get("text")
            if not isinstance(name, str) or not isinstance(text, str):
                raise HttpError(400,
                                "POST /specs needs string 'name' and 'text'")
            entry = catalog.register(name, text)
            public = (catalog.public_name(entry)
                      if tenant is not None else entry.name)
            return 200, {"name": public, "version": entry.version}, \
                "application/json"

        if method != "POST" or path not in _FORWARDED_PATHS:
            known = ("/healthz", "/metrics", "/specs", "/cluster/status",
                     "/cluster/metrics", "/traces", *_FORWARDED_PATHS)
            if path in known:
                raise HttpError(405, f"method {method} not allowed on {path}")
            raise HttpError(404, f"no such endpoint {path}")

        data = json_body(body)
        entry = self._resolve_entry(catalog, data)
        public = (catalog.public_name(entry)
                  if tenant is not None else entry.name)
        cost = self._cost(path, entry, data)
        if self.admission is not None:
            self.admission.admit(tenant, cost)
        try:
            return await self._route_forward(path, entry, public, data)
        finally:
            if self.admission is not None:
                self.admission.release(tenant, cost)

    def _list_specs(self, tenant, catalog) -> list[dict]:
        names = (catalog.names() if tenant is not None
                 else [n for n in self.registry.names()
                       if TENANT_SEP not in n])
        specs = []
        for name in names:
            try:
                entry = catalog.get(name)
            except UnknownSpecError:
                continue  # raced an unregister
            specs.append({
                "name": name,
                "version": entry.version,
                "properties": [p for p, _ in entry.spec.properties],
            })
        return specs

    def _resolve_entry(self, catalog, data) -> SpecEntry:
        name, text = data.get("spec"), data.get("text")
        if (name is None) == (text is None):
            raise HttpError(400, "provide exactly one of 'spec' or 'text'")
        if name is not None:
            if not isinstance(name, str):
                raise HttpError(400, "'spec' must be a string")
            return catalog.get(name)
        if not isinstance(text, str):
            raise HttpError(400, "'text' must be a string")
        return catalog.resolve_inline(text)

    @staticmethod
    def _cost(path: str, entry: SpecEntry, data) -> int:
        """Admission cost: a verify costs its property count, the rest 1 —
        the same unit the workers' batchers meter queue depth in."""
        if path != "/verify":
            return 1
        requested = data.get("properties")
        if isinstance(requested, list):
            return max(1, len(requested))
        return max(1, len(entry.spec.properties))

    # -- forwarding -----------------------------------------------------------

    async def _route_forward(self, path, entry: SpecEntry, public: str, data):
        # Workers never see the router's catalog: ship the resolved text.
        forward = dict(data)
        forward.pop("spec", None)
        forward["text"] = entry.text
        replicas = self.ring.replicas_for(entry.key)
        timeout = self.request_timeout
        deadline = data.get("timeout")
        if isinstance(deadline, (int, float)):
            timeout = max(timeout, float(deadline) + 10.0)

        # Propagate the trace across the process border: the contextvar
        # holds the router's own http.<endpoint> span (installed by
        # _route), so the worker's request span becomes its child.
        ctx = current_trace_context()
        trace_headers = (
            {TRACE_HEADER: format_trace_header(ctx)} if ctx is not None
            else None
        )

        async def send(worker_id: str):
            handle = self.supervisor.state_of(worker_id).handle
            if trace_headers is not None:
                return await handle.request("POST", path, forward,
                                            timeout=timeout,
                                            headers=trace_headers)
            # No kwarg when untraced: scripted fake workers in tests
            # predate the headers parameter.
            return await handle.request("POST", path, forward,
                                        timeout=timeout)

        try:
            (status, payload), worker_id = await call_with_failover(
                replicas, send,
                budget=self.retry_budget,
                hedge_delay=self.hedge_delay,
                on_failure=self._note_worker_failure,
                on_hedge=lambda w: self._metric("cluster.router.hedges"),
                on_hedge_win=lambda w: self._metric(
                    "cluster.router.hedge_wins"
                ),
            )
        except AllReplicasFailedError:
            self._metric("cluster.router.degraded")
            return await self._degraded(path, forward, entry, public)
        self._metric("cluster.router.forwarded")
        if isinstance(payload, dict):
            payload = self._rebrand(payload, entry, public)
            payload["worker"] = worker_id
        return status, payload, "application/json"

    async def _degraded(self, path, forward, entry: SpecEntry, public: str):
        """All replicas down: answer in-process, tagged, rather than drop."""
        status, payload, content_type = await self._fallback._handle(
            "POST", path, {}, {}, _encode(forward)
        )
        if isinstance(payload, dict):
            payload = self._rebrand(payload, entry, public)
            payload["degraded"] = True
        return status, payload, content_type

    def _rebrand(self, payload: dict, entry: SpecEntry, public: str) -> dict:
        """Workers answered for the inline-shipped text; restore the
        client-facing name and registry version."""
        payload = dict(payload)
        if "spec" in payload:
            payload["spec"] = public
        if "version" in payload:
            payload["version"] = entry.version
        return payload

    def _note_worker_failure(self, worker_id: str, exc) -> None:
        self._metric("cluster.router.failovers")
        self.supervisor.report_failure(worker_id)

    def _metric(self, name: str) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.inc(name)

    # -- fleet observability --------------------------------------------------

    def _observe_outcome(self, endpoint: str, status: int,
                         latency: float) -> None:
        # Availability counts server-side failures only: a 4xx is the
        # client's answer, not the cluster failing its promise.
        self.slo.record(ok=status < 500, latency=latency)

    async def _scrape_workers(self) -> dict[str, dict]:
        """Every healthy worker's ``/metrics?format=json``, concurrently.

        A worker dying mid-scrape is skipped — federation reports the
        fleet that answered, never fails the endpoint.
        """
        healthy = self.supervisor.healthy_workers()

        async def scrape(worker_id: str):
            handle = self.supervisor.state_of(worker_id).handle
            try:
                status, data = await handle.request(
                    "GET", "/metrics?format=json", timeout=5.0
                )
            except WorkerError:
                return worker_id, None
            if status != 200 or not isinstance(data, dict):
                return worker_id, None
            return worker_id, data

        results = await asyncio.gather(*(scrape(w) for w in healthy))
        return {wid: data for wid, data in results if data is not None}

    def _export_derived_gauges(self, scrapes: dict[str, dict] | None = None,
                               totals: dict | None = None) -> None:
        """Fold fleet-level health into the router's own registry.

        Rates are recomputed from counters at scrape time (cheap; no
        per-request bookkeeping): failover and hedge-win rates, the
        batcher coalescing ratio across workers, per-replica verify p95,
        and per-tenant quota shed.
        """
        metrics = self.obs.metrics
        if metrics is None:
            return
        counters = {
            name: c.value for name, c in metrics._counters.items()
        }
        forwarded = counters.get("cluster.router.forwarded", 0)
        failovers = counters.get("cluster.router.failovers", 0)
        hedges = counters.get("cluster.router.hedges", 0)
        hedge_wins = counters.get("cluster.router.hedge_wins", 0)
        if forwarded + failovers:
            metrics.set_gauge(
                "cluster.failover_rate",
                round(failovers / (forwarded + failovers), 6),
            )
        if hedges:
            metrics.set_gauge("cluster.hedge_win_rate",
                              round(hedge_wins / hedges, 6))
        if self.admission is not None:
            for tenant, count in sorted(
                self.admission.shed_by_tenant.items()
            ):
                metrics.set_gauge(f"cluster.quota.shed.{tenant}", count)
        self.slo.export_gauges(metrics)
        if scrapes:
            for worker_id in sorted(scrapes):
                histograms = scrapes[worker_id].get("histograms") or {}
                summary = histograms.get("service.http.verify.latency")
                if summary and summary.get("count"):
                    metrics.set_gauge(
                        f"cluster.replica.{worker_id}.verify_p95",
                        round(summary.get("p95", 0.0), 6),
                    )
        if totals:
            total_counters = totals.get("counters") or {}
            submitted = total_counters.get("service.verify.submitted", 0)
            coalesced = total_counters.get("service.verify.coalesced", 0)
            if submitted:
                metrics.set_gauge("cluster.coalescing_ratio",
                                  round(coalesced / submitted, 6))

    async def _cluster_metrics(self, query):
        """``/cluster/metrics``: the union of every worker's scrape.

        Totals are the bit-for-bit sum of the per-worker scrapes (in
        sorted worker order — the CI gate asserts exact equality), each
        worker's series carry ``worker="<id>"`` labels, and the router's
        own registry (with the derived fleet gauges) rides along as
        ``worker="router"``.
        """
        scrapes = await self._scrape_workers()
        totals = sum_scrapes(scrapes)
        self._export_derived_gauges(scrapes, totals)
        router_snapshot = (self.obs.metrics.to_dict()
                           if self.obs.metrics is not None else None)
        if query.get("format") == "json":
            return 200, {
                "workers": scrapes,
                "totals": totals,
                "router": router_snapshot,
            }, "application/json"
        return 200, render_federated_prometheus(
            scrapes, totals=totals, router=router_snapshot
        ), "text/plain; version=0.0.4"

    async def _collect_trace(self, trace_id: str):
        """``/traces/<id>``: gather this trace's span segments fleet-wide.

        The router contributes its own spans (segment ``router``); every
        healthy worker is asked for its segment, relabeled to the worker
        id (workers don't know their cluster name). The merged flat list
        is stored in the trace sink (when configured) and returned —
        ``repro trace show --distributed`` renders it as one tree.
        """
        own = segment_spans(
            self.obs.tracer.spans_for(trace_id), "router"
        )
        healthy = self.supervisor.healthy_workers()

        async def fetch(worker_id: str):
            handle = self.supervisor.state_of(worker_id).handle
            try:
                status, data = await handle.request(
                    "GET", f"/traces/{trace_id}", timeout=5.0
                )
            except WorkerError:
                return []
            if status != 200 or not isinstance(data, dict):
                return []
            spans = data.get("spans") or []
            for span in spans:
                span["segment"] = worker_id
            return spans

        segments = await asyncio.gather(*(fetch(w) for w in healthy))
        merged = merge_segments(own, *segments)
        if not merged and self.trace_sink is not None:
            # Nothing live — the workers may have restarted; fall back
            # to what an earlier collection persisted.
            try:
                merged = self.trace_sink.read(trace_id)
            except ReproError:
                merged = []
        if not merged:
            raise HttpError(404, f"no spans retained for trace {trace_id!r}")
        if self.trace_sink is not None:
            self.trace_sink.write(trace_id, merged)
        return 200, {"trace_id": trace_id, "spans": merged}, \
            "application/json"


def _encode(data: dict) -> bytes:
    import json

    return json.dumps(data).encode("utf-8")


# -- the synchronous harness ---------------------------------------------------


class ClusterHandle:
    """A running cluster (router + workers) on a background thread."""

    def __init__(self, router: ClusterRouter, loop, thread):
        self.router = router
        self._loop = loop
        self._thread = thread
        self.host, self.port = router.address

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout: float = 30.0, **kwargs):
        from ..service.client import ServiceClient

        return ServiceClient(self.host, self.port, timeout=timeout, **kwargs)

    def run(self, coro, timeout: float = 60.0):
        """Run ``coro`` on the cluster's event loop (chaos-test seam)."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL one worker from outside the loop (the chaos lever)."""
        self.router.supervisor.state_of(worker_id).handle.kill()

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.router.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def cluster_in_thread(
    workers: int = 2,
    replicas: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    specs_dir=None,
    cache_dir=None,
    worker_jobs: int = 1,
    worker_args: tuple[str, ...] = (),
    supervisor_kwargs: dict | None = None,
    tracing: bool = False,
    trace_dir=None,
    ids_seed: int | None = None,
    **router_kwargs,
) -> ClusterHandle:
    """Start a full cluster — N subprocess workers, supervisor, router —
    on a daemon thread; returns a :class:`ClusterHandle`.

    ``cache_dir`` is shared by every worker and the router's fallback:
    the content-addressed compile cache is what makes a restarted worker
    warm. ``worker_args`` appends raw ``repro serve`` flags.

    ``tracing=True`` turns on distributed tracing end to end: the router
    traces with segment ``router`` and every worker daemon gets
    ``--tracing``. ``ids_seed`` seeds every id source deterministically
    (worker ``i`` gets ``ids_seed + 1 + i`` — distinct streams, so span
    refs never collide across segments). ``trace_dir`` adds an on-disk
    :class:`~repro.obs.distributed.TraceSink` the router persists
    assembled traces into.
    """
    from ..obs.context import IdSource
    from .worker import ProcessWorker

    extra = ["--jobs", str(worker_jobs)]
    if cache_dir is not None:
        extra += ["--cache-dir", str(cache_dir)]

    handles = []
    for i in range(workers):
        worker_extra = list(extra)
        if tracing:
            worker_extra += ["--tracing"]
            if ids_seed is not None:
                worker_extra += ["--ids-seed", str(ids_seed + 1 + i)]
        handles.append(ProcessWorker(
            f"w{i}", extra_args=tuple(worker_extra + list(worker_args))
        ))
    if tracing and "obs" not in router_kwargs:
        router_kwargs["obs"] = Observability.enabled(
            trace=True, metrics=True, record=False,
            ids=IdSource(seed=ids_seed), segment="router",
            max_spans=10_000,
        )
    if trace_dir is not None and "trace_sink" not in router_kwargs:
        router_kwargs["trace_sink"] = TraceSink(trace_dir)
    supervisor = WorkerSupervisor(handles, **(supervisor_kwargs or {}))
    router = ClusterRouter(
        supervisor,
        specs_dir=specs_dir,
        cache=cache_dir,
        replicas=replicas,
        **router_kwargs,
    )

    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(router.start(host, port))
        except BaseException as exc:
            failure.append(exc)
            loop.close()
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-cluster", daemon=True)
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ClusterHandle(router, loop, thread)
