"""Worker supervision: health checks, backoff restarts, circuit breaking.

The :class:`WorkerSupervisor` owns the cluster's worker handles and keeps
them alive. Its logic is a single idempotent step — :meth:`check_once` —
driven by an injectable :class:`~repro.core.resilience.Clock`:

* probe every worker's ``/healthz`` (a dead process short-circuits; a
  hung one fails the probe timeout);
* on failure, schedule a restart ``RetryPolicy.delay(n)`` seconds out —
  exponential backoff with seeded jitter, so a fleet that died together
  does not restart in lockstep;
* a worker that keeps dying *quickly* (within ``flap_window`` of its
  last start) trips a per-worker :class:`CircuitBreaker`: restarts stop
  (open), one probe restart is allowed after ``breaker_reset`` seconds
  (half-open), and sustained uptime closes the circuit again. A worker
  crash-looping on a poisoned spec burns backoff budget, not CPU.

Tests drive :meth:`check_once` directly on a
:class:`~repro.core.resilience.VirtualClock` with scripted fake workers,
making every timing branch — backoff growth, flap detection, the
open → half-open → closed walk — deterministic. Production runs
:meth:`run` as an asyncio task on the system clock.
"""

from __future__ import annotations

import asyncio
import logging
import random

from ..core.resilience import Clock, RetryPolicy, SystemClock
from ..obs.config import OBS_DISABLED, Observability
from .worker import WorkerError, WorkerUnavailableError

__all__ = ["CircuitBreaker", "WorkerState", "WorkerSupervisor"]

log = logging.getLogger("repro.cluster.supervisor")

#: Default restart policy: 0.1s, 0.2s, 0.4s, ... capped at 5s, forever.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=1_000_000, base_delay=0.1, multiplier=2.0,
    max_delay=5.0, jitter=0.5,
)


class CircuitBreaker:
    """Three-state breaker guarding one worker's restart loop.

    *closed* — restarts proceed normally. ``failure_threshold``
    consecutive fast failures (flaps) open it.
    *open* — restarts are suppressed for ``reset_timeout`` seconds.
    *half-open* — one probe restart is allowed through; success closes
    the breaker, failure re-opens it for another full timeout.
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 30.0,
                 clock: Clock | None = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock or SystemClock()
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a restart proceed right now? (May transition open→half-open.)"""
        if self.state == "open":
            if self.clock.now() - self._opened_at >= self.reset_timeout:
                self.state = "half_open"
                return True
            return False
        if self.state == "half_open":
            # One probe at a time: the half-open restart already went out.
            return False
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.failure_threshold:
            self.state = "open"
            self._opened_at = self.clock.now()

    def snapshot(self) -> dict:
        return {"state": self.state, "failures": self.failures}


class WorkerState:
    """The supervisor's book-keeping for one worker handle."""

    def __init__(self, handle, breaker: CircuitBreaker):
        self.handle = handle
        self.breaker = breaker
        self.healthy = False
        self.restarts = 0            # successful restarts (beyond first start)
        self.failed_restarts = 0
        self.last_started_at: float | None = None
        self.next_restart_at: float | None = None
        self._backoff_attempt = 0

    @property
    def worker_id(self) -> str:
        return self.handle.worker_id

    def snapshot(self) -> dict:
        return {
            "worker": self.worker_id,
            "healthy": self.healthy,
            "running": bool(getattr(self.handle, "running", False)),
            "restarts": self.restarts,
            "failed_restarts": self.failed_restarts,
            "next_restart_at": self.next_restart_at,
            "breaker": self.breaker.snapshot(),
        }


class WorkerSupervisor:
    """Keeps a set of workers alive; notifies listeners of state changes.

    ``on_up`` / ``on_down`` callbacks (``callable(worker_id)``) let the
    router keep its hash ring and address table in sync without the
    supervisor knowing the router exists.
    """

    def __init__(self, workers, *, clock: Clock | None = None,
                 health_interval: float = 0.5,
                 health_timeout: float = 5.0,
                 restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 30.0,
                 flap_window: float = 5.0,
                 seed: int | None = None,
                 obs: Observability = OBS_DISABLED,
                 on_up=None, on_down=None):
        if health_interval <= 0:
            raise ValueError("health_interval must be positive")
        self.clock = clock or SystemClock()
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.restart_policy = restart_policy
        self.flap_window = flap_window
        self.obs = obs
        self.on_up = on_up
        self.on_down = on_down
        self._rng = random.Random(seed)
        self._states: dict[str, WorkerState] = {}
        self._task: asyncio.Task | None = None
        self._stopping = False
        for handle in workers:
            breaker = CircuitBreaker(breaker_threshold, breaker_reset,
                                     clock=self.clock)
            self._states[handle.worker_id] = WorkerState(handle, breaker)

    # -- introspection --------------------------------------------------------

    def state_of(self, worker_id: str) -> WorkerState:
        return self._states[worker_id]

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._states))

    def healthy_workers(self) -> tuple[str, ...]:
        return tuple(s.worker_id for s in self._states.values() if s.healthy)

    def status(self) -> list[dict]:
        return [self._states[w].snapshot() for w in sorted(self._states)]

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Start every worker (failures enter the restart loop, not raise)."""
        for state in self._states.values():
            try:
                await state.handle.start()
            except WorkerError:
                log.warning("worker %s failed to start; scheduling restart",
                            state.worker_id)
                self._mark_down(state, flap=False)
                continue
            state.last_started_at = self.clock.now()
            self._mark_up(state)

    def start_loop(self) -> None:
        """Spawn the production health-check loop as an asyncio task."""
        if self._task is None or self._task.done():
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def run(self) -> None:
        while not self._stopping:
            await self.check_once()
            await _async_sleep(self.clock, self.health_interval)

    async def stop(self) -> None:
        """Stop the loop and terminate every worker."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        for state in self._states.values():
            await state.handle.stop()
            state.healthy = False

    def report_failure(self, worker_id: str) -> None:
        """The router saw a transport failure: treat it as a failed probe.

        Idempotent for already-down workers; a fresh failure runs the same
        flap detection as the health loop, so a worker that dies under
        traffic trips the breaker just like one that dies idle.
        """
        state = self._states.get(worker_id)
        if state is None or not state.healthy:
            return
        uptime = (self.clock.now() - state.last_started_at
                  if state.last_started_at is not None else None)
        flap = uptime is not None and uptime < self.flap_window
        self._mark_down(state, flap=flap)

    # -- the supervision step -------------------------------------------------

    async def check_once(self) -> None:
        """One idempotent supervision round: probe, detect, restart-if-due."""
        for state in self._states.values():
            if state.healthy:
                await self._probe(state)
            else:
                await self._maybe_restart(state)

    async def _probe(self, state: WorkerState) -> None:
        try:
            await state.handle.healthz(timeout=self.health_timeout)
        except WorkerUnavailableError as exc:
            log.warning("worker %s failed health check: %s",
                        state.worker_id, exc)
            uptime = (self.clock.now() - state.last_started_at
                      if state.last_started_at is not None else None)
            flap = uptime is not None and uptime < self.flap_window
            self._mark_down(state, flap=flap)
            return
        # Sustained uptime is what closes a half-open breaker: the probe
        # restart has proven itself past the flap window.
        if (state.breaker.state != "closed"
                and state.last_started_at is not None
                and self.clock.now() - state.last_started_at
                >= self.flap_window):
            state.breaker.record_success()

    async def _maybe_restart(self, state: WorkerState) -> None:
        now = self.clock.now()
        if state.next_restart_at is not None and now < state.next_restart_at:
            return
        if not state.breaker.allow():
            return
        try:
            await state.handle.start()
        except WorkerError:
            state.failed_restarts += 1
            state.breaker.record_failure()
            self._schedule_restart(state)
            self._metric("cluster.supervisor.restart_failures")
            return
        state.restarts += 1
        state.last_started_at = self.clock.now()
        state.next_restart_at = None
        state._backoff_attempt = 0
        self._mark_up(state)
        self._metric("cluster.supervisor.restarts")
        log.info("worker %s restarted (restart #%d)",
                 state.worker_id, state.restarts)

    # -- transitions ----------------------------------------------------------

    def _mark_up(self, state: WorkerState) -> None:
        was_healthy = state.healthy
        state.healthy = True
        if not was_healthy and self.on_up is not None:
            self.on_up(state.worker_id)
        self._gauge_healthy()

    def _mark_down(self, state: WorkerState, *, flap: bool) -> None:
        was_healthy = state.healthy
        state.healthy = False
        if flap:
            state.breaker.record_failure()
        else:
            # A crash after honest uptime is not flapping: give the worker
            # a fresh backoff sequence and a clean breaker slate.
            state.breaker.record_success()
        self._schedule_restart(state)
        if was_healthy and self.on_down is not None:
            self.on_down(state.worker_id)
        self._metric("cluster.supervisor.worker_down")
        self._gauge_healthy()

    def _schedule_restart(self, state: WorkerState) -> None:
        state._backoff_attempt += 1
        delay = self.restart_policy.delay(state._backoff_attempt, self._rng)
        state.next_restart_at = self.clock.now() + delay

    # -- metrics --------------------------------------------------------------

    def _metric(self, name: str) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.inc(name)

    def _gauge_healthy(self) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.set_gauge(
                "cluster.supervisor.healthy_workers",
                len(self.healthy_workers()),
            )


async def _async_sleep(clock: Clock, seconds: float) -> None:
    """Sleep on the supervisor's clock inside the event loop.

    A virtual clock (anything with ``advance``) jumps time and yields once
    so tests run in zero wall-clock; the system clock defers to
    ``asyncio.sleep`` so the loop stays responsive.
    """
    if hasattr(clock, "advance"):
        clock.sleep(seconds)
        await asyncio.sleep(0)
    else:
        await asyncio.sleep(seconds)
