"""Request-level failover across a key's replica set.

Corollary 3.5 gives every replica the same answer: a verification
request is a pure function of the spec text, so re-sending it to the
next replica is always safe and always bit-identical. The router
therefore treats :class:`~repro.cluster.worker.WorkerUnavailableError`
— the transport-level "never got an answer" failure — as a signal to
walk the replica list, bounded by a per-request retry budget. Anything
else (an HTTP error status, a malformed spec) is the *answer*, not a
transport failure, and propagates immediately.

Two modes:

* **sequential** (default): try replicas in placement order; first
  answer wins. Total attempts ≤ ``min(budget, len(replicas))``.
* **hedged** (``hedge_delay=t``): start the primary, and if it has not
  answered within ``t`` seconds, start the next replica too — first
  answer wins, stragglers are cancelled. Tail-latency insurance for
  read-heavy verification traffic at the cost of occasional duplicated
  work (harmless: the duplicate hits a warm memo).
"""

from __future__ import annotations

import asyncio

from ..errors import ReproError
from .worker import WorkerUnavailableError

__all__ = ["AllReplicasFailedError", "call_with_failover"]


class AllReplicasFailedError(ReproError):
    """Every replica in the budget failed at the transport level."""

    def __init__(self, replicas, errors):
        self.replicas = tuple(replicas)
        self.errors = tuple(errors)
        detail = "; ".join(str(e) for e in self.errors) or "no replicas"
        super().__init__(
            f"all {len(self.replicas)} replica(s) failed: {detail}"
        )


async def call_with_failover(replicas, call, *, budget: int | None = None,
                             hedge_delay: float | None = None,
                             on_failure=None, on_hedge=None,
                             on_hedge_win=None):
    """Run ``await call(worker_id)`` against replicas until one answers.

    Returns ``(result, worker_id)`` identifying which replica answered.
    ``budget`` caps total attempts (default: one per replica);
    ``on_failure(worker_id, exc)`` observes each transport failure (the
    router uses it to tell the supervisor a worker looks dead);
    ``on_hedge(worker_id)`` observes each hedged launch past the primary,
    and ``on_hedge_win(worker_id)`` fires when such a launch is the one
    that answered — together they are the hedge win rate on
    ``/cluster/metrics``. Raises :class:`AllReplicasFailedError` when the
    budget is exhausted, and re-raises non-transport exceptions
    immediately.
    """
    targets = list(replicas)
    if budget is not None:
        targets = targets[:max(budget, 0)]
    if not targets:
        raise AllReplicasFailedError((), ())
    if hedge_delay is None or len(targets) == 1:
        return await _sequential(targets, call, on_failure)
    return await _hedged(targets, call, hedge_delay, on_failure,
                         on_hedge, on_hedge_win)


async def _sequential(targets, call, on_failure):
    errors = []
    for worker_id in targets:
        try:
            return await call(worker_id), worker_id
        except WorkerUnavailableError as exc:
            errors.append(exc)
            if on_failure is not None:
                on_failure(worker_id, exc)
    raise AllReplicasFailedError(targets, errors)


async def _hedged(targets, call, hedge_delay, on_failure,
                  on_hedge=None, on_hedge_win=None):
    loop = asyncio.get_running_loop()
    owner: dict[asyncio.Task, str] = {}
    hedged: set[asyncio.Task] = set()  # launches past the primary
    pending: set[asyncio.Task] = set()
    errors = []
    next_idx = 0

    def launch():
        nonlocal next_idx
        task = loop.create_task(call(targets[next_idx]))
        owner[task] = targets[next_idx]
        if next_idx > 0:
            hedged.add(task)
            if on_hedge is not None:
                on_hedge(targets[next_idx])
        pending.add(task)
        next_idx += 1

    async def cancel_rest():
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    launch()
    try:
        while pending:
            # While unlaunched replicas remain, wait only the hedge
            # window; afterwards wait for whatever is still in flight.
            timeout = hedge_delay if next_idx < len(targets) else None
            done, pending = await asyncio.wait(
                pending, timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                launch()  # primary is slow: hedge to the next replica
                continue
            for task in done:
                exc = task.exception()
                if exc is None:
                    await cancel_rest()
                    if task in hedged and on_hedge_win is not None:
                        on_hedge_win(owner[task])
                    return task.result(), owner[task]
                if isinstance(exc, WorkerUnavailableError):
                    errors.append(exc)
                    if on_failure is not None:
                        on_failure(owner[task], exc)
                    if next_idx < len(targets):
                        launch()
                else:
                    await cancel_rest()
                    raise exc
        raise AllReplicasFailedError(targets, errors)
    except asyncio.CancelledError:
        await cancel_rest()
        raise
