"""The sharded verification cluster (``repro cluster``).

One :class:`~repro.cluster.router.ClusterRouter` front door — speaking
the exact wire protocol of the single-process daemon — over N supervised
``repro serve`` workers:

* :mod:`~repro.cluster.placement` — consistent-hash placement of spec
  keys onto K replicas (Corollary 3.5 makes verification shardable by
  specification, and placement-by-key keeps worker memos and the shared
  compile cache warm);
* :mod:`~repro.cluster.supervisor` — health checks, exponential-backoff
  restarts with seeded jitter, per-worker circuit breakers against
  crash loops;
* :mod:`~repro.cluster.failover` — request-level failover across a
  key's replica set with a retry budget and optional hedged reads
  (verification is pure, so retries are safe and bit-identical);
* :mod:`~repro.cluster.quotas` — work-conserving per-tenant admission
  shares with fair shedding;
* degraded mode — when every replica for a key is down, the router
  answers from a bounded in-process verifier, tagging the response
  ``"degraded": true`` rather than dropping the request.
"""

from .failover import AllReplicasFailedError, call_with_failover
from .placement import HashRing
from .quotas import AdmissionController, TenantQuotaExceededError
from .router import ClusterHandle, ClusterRouter, cluster_in_thread
from .supervisor import CircuitBreaker, WorkerState, WorkerSupervisor
from .worker import ProcessWorker, WorkerError, WorkerUnavailableError

__all__ = [
    "HashRing",
    "ProcessWorker",
    "WorkerError",
    "WorkerUnavailableError",
    "WorkerSupervisor",
    "WorkerState",
    "CircuitBreaker",
    "AllReplicasFailedError",
    "call_with_failover",
    "AdmissionController",
    "TenantQuotaExceededError",
    "ClusterRouter",
    "ClusterHandle",
    "cluster_in_thread",
]
