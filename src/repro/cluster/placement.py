"""Consistent-hash placement of spec keys onto workers.

Corollary 3.5 makes verification embarrassingly shardable *by
specification*: each ``G ∧ C ∧ ¬Φ`` question is independent work, and
all the state worth co-locating (the registry's compiled memo, the
worker's warm interned DAGs, the on-disk compile cache entries) is keyed
by the spec. The :class:`HashRing` therefore hashes the registry's batch
key — ``name@version`` or ``inline:<sha16>`` — onto a ring of virtual
nodes, and reads off the first K *distinct* workers clockwise as the
key's replica set:

* the same key always lands on the same replicas (cache locality:
  repeated requests for one spec hit a worker whose memo is warm);
* adding or removing one worker moves only ``~1/N`` of the keys
  (restart churn does not reshuffle the whole fleet's caches);
* K replicas give the router somewhere to fail over to when the
  primary dies mid-batch.

Everything is derived from :func:`hashlib.sha256`, so placement is
deterministic across processes, Python versions, and ``PYTHONHASHSEED``
— the chaos tests rely on computing a key's primary from outside the
router process.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: Virtual nodes per worker: enough to spread a handful of workers
#: evenly around the ring without making lookups measurable.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """A stable 64-bit ring coordinate for ``token``."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes and K-replica reads.

    >>> ring = HashRing(["w0", "w1", "w2"], replicas=2)
    >>> ring.replicas_for("orders@1") == ring.replicas_for("orders@1")
    True
    >>> len(ring.replicas_for("orders@1"))
    2
    """

    def __init__(self, workers=(), replicas: int = 2,
                 vnodes: int = DEFAULT_VNODES):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.replicas = replicas
        self.vnodes = vnodes
        self._workers: set[str] = set()
        self._points: list[int] = []       # sorted ring coordinates
        self._owner: dict[int, str] = {}   # coordinate -> worker id
        for worker_id in workers:
            self.add(worker_id)

    # -- membership -----------------------------------------------------------

    def add(self, worker_id: str) -> None:
        """Add ``worker_id``'s virtual nodes to the ring (idempotent)."""
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for vnode in range(self.vnodes):
            point = _point(f"{worker_id}#{vnode}")
            # sha256 collisions across distinct tokens are not a real
            # concern; first-registered keeps the point deterministically.
            if point not in self._owner:
                self._owner[point] = worker_id
                bisect.insort(self._points, point)

    def remove(self, worker_id: str) -> None:
        """Remove ``worker_id`` from the ring (idempotent)."""
        if worker_id not in self._workers:
            return
        self._workers.discard(worker_id)
        self._points = [p for p in self._points
                        if self._owner.get(p) != worker_id]
        self._owner = {p: w for p, w in self._owner.items() if w != worker_id}

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    # -- lookup ---------------------------------------------------------------

    def replicas_for(self, key: str) -> tuple[str, ...]:
        """The key's replica set: up to K distinct workers, primary first.

        Fewer than K workers on the ring means every worker is a replica
        (degraded redundancy, still deterministic order).
        """
        if not self._workers:
            return ()
        want = min(self.replicas, len(self._workers))
        start = bisect.bisect_left(self._points, _point(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owner[self._points[(start + offset) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)

    def primary_for(self, key: str) -> str:
        """The first replica (raises on an empty ring)."""
        replicas = self.replicas_for(key)
        if not replicas:
            raise ValueError("hash ring has no workers")
        return replicas[0]
