"""Per-tenant admission control for the cluster router.

The router multiplexes tenants onto one worker fleet; without admission
control, one tenant's burst starves everyone (the workers' batchers shed
by arrival order, which is fair per-request but not per-tenant). The
:class:`AdmissionController` enforces *work-conserving shares*:

* each tenant has a guaranteed share of in-flight cost (its ``share``,
  or ``default_share``); a request is **always admitted while its tenant
  is under guarantee** — no amount of bursting by others can starve it;
* beyond its guarantee a tenant may *burst* into whatever total capacity
  is free — idle capacity is never wasted on a quota technicality;
* when capacity is exhausted, the burster is shed (HTTP 429), not the
  tenant running under guarantee — fair shedding by construction.

The admit rule is ``usage(t) + cost <= share(t)`` **or**
``total + cost <= capacity``. The first disjunct means total in-flight
cost can overshoot ``capacity``, but only up to ``sum(shares)`` — a
bound the operator chose explicitly. Keeping guarantees unconditional is
what makes them guarantees.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import ReproError

__all__ = ["TenantQuotaExceededError", "AdmissionController"]

#: Namespace used for requests that carry no ``X-Repro-Tenant`` header.
DEFAULT_TENANT = "default"


class TenantQuotaExceededError(ReproError):
    """The tenant is over its share and the cluster is at capacity."""

    def __init__(self, tenant: str, usage: float, share: float):
        self.tenant = tenant
        self.usage = usage
        self.share = share
        super().__init__(
            f"tenant {tenant!r} over share ({usage:g}/{share:g}) "
            f"and cluster at capacity"
        )


class AdmissionController:
    """Work-conserving per-tenant admission over a shared capacity.

    ``capacity`` is total in-flight cost (a /verify request costs its
    property count, everything else costs 1 — same unit the workers'
    batchers meter). ``shares`` maps tenant → guaranteed cost;
    ``default_share`` covers unlisted tenants.
    """

    def __init__(self, capacity: float, *, default_share: float = 1.0,
                 shares: dict[str, float] | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if default_share < 0:
            raise ValueError("default_share must be >= 0")
        self.capacity = capacity
        self.default_share = default_share
        self.shares = dict(shares or {})
        for tenant, share in self.shares.items():
            if share < 0:
                raise ValueError(f"share for {tenant!r} must be >= 0")
        self._usage: dict[str, float] = defaultdict(float)
        self._total = 0.0
        self.admitted = 0
        self.shed = 0
        # Per-tenant shed counts: who is actually being turned away —
        # the fairness evidence `repro top` and /cluster/metrics show.
        self.shed_by_tenant: dict[str, int] = defaultdict(int)

    def share_of(self, tenant: str) -> float:
        return self.shares.get(tenant, self.default_share)

    def admit(self, tenant: str | None, cost: float = 1.0) -> None:
        """Admit ``cost`` units for ``tenant`` or raise
        :class:`TenantQuotaExceededError`. Pair with :meth:`release`."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        tenant = tenant or DEFAULT_TENANT
        usage = self._usage[tenant]
        share = self.share_of(tenant)
        under_guarantee = usage + cost <= share
        fits_capacity = self._total + cost <= self.capacity
        if not (under_guarantee or fits_capacity):
            self.shed += 1
            self.shed_by_tenant[tenant] += 1
            raise TenantQuotaExceededError(tenant, usage, share)
        self._usage[tenant] = usage + cost
        self._total += cost
        self.admitted += 1

    def release(self, tenant: str | None, cost: float = 1.0) -> None:
        tenant = tenant or DEFAULT_TENANT
        self._usage[tenant] = max(0.0, self._usage[tenant] - cost)
        self._total = max(0.0, self._total - cost)

    @property
    def total_in_flight(self) -> float:
        return self._total

    def usage_of(self, tenant: str) -> float:
        return self._usage.get(tenant or DEFAULT_TENANT, 0.0)

    def snapshot(self) -> dict:
        tenants: dict[str, dict] = {}
        for tenant in sorted(set(self._usage) | set(self.shed_by_tenant)):
            usage = self._usage.get(tenant, 0.0)
            shed = self.shed_by_tenant.get(tenant, 0)
            if usage > 0 or shed > 0:
                tenants[tenant] = {
                    "usage": usage,
                    "share": self.share_of(tenant),
                    "shed": shed,
                }
        return {
            "capacity": self.capacity,
            "in_flight": self._total,
            "admitted": self.admitted,
            "shed": self.shed,
            "tenants": tenants,
        }
