"""The classic workflow control-flow patterns, expressed in CTR.

The workflow-patterns literature (van der Aalst et al.) catalogues the
control-flow idioms workflow languages are measured against. This module
maps each pattern onto the concurrent-Horn fragment, with precise notes on
the few that fall *outside* the fragment — which is itself informative:
the boundary coincides with the paper's unique-event assumption and the
all-branches-complete reading of ``|``.

Expressible directly:

=====================================  =======================================
Pattern                                Encoding
=====================================  =======================================
Sequence                               ``⊗`` (:func:`sequence`)
Parallel split + synchronization       ``|`` (:func:`parallel_split`)
Exclusive choice + simple merge        ``∨`` (:func:`exclusive_choice`)
Multi-choice + synchronizing merge     choice over non-empty branch subsets
                                       (:func:`multi_choice`)
Structured loop                        bounded unrolling
                                       (:func:`repro.ctr.unroll.bounded_loop`)
Interleaved parallel routing           concurrent ``⊙`` blocks
                                       (:func:`interleaved_routing`)
Deferred choice                        any ``∨`` — the pro-active scheduler
                                       keeps every alternative live until an
                                       event commits (:func:`deferred_choice`)
Cancel region / compensation           the saga encoding
                                       (:mod:`repro.core.saga`)
Milestone (one-shot)                   a ``send``/``receive`` token guard
                                       (:func:`milestone`)
=====================================  =======================================

Not expressible in the fragment (and why):

* **Multi-merge / multiple instances** — the continuation would run once
  per completed branch, i.e. the same events occur repeatedly, violating
  the unique-event property the compilation relies on (Definition 3.1).
* **Discriminator / N-out-of-M join** — the continuation starts after the
  first branch while the laggards are abandoned mid-flight; in CTR every
  concurrent conjunct must run to completion for the conjunction to hold.
* **Arbitrary (unbounded) cycles** — need recursive rules, excluded by
  the paper's non-iterative restriction; bounded unrolling approximates.
"""

from __future__ import annotations

import itertools

from ..ctr.formulas import Goal, Isolated, Receive, Send, alt, par, seq

__all__ = [
    "sequence",
    "parallel_split",
    "exclusive_choice",
    "multi_choice",
    "interleaved_routing",
    "deferred_choice",
    "milestone",
]


def sequence(*activities: Goal) -> Goal:
    """WCP-1 Sequence: activities in strict order."""
    return seq(*activities)


def parallel_split(*branches: Goal) -> Goal:
    """WCP-2/3 Parallel split with synchronization: all branches run,
    interleaved, and the pattern completes when all have completed."""
    return par(*branches)


def exclusive_choice(*branches: Goal) -> Goal:
    """WCP-4/5 Exclusive choice with simple merge: exactly one branch runs."""
    return alt(*branches)


def multi_choice(*branches: Goal) -> Goal:
    """WCP-6/7 Multi-choice with structured synchronizing merge.

    Any non-empty subset of the branches runs concurrently; the merge
    waits for exactly the chosen ones. Encoded as the disjunction over
    the 2^n − 1 subsets — exponential, so intended for small fan-outs
    (which is how multi-choice occurs in practice).
    """
    if not branches:
        raise ValueError("multi_choice needs at least one branch")
    alternatives = []
    for size in range(1, len(branches) + 1):
        for subset in itertools.combinations(branches, size):
            alternatives.append(par(*subset))
    return alt(*alternatives)


def interleaved_routing(*activities: Goal) -> Goal:
    """WCP-17 Interleaved parallel routing: the activities run in *some*
    order, never overlapping — concurrent composition of ⊙ blocks."""
    return par(*(Isolated(activity) for activity in activities))


def deferred_choice(*branches: Goal) -> Goal:
    """WCP-16 Deferred choice.

    Structurally identical to :func:`exclusive_choice`; the behavioural
    difference is *who* chooses, and the pro-active scheduler implements
    exactly the deferred reading: every alternative stays eligible until
    the first fired event commits the run (see
    ``Scheduler.test_shared_choice_keeps_worlds``).
    """
    return alt(*branches)


def milestone(guarded: Goal, milestone_token: str) -> tuple[Goal, Goal]:
    """WCP-18 Milestone (one-shot variant).

    Returns ``(reach, guarded')``: sequence ``reach`` somewhere in the
    workflow to mark the milestone, and use ``guarded'`` for the activity
    that may only start after the milestone was reached. (The full
    pattern also allows the milestone to *expire*, which would need a
    retractable token — outside the fragment.)
    """
    return Send(milestone_token), seq(Receive(milestone_token), guarded)
