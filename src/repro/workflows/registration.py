"""Graduate-student registration — sub-workflows via concurrent-Horn rules.

The paper's second motivating process. This specification exercises the
rule layer (:mod:`repro.ctr.rules`): named sub-workflows hide their
internal structure from the top-level specification, exactly as Section 2
describes ("subWorkFlowName can be used in workflow specifications as if
it were a regular activity").

Top level::

    registration ← advising ⊗ (enrollment | funding) ⊗ finalize

with ``advising``, ``enrollment``, ``funding`` defined by their own rules;
``enrollment`` and ``funding`` each have alternative definitions (regular
vs. late registration; assistantship vs. self-funded), demonstrating
multiple clauses per head.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.klein import klein_existence, requires_prior
from ..ctr.formulas import Atom, Goal, atoms, seq
from ..ctr.rules import Rule, RuleBase

__all__ = ["registration_rules", "registration_goal", "registration_constraints",
           "registration_specification"]


def registration_rules() -> RuleBase:
    """Sub-workflow definitions for the registration process."""
    (meet_advisor, sign_plan, pick_courses, enroll_online, pay_late_fee,
     enroll_in_person, apply_ta, apply_ra, accept_offer, pay_tuition,
     get_id_card) = atoms(
        "meet_advisor sign_plan pick_courses enroll_online pay_late_fee "
        "enroll_in_person apply_ta apply_ra accept_offer pay_tuition "
        "get_id_card"
    )
    return RuleBase(
        [
            Rule("advising", meet_advisor >> sign_plan),
            # Two alternative definitions: regular online enrollment, or the
            # late path that requires an in-person visit and a fee.
            Rule("enrollment", pick_courses >> enroll_online),
            Rule("enrollment", pick_courses >> pay_late_fee >> enroll_in_person),
            Rule("funding", (apply_ta + apply_ra) >> accept_offer),
            Rule("funding", Atom("self_funded")),
            Rule("finalize", pay_tuition >> get_id_card),
        ]
    )


def registration_goal() -> Goal:
    """The top-level registration workflow (uses the sub-workflow names)."""
    advising = Atom("advising")
    enrollment = Atom("enrollment")
    funding = Atom("funding")
    finalize = Atom("finalize")
    return seq(advising, enrollment | funding, finalize)


def registration_constraints() -> list[Constraint]:
    """Global constraints spanning sub-workflow boundaries."""
    return [
        # Tuition can only be paid after an enrollment happened.
        disj(
            absent("pay_tuition"),
            order("enroll_online", "pay_tuition"),
            order("enroll_in_person", "pay_tuition"),
        ),
        # Accepting a funding offer requires the signed study plan first.
        requires_prior("accept_offer", "sign_plan"),
        # Late fees are waived for RA holders: the two are incompatible.
        disj(absent("pay_late_fee"), absent("apply_ra")),
        # Whoever applies for a TA-ship must complete online enrollment
        # (the TA assignment system only reads the online roster).
        klein_existence("apply_ta", "enroll_online"),
    ]


def registration_specification() -> tuple[Goal, list[Constraint], RuleBase]:
    """Goal, constraints, and rule base for :func:`repro.core.compile_workflow`."""
    return registration_goal(), registration_constraints(), registration_rules()
