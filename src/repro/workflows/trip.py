"""Trip planning — the motivating workflow from the paper's introduction.

A traveller books transport and lodging for a trip:

* transport: either a flight (search, then reserve, then ticket) or a
  train reservation;
* lodging: a hotel booking, concurrently with transport;
* an optional rental car, only sensible when flying;
* payment happens in isolation (⊙) at the end — the charge and the
  voucher issue must not interleave with anything else.

Global constraints tie the concurrent branches together:

* the hotel must be booked before any payment is charged;
* tickets may only be issued after the reservation was made (order);
* a rental car requires a flight (Klein existence: renting without
  flying makes no sense);
* if the budget airline is chosen, the refundable-fare upgrade must not
  happen (mutual exclusion).
"""

from __future__ import annotations

from ..constraints.algebra import Constraint
from ..constraints.klein import causes, klein_existence, mutually_exclusive, requires_prior
from ..ctr.formulas import Goal, Isolated, atoms

__all__ = ["trip_goal", "trip_constraints", "trip_specification"]


def trip_goal() -> Goal:
    """The trip-planning control flow as a concurrent-Horn goal."""
    (plan, search_flights, reserve_flight, issue_ticket, book_train,
     book_hotel, upgrade_refundable, rent_car, skip_car,
     charge_card, issue_voucher, confirm) = atoms(
        "plan search_flights reserve_flight issue_ticket book_train "
        "book_hotel upgrade_refundable rent_car skip_car "
        "charge_card issue_voucher confirm"
    )
    (keep_fare,) = atoms("keep_fare")
    flight_branch = search_flights >> reserve_flight >> issue_ticket
    transport = flight_branch + book_train
    lodging = book_hotel >> (upgrade_refundable + keep_fare)
    car = rent_car + skip_car
    payment = Isolated(charge_card >> issue_voucher)
    return plan >> (transport | lodging | car) >> payment >> confirm


def trip_constraints() -> list[Constraint]:
    """The global dependencies of the trip workflow."""
    return [
        # Payment is only charged once the hotel is secured.
        requires_prior("charge_card", "book_hotel"),
        # A rental car makes no sense without a flight reservation...
        klein_existence("rent_car", "reserve_flight"),
        # ...and must be picked up after the flight is reserved.
        requires_prior("rent_car", "reserve_flight"),
        # A refundable upgrade is incompatible with the train's fixed fare.
        mutually_exclusive("upgrade_refundable", "book_train"),
        # Issuing a ticket obliges us to eventually charge the card.
        causes("issue_ticket", "charge_card"),
    ]


def trip_specification() -> tuple[Goal, list[Constraint]]:
    """Goal and constraints together, ready for :func:`repro.core.compile_workflow`."""
    return trip_goal(), trip_constraints()
