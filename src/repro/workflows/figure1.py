"""The paper's running example: the workflow of Figure 1 and Example 5.7.

Two artifacts are reproduced here:

* :func:`figure1_graph` / :func:`figure1_goal` — the control flow graph of
  Figure 1 and its concurrent-Horn encoding, the paper's formula (1)::

      a ⊗ ((cond1 ⊗ b ⊗ ((d ⊗ cond3 ⊗ h) ∨ e) ⊗ j)
          | (cond2 ⊗ c ⊗ ((f ⊗ i ⊗ cond4) ∨ (g ⊗ cond5)))) ⊗ k

* :func:`figure1_constraints` — the global constraints shown on the right
  of Figure 1, written as they appear in Section 3's catalogue:
  "d must precede g if both occur" (Klein order) and "if f occurs then h
  must also occur" (Klein existence).

* :func:`example_5_7` — the knot example: the graph ``γ ⊗ (η ∨ (α|β|η))``
  with the three conditional order constraints whose joint compilation
  leaves only ``G₂ = γ ⊗ η`` alive.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.klein import klein_existence, klein_order
from ..ctr.formulas import Goal, atoms
from ..graph.cfg import ControlFlowGraph
from ..graph.translate import to_goal

__all__ = [
    "figure1_graph",
    "figure1_goal",
    "figure1_constraints",
    "example_5_7",
]


def figure1_graph() -> ControlFlowGraph:
    """The control flow graph on the left of Figure 1."""
    g = ControlFlowGraph()
    g.set_split("a", "and")
    g.add_arc("a", "b", condition="cond1")
    g.add_arc("a", "c", condition="cond2")
    g.set_split("b", "or")
    g.add_arc("b", "d")
    g.add_arc("b", "e")
    g.add_arc("d", "h", condition="cond3")
    g.add_arc("h", "j")
    g.add_arc("e", "j")
    g.set_split("c", "or")
    g.add_arc("c", "f")
    g.add_arc("c", "g")
    g.add_arc("f", "i")
    g.add_arc("j", "k")
    g.add_arc("i", "k", condition="cond4")
    g.add_arc("g", "k", condition="cond5")
    return g


def figure1_goal() -> Goal:
    """Formula (1): the concurrent-Horn encoding of the Figure 1 graph."""
    return to_goal(figure1_graph())


def figure1_constraints() -> list[Constraint]:
    """Global constraints in the style of Figure 1's right-hand side."""
    return [
        klein_order("d", "g"),      # if d and g both occur, d comes first
        klein_existence("f", "h"),  # if f occurs, h must occur as well
    ]


def example_5_7() -> tuple[Goal, list[Constraint]]:
    """Example 5.7: the knotted specification whose excision leaves γ ⊗ η."""
    alpha, beta, gamma, eta = atoms("alpha beta gamma eta")
    goal = gamma >> (eta + (alpha | beta | eta))
    c1 = disj(absent("alpha"), order("alpha", "beta"))
    c2 = disj(absent("beta"), order("beta", "eta"))
    c3 = disj(absent("alpha"), order("eta", "alpha"))
    return goal, [c1, c2, c3]
