"""Order fulfilment — a transactional workflow with triggers and tasks.

This workflow exercises the transactional vocabulary of Section 3 (tasks
modelled by their ``start``/``commit``/``abort`` events, via
:class:`repro.constraints.singh.Task`) and the trigger framework of
Figure 1's middle column:

* three tasks run the order: ``payment``, ``inventory`` (stock
  reservation) and ``shipping``;
* payment and inventory proceed concurrently after the order is placed;
  shipping follows;
* intertask dependencies from Singh's event algebra wire them together
  (shipping cannot start unless both others committed; an inventory abort
  cascades into a payment abort — the saga pattern);
* a trigger fires a restock action when the inventory commit leaves the
  stock low.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.singh import Task, abort_dependency
from ..ctr.formulas import Atom, Goal, atoms, par, seq
from ..graph.triggers import Trigger, apply_triggers

__all__ = [
    "PAYMENT",
    "INVENTORY",
    "SHIPPING",
    "orders_goal",
    "orders_constraints",
    "orders_specification",
    "restock_trigger",
]

PAYMENT = Task("payment")
INVENTORY = Task("inventory")
SHIPPING = Task("shipping")


def orders_goal(with_triggers: bool = True) -> Goal:
    """The order-fulfilment control flow, optionally with the restock trigger.

    After payment and inventory run concurrently, the order either goes to
    shipping or is cancelled (an OR node) — the cancellation path is what
    aborted sub-transactions fall back to.
    """
    place_order, close_order, cancel_order = atoms("place_order close_order cancel_order")
    body = seq(
        place_order,
        par(PAYMENT.skeleton(), INVENTORY.skeleton()),
        SHIPPING.skeleton() + cancel_order,
        close_order,
    )
    if with_triggers:
        body = apply_triggers(body, [restock_trigger()])
    return body


def restock_trigger() -> Trigger:
    """On inventory commit, if stock is low, schedule a restock."""
    return Trigger(
        event=INVENTORY.commit,
        condition="stock_low",
        predicate=lambda db: bool(db.query("stock_low")),
        action=Atom("restock"),
    )


def orders_constraints() -> list[Constraint]:
    """Intertask dependencies for the order workflow."""
    return [
        # Shipping only starts if payment committed first...
        disj(absent(SHIPPING.start), order(PAYMENT.commit, SHIPPING.start)),
        # ...and inventory committed first.
        disj(absent(SHIPPING.start), order(INVENTORY.commit, SHIPPING.start)),
        # An inventory abort cascades into a payment abort (saga).
        abort_dependency(PAYMENT, on=INVENTORY),
        # An aborted payment must never be followed by a shipping commit.
        disj(absent(PAYMENT.abort), absent(SHIPPING.commit)),
    ]


def orders_specification(with_triggers: bool = True) -> tuple[Goal, list[Constraint]]:
    """Goal and constraints, ready for :func:`repro.core.compile_workflow`."""
    return orders_goal(with_triggers), orders_constraints()
