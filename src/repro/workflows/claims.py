"""Insurance claim handling — a classic workflow-management case study.

A filed claim is registered, then assessed along two concurrent tracks —
policy verification and damage appraisal (with an optional on-site
inspection for large damages) — after which the claim is either settled
(payment in an isolated block) or denied (with a mandatory denial letter,
and an optional appeal that reopens a senior review).

The constraint set encodes the business rules auditors actually care
about, several of which span concurrent branches and are inexpressible in
the control flow alone:

* four-eyes rule: a settlement needs the appraisal *and* the policy check
  before the payout authorization;
* fraud hold: if the fraud flag was raised, no payment may ever happen;
* appeals only after denials, and a senior review whenever there is an
  appeal;
* inspections require an appraisal to have started first.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.klein import causes, mutually_exclusive, requires_prior
from ..ctr.formulas import Goal, Isolated, atoms

__all__ = ["claims_goal", "claims_constraints", "claims_specification"]


def claims_goal() -> Goal:
    """The claim-handling control flow."""
    (register, verify_policy, appraise, inspect_site, skip_inspection,
     flag_fraud, clear_claim, authorize_payment, transfer_funds,
     deny, send_denial_letter, appeal, senior_review, close) = atoms(
        "register verify_policy appraise inspect_site skip_inspection "
        "flag_fraud clear_claim authorize_payment transfer_funds "
        "deny send_denial_letter appeal senior_review close"
    )
    appraisal_track = appraise >> (inspect_site + skip_inspection)
    screening = flag_fraud + clear_claim
    assessment = verify_policy | appraisal_track | screening
    settle = Isolated(authorize_payment >> transfer_funds)
    denial = deny >> send_denial_letter >> ((appeal >> senior_review) + close)
    return register >> assessment >> (settle + denial)


def claims_constraints() -> list[Constraint]:
    """The audit rules."""
    return [
        # Four-eyes: both assessment tracks complete before authorization.
        requires_prior("authorize_payment", "verify_policy"),
        requires_prior("authorize_payment", "appraise"),
        # Fraud hold: a flagged claim is never paid.
        mutually_exclusive("flag_fraud", "authorize_payment"),
        # A flagged claim must be denied (and hence lettered).
        disj(absent("flag_fraud"), order("flag_fraud", "deny")),
        # Denials always precede appeals; appeals force the senior review
        # (already structural, stated for the record / redundancy demo).
        causes("appeal", "senior_review"),
        # Site inspections only once the appraisal is underway.
        requires_prior("inspect_site", "appraise"),
    ]


def claims_specification() -> tuple[Goal, list[Constraint]]:
    return claims_goal(), claims_constraints()
