"""Ready-made workflow specifications used by the examples, tests, and benches."""

from .claims import claims_constraints, claims_goal, claims_specification
from .figure1 import example_5_7, figure1_constraints, figure1_goal, figure1_graph
from .patterns import (
    deferred_choice,
    exclusive_choice,
    interleaved_routing,
    milestone,
    multi_choice,
    parallel_split,
    sequence,
)
from .release import release_constraints, release_goal, release_specification
from .orders import (
    INVENTORY,
    PAYMENT,
    SHIPPING,
    orders_constraints,
    orders_goal,
    orders_specification,
    restock_trigger,
)
from .registration import (
    registration_constraints,
    registration_goal,
    registration_rules,
    registration_specification,
)
from .trip import trip_constraints, trip_goal, trip_specification

__all__ = [
    "figure1_graph",
    "figure1_goal",
    "figure1_constraints",
    "example_5_7",
    "trip_goal",
    "trip_constraints",
    "trip_specification",
    "orders_goal",
    "orders_constraints",
    "orders_specification",
    "restock_trigger",
    "PAYMENT",
    "INVENTORY",
    "SHIPPING",
    "registration_goal",
    "registration_constraints",
    "registration_rules",
    "registration_specification",
    "claims_goal", "claims_constraints", "claims_specification",
    "release_goal", "release_constraints", "release_specification",
    "sequence", "parallel_split", "exclusive_choice", "multi_choice",
    "interleaved_routing", "deferred_choice", "milestone",
]
