"""Software release pipeline — a modern workflow on the same old theory.

Build, test (unit and integration concurrently), then ship: either a
gradual rollout (canary → promote) or a direct deploy for hotfixes, with
an optional rollback path. A change-freeze toggle and review rules arrive
as global constraints.

This specification doubles as the library's stress example for the
redundancy analyzer: several rules deliberately overlap (e.g. the
"canary before promote" order is also implied by the graph), so
``redundant_constraints`` has something real to find — exercised in
``tests/workflows/test_catalog.py``.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.klein import causes, klein_order, mutually_exclusive, requires_prior
from ..ctr.formulas import Goal, atoms

__all__ = ["release_goal", "release_constraints", "release_specification"]


def release_goal() -> Goal:
    """The release-pipeline control flow.

    The pipeline is *optimistic*: the shipping track runs concurrently
    with the (slow) testing track, so nothing in the graph alone stops a
    canary from going out before the integration tests or the review
    finish — that is exactly what the global constraints are for.
    """
    (merge, build, unit_tests, integration_tests, review_signoff,
     canary, promote, direct_deploy, verify_health, rollback, announce) = atoms(
        "merge build unit_tests integration_tests review_signoff "
        "canary promote direct_deploy verify_health rollback announce"
    )
    testing = unit_tests | integration_tests | review_signoff
    gradual = canary >> promote
    ship = gradual + direct_deploy
    aftermath = verify_health >> (announce + rollback)
    return merge >> build >> (testing | ship) >> aftermath


def release_constraints() -> list[Constraint]:
    return [
        # Review must be in before anything reaches production.
        disj(absent("canary"), order("review_signoff", "canary")),
        disj(absent("direct_deploy"), order("review_signoff", "direct_deploy")),
        # Unit tests gate integration? No - they run concurrently; but a
        # canary release additionally demands integration tests finished
        # before the canary starts.
        requires_prior("canary", "integration_tests"),
        # Deliberately redundant: the graph already orders canary→promote.
        klein_order("canary", "promote"),
        # A rollback obliges a follow-up announcement? No - mutual
        # exclusion: we never announce a release that was rolled back.
        mutually_exclusive("rollback", "announce"),
        # Promoting means we committed: no rollback after a promote...
        # except that is exactly what rollback is for - instead demand a
        # health check between promote and any rollback.
        disj(absent("promote"), causes("promote", "verify_health")),
    ]


def release_specification() -> tuple[Goal, list[Constraint]]:
    return release_goal(), release_constraints()
