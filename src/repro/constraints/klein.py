"""Klein's constraints and the paper's catalogue of typical dependencies.

Section 3 of the paper lists the real-world constraint idioms expressible
in CONSTR; this module provides them as named constructors. The two Klein
constraints [22] — commonly occurring in workflow specifications — are:

* *order*: if events ``e`` and ``f`` both occur, ``e`` occurs earlier;
* *existence*: if ``e`` ever occurs then ``f`` must occur as well
  (before or after ``e``).

Note the paper's own ``order`` constraint ``∇α ⊗ ∇β`` is *stronger* than
Klein's: it additionally requires both events to occur.
"""

from __future__ import annotations

from .algebra import Constraint, absent, conj, disj, must, order

__all__ = [
    "klein_order",
    "klein_existence",
    "both_occur",
    "mutually_exclusive",
    "causes",
    "requires_prior",
    "not_after",
    "exactly_one",
]


def klein_order(e: str, f: str) -> Constraint:
    """Klein's order constraint: if both ``e`` and ``f`` occur, ``e`` first.

    ``¬∇e ∨ ¬∇f ∨ (∇e ⊗ ∇f)``
    """
    return disj(absent(e), absent(f), order(e, f))


def klein_existence(e: str, f: str) -> Constraint:
    """Klein's existence constraint: if ``e`` occurs, ``f`` occurs too.

    ``¬∇e ∨ ∇f``
    """
    return disj(absent(e), must(f))


def both_occur(e: str, f: str) -> Constraint:
    """``∇e ∧ ∇f`` — both events must occur (in some order)."""
    return conj(must(e), must(f))


def mutually_exclusive(e: str, f: str) -> Constraint:
    """``¬∇e ∨ ¬∇f`` — the two events cannot happen together."""
    return disj(absent(e), absent(f))


def causes(e: str, f: str) -> Constraint:
    """``¬∇e ∨ (∇e ⊗ ∇f)`` — if ``e`` occurs, ``f`` must occur later."""
    return disj(absent(e), order(e, f))


def requires_prior(f: str, e: str) -> Constraint:
    """``¬∇f ∨ (∇e ⊗ ∇f)`` — if ``f`` occurred, ``e`` occurred before it."""
    return disj(absent(f), order(e, f))


def not_after(e: str, f: str) -> Constraint:
    """``¬(∇e ⊗ ∇f)`` — it is not possible for ``f`` to occur after ``e``.

    Expanded via Lemma 3.4 to ``¬∇e ∨ ¬∇f ∨ (∇f ⊗ ∇e)``.
    """
    return disj(absent(e), absent(f), order(f, e))


def exactly_one(e: str, f: str) -> Constraint:
    """Exactly one of the two events occurs."""
    return disj(conj(must(e), absent(f)), conj(absent(e), must(f)))
