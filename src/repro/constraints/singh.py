"""Singh's event algebra of intertask dependencies, mapped onto CONSTR.

The paper states that CONSTR "is as expressive as Singh's Event Algebra
[27]" and that the entire algebra "is isomorphic to a small subset of the
propositional Transaction Logic". This module realises that isomorphism
for the intertask dependencies of the passive-scheduling literature
(Singh DBPL'95/ICDE'96, Attie-Singh-Sheth-Rusinkiewicz VLDB'93, Klein
COMPCON'91), using the significant-event vocabulary ``start(t)``,
``commit(t)``, ``abort(t)``.

Tasks are modelled by their externally observable events, exactly as in
Section 3 of the paper ("tasks are typically modeled in terms of their
significant, externally observable events, such as start, commit, or
abort"). :class:`Task` mints those event names consistently, and the
dependency constructors return plain CONSTR constraints that can be fed
straight into the Apply compiler or into the passive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algebra import Constraint, absent, conj, disj, must, order
from .klein import klein_existence, klein_order

__all__ = [
    "Task",
    "commit_dependency",
    "abort_dependency",
    "strong_commit_dependency",
    "begin_dependency",
    "serial_dependency",
    "exclusion_dependency",
    "compensation_dependency",
]


@dataclass(frozen=True, slots=True)
class Task:
    """A transactional task with ``start``/``commit``/``abort`` events."""

    name: str

    @property
    def start(self) -> str:
        return f"start_{self.name}"

    @property
    def commit(self) -> str:
        return f"commit_{self.name}"

    @property
    def abort(self) -> str:
        return f"abort_{self.name}"

    def skeleton(self):
        """The task's local behaviour as a CTR goal: start, then commit or abort."""
        from ..ctr.formulas import Atom, alt, seq

        return seq(Atom(self.start), alt(Atom(self.commit), Atom(self.abort)))


def commit_dependency(dependent: Task, on: Task) -> Constraint:
    """``t1 commit-depends on t2``: if both commit, ``on`` commits first.

    (Singh's ``c₂ < c₁`` conditional order dependency.)
    """
    return klein_order(on.commit, dependent.commit)


def strong_commit_dependency(dependent: Task, on: Task) -> Constraint:
    """If ``on`` commits, ``dependent`` must commit as well."""
    return klein_existence(on.commit, dependent.commit)


def abort_dependency(dependent: Task, on: Task) -> Constraint:
    """If ``on`` aborts, ``dependent`` must abort as well (abort cascades)."""
    return klein_existence(on.abort, dependent.abort)


def begin_dependency(dependent: Task, on: Task) -> Constraint:
    """``dependent`` cannot start unless ``on`` has started first."""
    return disj(absent(dependent.start), order(on.start, dependent.start))


def serial_dependency(first: Task, second: Task) -> Constraint:
    """``second`` starts only after ``first`` terminates (commits or aborts)."""
    return disj(
        absent(second.start),
        order(first.commit, second.start),
        order(first.abort, second.start),
    )


def exclusion_dependency(a: Task, b: Task) -> Constraint:
    """At most one of the two tasks commits."""
    return disj(absent(a.commit), absent(b.commit))


def compensation_dependency(task: Task, compensator: Task) -> Constraint:
    """If ``task`` commits but later must be undone, ``compensator`` runs.

    Modelled saga-style [15]: the compensator may only run after the task
    committed, and if the compensator starts it must be after the commit.
    """
    return conj(
        disj(absent(compensator.start), order(task.commit, compensator.start)),
        disj(absent(compensator.start), must(compensator.commit)),
    )
