"""Normal forms for CONSTR constraints (Prop 3.3, Lemma 3.4, Cor 3.5).

Three transformations, each preserving the set of satisfying traces under
the unique-event assumption (2):

* :func:`split_serial` — Proposition 3.3: a serial constraint over more
  than two events equals the conjunction of its adjacent order
  constraints: ``∇e₁⊗∇e₂⊗∇e₃  ≡  (∇e₁⊗∇e₂) ∧ (∇e₂⊗∇e₃)``.
* :func:`negate` — Lemma 3.4: CONSTR is closed under negation. De Morgan
  pushes negation to the leaves;
  ``¬(∇e₁⊗∇e₂) ≡ ¬∇e₁ ∨ ¬∇e₂ ∨ (∇e₂⊗∇e₁)``.
* :func:`normalize` / :func:`to_dnf` — Corollary 3.5: every constraint is
  an OR of ANDs whose leaves are primitives or two-event order
  constraints. :func:`normalize` does the leaf-level rewriting only (what
  Apply needs); :func:`to_dnf` additionally distributes to full disjunctive
  normal form and reports the parameters ``N`` (number of conjuncts) and
  ``d`` (number of disjuncts) used by Theorem 5.11.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator

from .algebra import (
    And,
    Constraint,
    Or,
    Primitive,
    SerialConstraint,
    conj,
    disj,
    order,
)

__all__ = [
    "split_serial",
    "negate",
    "normalize",
    "to_dnf",
    "DNF",
    "dnf_parameters",
    "ConstraintSplit",
    "split_disjuncts",
]


def split_serial(constraint: SerialConstraint) -> Constraint:
    """Proposition 3.3: split into a conjunction of adjacent order constraints."""
    events = constraint.events
    if len(events) == 2:
        return constraint
    return conj(*(order(a, b) for a, b in zip(events, events[1:])))


def negate(constraint: Constraint) -> Constraint:
    """Lemma 3.4: the CONSTR constraint equivalent to ``¬constraint``."""
    if isinstance(constraint, Primitive):
        return Primitive(constraint.event, positive=not constraint.positive)
    if isinstance(constraint, SerialConstraint):
        # Reduce to <=2 events first (Prop 3.3), then use
        # ¬(∇a ⊗ ∇b) ≡ ¬∇a ∨ ¬∇b ∨ (∇b ⊗ ∇a).
        split = split_serial(constraint)
        if isinstance(split, And):
            return negate(split)
        first, second = constraint.events
        return disj(
            Primitive(first, positive=False),
            Primitive(second, positive=False),
            order(second, first),
        )
    if isinstance(constraint, And):
        return disj(*(negate(p) for p in constraint.parts))
    if isinstance(constraint, Or):
        return conj(*(negate(p) for p in constraint.parts))
    raise TypeError(f"cannot negate {type(constraint).__name__}")  # pragma: no cover


def normalize(constraint: Constraint) -> Constraint:
    """Rewrite so every serial leaf has exactly two events.

    The result uses only primitives, order constraints, ``∧`` and ``∨`` —
    the exact input language of the Apply transformation (Definition 5.5).
    """
    if isinstance(constraint, Primitive):
        return constraint
    if isinstance(constraint, SerialConstraint):
        return split_serial(constraint)
    if isinstance(constraint, And):
        return conj(*(normalize(p) for p in constraint.parts))
    if isinstance(constraint, Or):
        return disj(*(normalize(p) for p in constraint.parts))
    raise TypeError(f"cannot normalize {type(constraint).__name__}")  # pragma: no cover


# -- full disjunctive normal form (Corollary 3.5) -----------------------------

# A DNF leaf is a Primitive or a two-event SerialConstraint.
Leaf = Constraint


@dataclass(frozen=True)
class DNF:
    """``∨ᵢ (∧ⱼ leafᵢⱼ)`` — the normal form of Corollary 3.5.

    ``clauses`` is a tuple of conjunctions, each a tuple of leaves.
    """

    clauses: tuple[tuple[Leaf, ...], ...]

    def to_constraint(self) -> Constraint:
        """Fold back into a plain :class:`Constraint`."""
        return disj(*(conj(*clause) for clause in self.clauses))

    @property
    def width(self) -> int:
        """Number of disjuncts (the ``d`` of Theorem 5.11 for this constraint)."""
        return len(self.clauses)


def to_dnf(constraint: Constraint) -> DNF:
    """Full disjunctive normal form of a constraint (Corollary 3.5)."""
    normalized = normalize(constraint)

    def go(c: Constraint) -> tuple[tuple[Leaf, ...], ...]:
        if isinstance(c, (Primitive, SerialConstraint)):
            return ((c,),)
        if isinstance(c, Or):
            out: list[tuple[Leaf, ...]] = []
            for p in c.parts:
                out.extend(go(p))
            return tuple(out)
        if isinstance(c, And):
            acc: tuple[tuple[Leaf, ...], ...] = ((),)
            for p in c.parts:
                sub = go(p)
                acc = tuple(left + right for left in acc for right in sub)
            return acc
        raise TypeError(f"cannot convert {type(c).__name__}")  # pragma: no cover

    # De-duplicate leaves inside each clause, and clauses inside the DNF.
    clauses: list[tuple[Leaf, ...]] = []
    seen: set[tuple[Leaf, ...]] = set()
    for clause in go(normalized):
        deduped: list[Leaf] = []
        inner_seen: set[Leaf] = set()
        for leaf in clause:
            if leaf not in inner_seen:
                inner_seen.add(leaf)
                deduped.append(leaf)
        key = tuple(deduped)
        if key not in seen:
            seen.add(key)
            clauses.append(key)
    return DNF(tuple(clauses))


# -- the disjunct space of a whole constraint set (Theorem 5.11) --------------


@dataclass(frozen=True)
class ConstraintSplit:
    """The ∨-decomposition of a constraint set ``C = δ₁ ∧ … ∧ δN``.

    Each ``δᵢ`` normalizes (Corollary 3.5) to a DNF with ``dᵢ`` clauses;
    distributing the outer conjunction over those ORs yields
    ``∏ᵢ dᵢ`` pure-conjunctive *branches* — exactly the disjunct space in
    which Theorem 5.11's ``d^N`` blow-up (and Proposition 4.1's
    NP-hardness) lives. Because

        ``Excise(Apply(C, G)) ≠ ¬path``  iff  some branch ``b`` has
        ``Excise(Apply(b, G)) ≠ ¬path``,

    each branch can be compiled and excised independently — the unit of
    work :mod:`repro.core.parallel` fans out across processes.

    Branches are indexed mixed-radix in declaration order (the first
    constraint is the most significant digit), and enumeration is lazy:
    the full ``d^N`` product is never materialized.
    """

    per_constraint: tuple[DNF, ...]

    @property
    def widths(self) -> tuple[int, ...]:
        """``(d₁, …, dN)`` — disjunct count per constraint."""
        return tuple(d.width for d in self.per_constraint)

    @property
    def total(self) -> int:
        """``∏ᵢ dᵢ`` — the number of branches (1 for an empty set)."""
        return math.prod(self.widths)

    def branch(self, index: int) -> tuple[Constraint, ...]:
        """The ``index``-th branch: one conjunctive clause per constraint."""
        if not 0 <= index < self.total:
            raise IndexError(f"branch {index} out of range 0..{self.total - 1}")
        picks: list[Constraint] = []
        for dnf in reversed(self.per_constraint):
            index, digit = divmod(index, dnf.width)
            picks.append(conj(*dnf.clauses[digit]))
        return tuple(reversed(picks))

    def branches(self) -> Iterator[tuple[Constraint, ...]]:
        """Lazily yield every branch, in :meth:`branch` index order."""
        for combo in itertools.product(*(d.clauses for d in self.per_constraint)):
            yield tuple(conj(*clause) for clause in combo)

    def indexed(self) -> Iterator[tuple[int, tuple[Constraint, ...]]]:
        """``(index, branch)`` pairs, lazily."""
        return enumerate(self.branches())

    def chunks(
        self, size: int
    ) -> Iterator[list[tuple[int, tuple[Constraint, ...]]]]:
        """Consecutive ``(index, branch)`` batches of at most ``size``."""
        if size < 1:
            raise ValueError("chunk size must be >= 1")
        batch: list[tuple[int, tuple[Constraint, ...]]] = []
        for item in self.indexed():
            batch.append(item)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch


def split_disjuncts(
    constraints: list[Constraint] | tuple[Constraint, ...],
) -> ConstraintSplit:
    """The branch decomposition of a constraint set (see :class:`ConstraintSplit`)."""
    return ConstraintSplit(tuple(to_dnf(c) for c in constraints))


def dnf_parameters(constraints: list[Constraint]) -> tuple[int, int]:
    """The ``(N, d)`` of Theorem 5.11 for a constraint set.

    ``N`` is the number of constraints; ``d`` the largest number of
    disjuncts in any single constraint's normal form.
    """
    n = len(constraints)
    d = max((to_dnf(c).width for c in constraints), default=1)
    return n, d
