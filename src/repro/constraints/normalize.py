"""Normal forms for CONSTR constraints (Prop 3.3, Lemma 3.4, Cor 3.5).

Three transformations, each preserving the set of satisfying traces under
the unique-event assumption (2):

* :func:`split_serial` — Proposition 3.3: a serial constraint over more
  than two events equals the conjunction of its adjacent order
  constraints: ``∇e₁⊗∇e₂⊗∇e₃  ≡  (∇e₁⊗∇e₂) ∧ (∇e₂⊗∇e₃)``.
* :func:`negate` — Lemma 3.4: CONSTR is closed under negation. De Morgan
  pushes negation to the leaves;
  ``¬(∇e₁⊗∇e₂) ≡ ¬∇e₁ ∨ ¬∇e₂ ∨ (∇e₂⊗∇e₁)``.
* :func:`normalize` / :func:`to_dnf` — Corollary 3.5: every constraint is
  an OR of ANDs whose leaves are primitives or two-event order
  constraints. :func:`normalize` does the leaf-level rewriting only (what
  Apply needs); :func:`to_dnf` additionally distributes to full disjunctive
  normal form and reports the parameters ``N`` (number of conjuncts) and
  ``d`` (number of disjuncts) used by Theorem 5.11.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algebra import (
    And,
    Constraint,
    Or,
    Primitive,
    SerialConstraint,
    conj,
    disj,
    order,
)

__all__ = ["split_serial", "negate", "normalize", "to_dnf", "DNF", "dnf_parameters"]


def split_serial(constraint: SerialConstraint) -> Constraint:
    """Proposition 3.3: split into a conjunction of adjacent order constraints."""
    events = constraint.events
    if len(events) == 2:
        return constraint
    return conj(*(order(a, b) for a, b in zip(events, events[1:])))


def negate(constraint: Constraint) -> Constraint:
    """Lemma 3.4: the CONSTR constraint equivalent to ``¬constraint``."""
    if isinstance(constraint, Primitive):
        return Primitive(constraint.event, positive=not constraint.positive)
    if isinstance(constraint, SerialConstraint):
        # Reduce to <=2 events first (Prop 3.3), then use
        # ¬(∇a ⊗ ∇b) ≡ ¬∇a ∨ ¬∇b ∨ (∇b ⊗ ∇a).
        split = split_serial(constraint)
        if isinstance(split, And):
            return negate(split)
        first, second = constraint.events
        return disj(
            Primitive(first, positive=False),
            Primitive(second, positive=False),
            order(second, first),
        )
    if isinstance(constraint, And):
        return disj(*(negate(p) for p in constraint.parts))
    if isinstance(constraint, Or):
        return conj(*(negate(p) for p in constraint.parts))
    raise TypeError(f"cannot negate {type(constraint).__name__}")  # pragma: no cover


def normalize(constraint: Constraint) -> Constraint:
    """Rewrite so every serial leaf has exactly two events.

    The result uses only primitives, order constraints, ``∧`` and ``∨`` —
    the exact input language of the Apply transformation (Definition 5.5).
    """
    if isinstance(constraint, Primitive):
        return constraint
    if isinstance(constraint, SerialConstraint):
        return split_serial(constraint)
    if isinstance(constraint, And):
        return conj(*(normalize(p) for p in constraint.parts))
    if isinstance(constraint, Or):
        return disj(*(normalize(p) for p in constraint.parts))
    raise TypeError(f"cannot normalize {type(constraint).__name__}")  # pragma: no cover


# -- full disjunctive normal form (Corollary 3.5) -----------------------------

# A DNF leaf is a Primitive or a two-event SerialConstraint.
Leaf = Constraint


@dataclass(frozen=True)
class DNF:
    """``∨ᵢ (∧ⱼ leafᵢⱼ)`` — the normal form of Corollary 3.5.

    ``clauses`` is a tuple of conjunctions, each a tuple of leaves.
    """

    clauses: tuple[tuple[Leaf, ...], ...]

    def to_constraint(self) -> Constraint:
        """Fold back into a plain :class:`Constraint`."""
        return disj(*(conj(*clause) for clause in self.clauses))

    @property
    def width(self) -> int:
        """Number of disjuncts (the ``d`` of Theorem 5.11 for this constraint)."""
        return len(self.clauses)


def to_dnf(constraint: Constraint) -> DNF:
    """Full disjunctive normal form of a constraint (Corollary 3.5)."""
    normalized = normalize(constraint)

    def go(c: Constraint) -> tuple[tuple[Leaf, ...], ...]:
        if isinstance(c, (Primitive, SerialConstraint)):
            return ((c,),)
        if isinstance(c, Or):
            out: list[tuple[Leaf, ...]] = []
            for p in c.parts:
                out.extend(go(p))
            return tuple(out)
        if isinstance(c, And):
            acc: tuple[tuple[Leaf, ...], ...] = ((),)
            for p in c.parts:
                sub = go(p)
                acc = tuple(left + right for left in acc for right in sub)
            return acc
        raise TypeError(f"cannot convert {type(c).__name__}")  # pragma: no cover

    # De-duplicate leaves inside each clause, and clauses inside the DNF.
    clauses: list[tuple[Leaf, ...]] = []
    seen: set[tuple[Leaf, ...]] = set()
    for clause in go(normalized):
        deduped: list[Leaf] = []
        inner_seen: set[Leaf] = set()
        for leaf in clause:
            if leaf not in inner_seen:
                inner_seen.add(leaf)
                deduped.append(leaf)
        key = tuple(deduped)
        if key not in seen:
            seen.add(key)
            clauses.append(key)
    return DNF(tuple(clauses))


def dnf_parameters(constraints: list[Constraint]) -> tuple[int, int]:
    """The ``(N, d)`` of Theorem 5.11 for a constraint set.

    ``N`` is the number of constraints; ``d`` the largest number of
    disjuncts in any single constraint's normal form.
    """
    n = len(constraints)
    d = max((to_dnf(c).width for c in constraints), default=1)
    return n, d
