"""Pretty-printing CONSTR constraints in the paper's notation.

``str()`` on a constraint gives the parseable ASCII form
(``happens(a) and precedes(b, c)``); :func:`pretty_constraint` renders the
notation of Definition 3.2 instead::

    >>> from repro.constraints.algebra import absent, disj, order
    >>> pretty_constraint(disj(absent("e"), order("e", "f")))
    '¬∇e ∨ (∇e ⊗ ∇f)'
"""

from __future__ import annotations

from .algebra import And, Constraint, Or, Primitive, SerialConstraint

__all__ = ["pretty_constraint"]

_PREC_OR = 1
_PREC_AND = 2
_PREC_LEAF = 3


def pretty_constraint(constraint: Constraint) -> str:
    """Render ``constraint`` with ∇ / ⊗ / ∧ / ∨, as in the paper."""
    return _render(constraint, 0)


def _render(constraint: Constraint, parent_prec: int) -> str:
    if isinstance(constraint, Primitive):
        text = f"∇{constraint.event}" if constraint.positive else f"¬∇{constraint.event}"
        return text
    if isinstance(constraint, SerialConstraint):
        text = " ⊗ ".join(f"∇{event}" for event in constraint.events)
        # Serial constraints always get parentheses inside connectives so
        # the ⊗ never reads as binding looser than ∧/∨.
        return f"({text})" if parent_prec > 0 else text
    if isinstance(constraint, And):
        text = " ∧ ".join(_render(p, _PREC_AND) for p in constraint.parts)
        return f"({text})" if parent_prec >= _PREC_AND else text
    if isinstance(constraint, Or):
        text = " ∨ ".join(_render(p, _PREC_OR + 1) for p in constraint.parts)
        return f"({text})" if parent_prec > _PREC_OR else text
    raise TypeError(f"cannot render {type(constraint).__name__}")  # pragma: no cover
