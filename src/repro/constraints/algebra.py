"""The temporal-constraint algebra CONSTR (Definition 3.2).

CONSTR is the paper's constraint language over significant events, as
expressive as Singh's event algebra:

* **primitive constraints** — ``∇e`` ("event e must happen") and ``¬∇e``
  ("e must not happen");
* **serial constraints** — ``∇e₁ ⊗ … ⊗ ∇eₙ`` over *positive* primitives
  ("all happen, in this order"); the two-event case ``∇α ⊗ ∇β`` is called
  an *order constraint*;
* **complex constraints** — closures under ``∧`` and ``∨``.

Although Definition 3.2 does not state closure under negation, Lemma 3.4
shows CONSTR is negation-closed; :func:`repro.constraints.normalize.negate`
implements that construction, and the ``~`` operator delegates to it.

The classes here are immutable and hashable. The operator DSL mirrors the
logic: ``c & d`` is conjunction, ``c | d`` disjunction, ``~c`` negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ConstraintError

__all__ = [
    "Constraint",
    "Primitive",
    "SerialConstraint",
    "And",
    "Or",
    "must",
    "absent",
    "serial",
    "order",
    "conj",
    "disj",
    "constraint_events",
    "walk_constraint",
]


class Constraint:
    """Base class of CONSTR constraints, with an operator DSL."""

    __slots__ = ()

    def __and__(self, other: "Constraint") -> "Constraint":
        return conj(self, other)

    def __or__(self, other: "Constraint") -> "Constraint":
        return disj(self, other)

    def __invert__(self) -> "Constraint":
        from .normalize import negate

        return negate(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Constraint {self}>"


@dataclass(frozen=True, slots=True)
class Primitive(Constraint):
    """``∇e`` (``positive=True``) or ``¬∇e`` (``positive=False``)."""

    event: str
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.event:
            raise ConstraintError("primitive constraint needs an event name")

    def __str__(self) -> str:
        return f"happens({self.event})" if self.positive else f"never({self.event})"


@dataclass(frozen=True, slots=True)
class SerialConstraint(Constraint):
    """``∇e₁ ⊗ … ⊗ ∇eₙ`` — the events all occur, in the given order.

    Only *positive* primitives may be chained serially (Definition 3.2);
    the events must be pairwise distinct because of the unique-event
    assumption (a repeated event could never satisfy the constraint).
    """

    events: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.events) < 2:
            raise ConstraintError("serial constraints need >= 2 events; use must() for one")
        if len(set(self.events)) != len(self.events):
            raise ConstraintError(
                "a serial constraint over a repeated event is unsatisfiable "
                "under the unique-event assumption"
            )

    def __str__(self) -> str:
        return "precedes(" + ", ".join(self.events) + ")"


@dataclass(frozen=True, slots=True)
class And(Constraint):
    """Conjunction of constraints."""

    parts: tuple[Constraint, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ConstraintError("And needs at least two parts; use conj() to build")

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Or(Constraint):
    """Disjunction of constraints."""

    parts: tuple[Constraint, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ConstraintError("Or needs at least two parts; use disj() to build")

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.parts) + ")"


# -- constructors -------------------------------------------------------------


def must(event: str) -> Primitive:
    """``∇e``: event ``e`` must happen."""
    return Primitive(event, positive=True)


def absent(event: str) -> Primitive:
    """``¬∇e``: event ``e`` must not happen."""
    return Primitive(event, positive=False)


def serial(*events: str) -> Constraint:
    """``∇e₁ ⊗ … ⊗ ∇eₙ``; collapses to ``must`` for a single event."""
    if len(events) == 1:
        return must(events[0])
    return SerialConstraint(tuple(events))


def order(first: str, second: str) -> SerialConstraint:
    """The order constraint ``∇first ⊗ ∇second`` (both occur, in this order)."""
    return SerialConstraint((first, second))


def _flatten(kind: type, parts: Iterable[Constraint]) -> Iterator[Constraint]:
    for part in parts:
        if isinstance(part, kind):
            yield from part.parts  # type: ignore[attr-defined]
        else:
            yield part


def conj(*parts: Constraint) -> Constraint:
    """Conjunction, flattened and de-duplicated; requires >= 1 part."""
    flat: list[Constraint] = []
    seen: set[Constraint] = set()
    for p in _flatten(And, parts):
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        raise ConstraintError("conj() of no constraints")
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Constraint) -> Constraint:
    """Disjunction, flattened and de-duplicated; requires >= 1 part."""
    flat: list[Constraint] = []
    seen: set[Constraint] = set()
    for p in _flatten(Or, parts):
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        raise ConstraintError("disj() of no constraints")
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


# -- traversal ----------------------------------------------------------------


def walk_constraint(constraint: Constraint) -> Iterator[Constraint]:
    """Pre-order traversal of a constraint tree."""
    stack = [constraint]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (And, Or)):
            stack.extend(reversed(node.parts))


def constraint_events(constraint: Constraint) -> frozenset[str]:
    """Names of all events mentioned by ``constraint``."""
    names: set[str] = set()
    for node in walk_constraint(constraint):
        if isinstance(node, Primitive):
            names.add(node.event)
        elif isinstance(node, SerialConstraint):
            names.update(node.events)
    return frozenset(names)
