"""The temporal-constraint algebra CONSTR and its normal-form machinery.

Covers Section 3 of the paper: the algebra itself
(:mod:`~repro.constraints.algebra`), serial-splitting / negation / normal
forms (:mod:`~repro.constraints.normalize`), satisfaction over event traces
(:mod:`~repro.constraints.satisfy`), Klein's constraint idioms
(:mod:`~repro.constraints.klein`), and Singh's event algebra of intertask
dependencies (:mod:`~repro.constraints.singh`).
"""

from .algebra import (
    And,
    Constraint,
    Or,
    Primitive,
    SerialConstraint,
    absent,
    conj,
    constraint_events,
    disj,
    must,
    order,
    serial,
    walk_constraint,
)
from .implication import equivalent, find_witness, implies, is_satisfiable
from .klein import (
    both_occur,
    causes,
    exactly_one,
    klein_existence,
    klein_order,
    mutually_exclusive,
    not_after,
    requires_prior,
)
from .minimize import minimize_constraints
from .normalize import DNF, dnf_parameters, negate, normalize, split_serial, to_dnf
from .parser import parse_constraint
from .pretty import pretty_constraint
from .satisfy import PrefixEvaluator, Verdict, satisfies
from .singh import (
    Task,
    abort_dependency,
    begin_dependency,
    commit_dependency,
    compensation_dependency,
    exclusion_dependency,
    serial_dependency,
    strong_commit_dependency,
)

__all__ = [
    "Constraint", "Primitive", "SerialConstraint", "And", "Or",
    "must", "absent", "serial", "order", "conj", "disj",
    "constraint_events", "walk_constraint",
    "negate", "normalize", "split_serial", "to_dnf", "DNF", "dnf_parameters",
    "satisfies", "Verdict", "PrefixEvaluator",
    "klein_order", "klein_existence", "both_occur", "mutually_exclusive",
    "causes", "requires_prior", "not_after", "exactly_one",
    "Task", "commit_dependency", "strong_commit_dependency", "abort_dependency",
    "begin_dependency", "serial_dependency", "exclusion_dependency",
    "compensation_dependency",
    "parse_constraint",
    "implies", "equivalent", "find_witness", "is_satisfiable",
    "minimize_constraints",
    "pretty_constraint",
]
