"""Textual syntax for CONSTR constraints.

The grammar matches the ``str()`` rendering of the constraint classes, so
constraints round-trip through text::

    constraint := disjunct ('or' disjunct)*
    disjunct   := conjunct ('and' conjunct)*
    conjunct   := 'not' conjunct
                | '(' constraint ')'
                | 'happens' '(' NAME ')'
                | 'never' '(' NAME ')'
                | 'precedes' '(' NAME (',' NAME)+ ')'

``not`` is compiled away immediately via Lemma 3.4 (:func:`negate`), so the
parse result is always a genuine CONSTR constraint.
"""

from __future__ import annotations

import re
from typing import NamedTuple

from ..errors import ParseError
from .algebra import Constraint, absent, conj, disj, must, serial
from .normalize import negate

__all__ = ["parse_constraint"]


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op>[(),])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        if match.lastgroup != "ws":
            tokens.append(_Token(match.lastgroup, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.pos)
        return token

    def constraint(self) -> Constraint:
        parts = [self.disjunct()]
        while (token := self.peek()) is not None and token.text == "or":
            self.next()
            parts.append(self.disjunct())
        return disj(*parts) if len(parts) > 1 else parts[0]

    def disjunct(self) -> Constraint:
        parts = [self.conjunct()]
        while (token := self.peek()) is not None and token.text == "and":
            self.next()
            parts.append(self.conjunct())
        return conj(*parts) if len(parts) > 1 else parts[0]

    def conjunct(self) -> Constraint:
        token = self.next()
        if token.text == "not":
            return negate(self.conjunct())
        if token.text == "(":
            inner = self.constraint()
            self.expect(")")
            return inner
        if token.text in ("happens", "never"):
            self.expect("(")
            event = self.next()
            if event.kind != "name":
                raise ParseError("expected an event name", event.pos)
            self.expect(")")
            return must(event.text) if token.text == "happens" else absent(event.text)
        if token.text == "precedes":
            self.expect("(")
            names = [self.next()]
            while (nxt := self.peek()) is not None and nxt.text == ",":
                self.next()
                names.append(self.next())
            self.expect(")")
            for name in names:
                if name.kind != "name":
                    raise ParseError("expected an event name", name.pos)
            if len(names) < 2:
                raise ParseError("precedes() needs at least two events", token.pos)
            return serial(*(n.text for n in names))
        raise ParseError(f"unexpected token {token.text!r}", token.pos)


def parse_constraint(text: str) -> Constraint:
    """Parse the textual constraint syntax described in the module docstring."""
    parser = _Parser(text)
    constraint = parser.constraint()
    trailing = parser.peek()
    if trailing is not None:
        raise ParseError(f"trailing input {trailing.text!r}", trailing.pos)
    return constraint
