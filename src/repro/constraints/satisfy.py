"""Deciding whether event sequences satisfy CONSTR constraints.

Two evaluators:

* :func:`satisfies` — polynomial-time satisfaction of a *complete* trace.
  This is the decision procedure behind the paper's NP-*membership*
  argument (Proposition 4.1: "given an arbitrary sequence of events the
  satisfiability of a set of constraints … is decidable in polynomial
  time").
* :class:`PrefixEvaluator` — three-valued evaluation of a *prefix* under
  the unique-event assumption: ``TRUE`` (satisfied however the execution
  continues), ``FALSE`` (violated beyond repair), or ``UNKNOWN``. This is
  the building block of the passive-scheduler baseline
  (:mod:`repro.baselines.passive`), which must detect violations as early
  as possible while events stream in from an external source.
"""

from __future__ import annotations

import enum

from .algebra import And, Constraint, Or, Primitive, SerialConstraint

__all__ = ["satisfies", "Verdict", "PrefixEvaluator"]


def satisfies(trace: tuple[str, ...], constraint: Constraint) -> bool:
    """Does the complete event sequence ``trace`` satisfy ``constraint``?

    Positions are compared on *first* occurrences; under the unique-event
    assumption each event occurs at most once anyway.
    """
    position = {}
    for index, event in enumerate(trace):
        position.setdefault(event, index)
    return _eval(position, constraint)


def _eval(position: dict[str, int], constraint: Constraint) -> bool:
    if isinstance(constraint, Primitive):
        present = constraint.event in position
        return present if constraint.positive else not present
    if isinstance(constraint, SerialConstraint):
        last = -1
        for event in constraint.events:
            index = position.get(event)
            if index is None or index <= last:
                return False
            last = index
        return True
    if isinstance(constraint, And):
        return all(_eval(position, p) for p in constraint.parts)
    if isinstance(constraint, Or):
        return any(_eval(position, p) for p in constraint.parts)
    raise TypeError(f"cannot evaluate {type(constraint).__name__}")  # pragma: no cover


class Verdict(enum.Enum):
    """Three-valued prefix verdict."""

    TRUE = "true"        # satisfied, whatever happens next
    FALSE = "false"      # violated, whatever happens next
    UNKNOWN = "unknown"  # depends on the rest of the execution

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("Verdict is three-valued; compare explicitly")


def _and3(verdicts: list[Verdict]) -> Verdict:
    if any(v is Verdict.FALSE for v in verdicts):
        return Verdict.FALSE
    if all(v is Verdict.TRUE for v in verdicts):
        return Verdict.TRUE
    return Verdict.UNKNOWN


def _or3(verdicts: list[Verdict]) -> Verdict:
    if any(v is Verdict.TRUE for v in verdicts):
        return Verdict.TRUE
    if all(v is Verdict.FALSE for v in verdicts):
        return Verdict.FALSE
    return Verdict.UNKNOWN


class PrefixEvaluator:
    """Three-valued constraint evaluation over a growing unique-event prefix.

    >>> from repro.constraints.algebra import order
    >>> ev = PrefixEvaluator()
    >>> ev.observe("b")
    >>> ev.verdict(order("a", "b"))
    <Verdict.FALSE: 'false'>
    """

    def __init__(self) -> None:
        self._position: dict[str, int] = {}
        self._length = 0

    @property
    def prefix_length(self) -> int:
        return self._length

    def observe(self, event: str) -> None:
        """Append ``event`` to the prefix."""
        self._position.setdefault(event, self._length)
        self._length += 1

    def seen(self, event: str) -> bool:
        return event in self._position

    def verdict(self, constraint: Constraint) -> Verdict:
        """Three-valued verdict of ``constraint`` on the current prefix."""
        return self._verdict(constraint)

    def final(self, constraint: Constraint) -> bool:
        """Definitive satisfaction, treating the prefix as the full trace."""
        return _eval(self._position, constraint)

    def _verdict(self, constraint: Constraint) -> Verdict:
        if isinstance(constraint, Primitive):
            present = constraint.event in self._position
            if constraint.positive:
                return Verdict.TRUE if present else Verdict.UNKNOWN
            return Verdict.FALSE if present else Verdict.UNKNOWN
        if isinstance(constraint, SerialConstraint):
            return self._serial_verdict(constraint)
        if isinstance(constraint, And):
            return _and3([self._verdict(p) for p in constraint.parts])
        if isinstance(constraint, Or):
            return _or3([self._verdict(p) for p in constraint.parts])
        raise TypeError(f"cannot evaluate {type(constraint).__name__}")  # pragma: no cover

    def _serial_verdict(self, constraint: SerialConstraint) -> Verdict:
        """Unique events only occur once, so order violations are permanent.

        FALSE iff the already-seen events are out of order, or some seen
        event should have been preceded by one still unseen (the unseen one
        can now only occur later, which is too late). TRUE iff all events
        are seen, in order.
        """
        last = -1
        missing = False
        for event in constraint.events:
            index = self._position.get(event)
            if index is None:
                missing = True
                continue
            if missing or index <= last:
                return Verdict.FALSE
            last = index
        return Verdict.UNKNOWN if missing else Verdict.TRUE
