"""Constraint implication, equivalence, and satisfiability over an alphabet.

The redundancy analysis of Theorem 5.10 answers "is δ implied *given this
workflow*?". Designers also ask the workflow-independent question: does
one constraint set entail another over *every* unique-event behaviour?
This module answers it by searching the space of unique-event traces over
the constraints' joint alphabet, guided by the constraint automata of
:mod:`repro.baselines.automata` with memoisation on (events-used,
automaton-state) pairs.

The problem is NP-complete (it subsumes the satisfiability side of
Proposition 4.1), so the search is worst-case exponential in the *number
of mentioned events* — which is small for human-written constraints, and
never depends on any workflow.
"""

from __future__ import annotations

from typing import Iterable

from ..baselines.automata import ProductAutomaton
from .algebra import Constraint, constraint_events
from .normalize import negate

__all__ = ["find_witness", "is_satisfiable", "implies", "equivalent"]


def find_witness(
    constraints: list[Constraint],
    events: Iterable[str] | None = None,
) -> tuple[str, ...] | None:
    """A unique-event trace over ``events`` satisfying all ``constraints``.

    ``events`` defaults to the constraints' joint alphabet (events outside
    it cannot influence satisfaction). Returns None when unsatisfiable.
    """
    if events is None:
        alphabet: set[str] = set()
        for constraint in constraints:
            alphabet |= constraint_events(constraint)
        events = alphabet
    events = tuple(sorted(events))
    product = ProductAutomaton.build(list(constraints))

    seen: set[tuple[frozenset[str], tuple]] = set()
    stack: list[tuple[tuple[str, ...], tuple]] = [((), product.initial())]
    while stack:
        trace, state = stack.pop()
        key = (frozenset(trace), state)
        if key in seen:
            continue
        seen.add(key)
        if product.accepting(state):
            return trace
        used = set(trace)
        for event in events:
            if event not in used:
                stack.append((trace + (event,), product.step(state, event)))
    return None


def is_satisfiable(
    constraints: list[Constraint], events: Iterable[str] | None = None
) -> bool:
    """Can any unique-event behaviour satisfy all ``constraints``?"""
    return find_witness(constraints, events) is not None


def implies(
    premises: list[Constraint] | Constraint,
    conclusion: Constraint,
    events: Iterable[str] | None = None,
) -> bool:
    """Do the ``premises`` entail ``conclusion`` on every unique-event trace?

    When ``events`` is omitted, the joint alphabet of premises *and*
    conclusion is used (a conclusion mentioning fresh events can always be
    violated by a trace the premises ignore).
    """
    if isinstance(premises, Constraint):
        premises = [premises]
    if events is None:
        alphabet: set[str] = constraint_events(conclusion) | {
            e for p in premises for e in constraint_events(p)
        }
        events = alphabet
    return find_witness(list(premises) + [negate(conclusion)], events) is None


def equivalent(
    left: Constraint, right: Constraint, events: Iterable[str] | None = None
) -> bool:
    """Are the two constraints satisfied by exactly the same traces?"""
    return implies(left, right, events) and implies(right, left, events)
