"""Constraint-set minimization.

Specifications accumulate rules over years; many end up implied by the
others or by the control flow itself. Building on Theorem 5.10's
redundancy test, :func:`minimize_constraints` greedily removes constraints
that the rest of the specification already enforces, returning a minimal
(irredundant) subset with exactly the same legal executions.

Note that redundancy is not monotone — two constraints may each be
redundant *given the other* but not simultaneously removable — hence the
greedy one-at-a-time loop rather than a single batch filter. The result
is a (not necessarily unique) minimal set; pass a different ``order`` to
prefer keeping particular constraints.
"""

from __future__ import annotations

from typing import Callable

from ..ctr.formulas import Goal
from ..ctr.rules import RuleBase
from .algebra import Constraint

__all__ = ["minimize_constraints"]


def minimize_constraints(
    goal: Goal,
    constraints: list[Constraint],
    rules: RuleBase | None = None,
    prefer: Callable[[Constraint], float] | None = None,
) -> list[Constraint]:
    """A minimal subset of ``constraints`` with the same legal executions.

    ``prefer`` scores constraints; higher-scored ones are *kept* longer
    (removal is attempted on the lowest-scored first). By default removal
    is attempted in the given order.
    """
    from ..core.verify import verify_property

    kept = list(constraints)
    candidates = sorted(
        range(len(kept)), key=(lambda i: prefer(kept[i])) if prefer else (lambda i: i)
    )
    removed: set[int] = set()
    for index in candidates:
        remaining = [c for j, c in enumerate(kept) if j != index and j not in removed]
        if verify_property(goal, remaining, kept[index], rules=rules).holds:
            removed.add(index)
    return [c for j, c in enumerate(kept) if j not in removed]
