"""Named workflow specifications for the verification service.

A :class:`SpecRegistry` is the service's catalog: workflow specifications
registered by name (over HTTP or preloaded from a specs directory) and
served to the request handlers as parsed, *versioned* entries. Versioning
is what keeps the batching and caching layers honest:

* every registration that changes a specification's text bumps its
  version, and the batch key the :class:`~repro.service.batcher`
  groups requests under embeds that version — so requests racing a
  re-registration can never be coalesced with requests for the old text;
* the in-memory memo of compiled workflows is keyed by the same
  ``name@version`` pair and dropped on re-registration, while the
  persistent :class:`~repro.core.compiler.CompileCache` underneath is
  content-addressed and needs no invalidation at all (the old entry
  simply stops being asked for).

Entries loaded from a specs directory *hot-reload*: every lookup stats
the backing file and re-registers it when its mtime changed, so editing
``orders.workflow`` on disk is visible to the next request without
restarting the daemon. A file that vanishes keeps serving its last good
parse — a deploy atomically replacing files must never 404 mid-swap.
The same applies one level up: the whole specs *directory* being deleted
and recreated mid-scan (an rsync-style deploy, a remounted volume) is
survived by serving last-good entries, logging the disappearance once,
and resuming hot-reload when the directory reappears — never by letting
``FileNotFoundError`` escape the mtime walk into a request handler.

Multi-tenant routers scope the catalog with :meth:`SpecRegistry.namespaced`:
a :class:`TenantView` prefixes registrations with ``tenant::`` so two
tenants' specs of the same name never collide nor coalesce, while
directory-loaded (unprefixed) entries stay visible to every tenant as a
shared read-only catalog. Inline text stays content-addressed globally —
verification is pure, so identical text may safely share one compile.
"""

from __future__ import annotations

import hashlib
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from ..spec import Specification, parse_specification

__all__ = ["SpecEntry", "SpecRegistry", "TenantView", "UnknownSpecError"]

log = logging.getLogger("repro.service.registry")

#: Separator between a tenant namespace and the spec's own name.
TENANT_SEP = "::"

#: File suffixes the directory scan recognises as specifications.
SPEC_SUFFIXES = (".workflow", ".spec")

#: How many anonymous (inline-text) entries to remember; content-addressed,
#: so eviction only costs a re-parse.
_INLINE_MEMO = 64


class UnknownSpecError(ReproError, KeyError):
    """A request named a specification the registry does not hold."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        message = f"unknown specification {name!r}"
        if known:
            message += "; registered: " + ", ".join(sorted(known))
        ReproError.__init__(self, message)


@dataclass(frozen=True)
class SpecEntry:
    """One registered specification at one version."""

    name: str
    version: int
    text: str
    spec: Specification
    source: Path | None = None
    mtime: float | None = None

    @property
    def key(self) -> str:
        """The batch/memo key: stable for a (name, text) pair, never reused
        across re-registrations with different text."""
        return f"{self.name}@{self.version}"


class SpecRegistry:
    """Thread-safe catalog of named specifications with compiled memos.

    The registry is touched from the event-loop thread (registration,
    lookups) *and* from executor threads (compiles), so every access to
    the internal maps takes ``_lock``. Compilation itself runs outside
    the lock — two threads racing to compile the same entry do redundant
    work at worst, and the content-addressed disk cache makes even that
    mostly a cache hit.
    """

    def __init__(self, specs_dir: str | Path | None = None, cache=None):
        from ..core.compiler import CompileCache

        self.cache = CompileCache.coerce(cache)
        self.specs_dir = Path(specs_dir) if specs_dir is not None else None
        self._lock = threading.Lock()
        self._entries: dict[str, SpecEntry] = {}
        self._compiled: dict[str, object] = {}  # SpecEntry.key -> CompiledWorkflow
        self._inline: OrderedDict[str, SpecEntry] = OrderedDict()
        self._dir_missing = False  # log the disappearance once, not per lookup
        if self.specs_dir is not None:
            self.load_directory()

    # -- registration ---------------------------------------------------------

    def register(self, name: str, text: str, source: Path | None = None,
                 mtime: float | None = None) -> SpecEntry:
        """Parse and register ``text`` under ``name``; returns the entry.

        Re-registering identical text is a no-op returning the existing
        entry (same version, memo intact). Different text bumps the
        version and drops the old version's compiled memo.
        """
        spec = parse_specification(text)  # parse errors propagate pre-mutation
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and previous.text == text:
                if mtime is not None and previous.mtime != mtime:
                    # Same content, fresher file: remember the new mtime so
                    # the hot-reload stat check quiesces.
                    entry = SpecEntry(name, previous.version, text, previous.spec,
                                      source=source, mtime=mtime)
                    self._entries[name] = entry
                    return entry
                return previous
            version = 1 if previous is None else previous.version + 1
            entry = SpecEntry(name, version, text, spec, source=source, mtime=mtime)
            self._entries[name] = entry
            if previous is not None:
                self._compiled.pop(previous.key, None)
            return entry

    def unregister(self, name: str) -> bool:
        """Drop ``name``; returns whether it was registered."""
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is not None:
                self._compiled.pop(entry.key, None)
            return entry is not None

    def load_directory(self) -> list[str]:
        """(Re)load every spec file in ``specs_dir``; returns loaded names.

        The stem is the registered name: ``orders.workflow`` → ``orders``.
        Unparseable files are skipped (a daemon must come up even when one
        spec in the directory is mid-edit); they surface on explicit lookup.
        A directory that vanished (deploy mid-swap, unmounted volume)
        yields ``[]`` and keeps the already-registered entries serving.
        """
        if self.specs_dir is None:
            return []
        loaded = []
        try:
            listing = sorted(self.specs_dir.iterdir())
        except OSError:
            # The directory itself is gone — even is_dir() then iterdir()
            # races a deletion, so catch rather than pre-check.
            self._note_dir_missing()
            return []
        self._note_dir_present()
        for path in listing:
            if path.suffix not in SPEC_SUFFIXES or not path.is_file():
                continue
            try:
                stat = path.stat()
                self.register(path.stem, path.read_text(encoding="utf-8"),
                              source=path, mtime=stat.st_mtime)
                loaded.append(path.stem)
            except (OSError, ReproError):
                continue
        return loaded

    def _note_dir_missing(self) -> None:
        if not self._dir_missing:
            self._dir_missing = True
            log.warning(
                "specs directory %s vanished; serving last-good entries "
                "until it reappears", self.specs_dir,
            )

    def _note_dir_present(self) -> None:
        if self._dir_missing:
            self._dir_missing = False
            log.info("specs directory %s reappeared; hot-reload resumed",
                     self.specs_dir)

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> SpecEntry:
        """The current entry for ``name``, hot-reloading from disk if stale."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            entry = self._load_from_dir(name)
            if entry is None:
                with self._lock:
                    known = tuple(self._entries)
                raise UnknownSpecError(name, known)
            return entry
        if entry.source is not None:
            try:
                mtime = entry.source.stat().st_mtime
            except OSError:
                # File (or the whole directory) vanished: keep serving the
                # last good parse and say so once.
                if self.specs_dir is not None and not self.specs_dir.is_dir():
                    self._note_dir_missing()
                return entry
            self._note_dir_present()
            if mtime != entry.mtime:
                try:
                    text = entry.source.read_text(encoding="utf-8")
                    return self.register(name, text, source=entry.source,
                                         mtime=mtime)
                except (OSError, ReproError):
                    return entry  # mid-edit or unreadable: last good parse
        return entry

    def _load_from_dir(self, name: str) -> SpecEntry | None:
        """A file that appeared in ``specs_dir`` after startup."""
        if self.specs_dir is None:
            return None
        for suffix in SPEC_SUFFIXES:
            path = self.specs_dir / f"{name}{suffix}"
            try:
                stat = path.stat()
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            return self.register(name, text, source=path, mtime=stat.st_mtime)
        return None

    def resolve_inline(self, text: str) -> SpecEntry:
        """An anonymous entry for inline request text, content-addressed.

        Identical text always resolves to the identical entry (and hence
        the same batch key), so concurrent inline requests for the same
        specification coalesce exactly like named ones.
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        name = f"inline:{digest}"
        with self._lock:
            entry = self._inline.get(name)
            if entry is not None:
                self._inline.move_to_end(name)
                return entry
        spec = parse_specification(text)
        entry = SpecEntry(name, 1, text, spec)
        with self._lock:
            self._inline[name] = entry
            self._inline.move_to_end(name)
            while len(self._inline) > _INLINE_MEMO:
                evicted, _ = self._inline.popitem(last=False)
                self._compiled.pop(f"{evicted}@1", None)
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    # -- tenant namespaces -----------------------------------------------------

    def namespaced(self, tenant: str) -> "TenantView":
        """A :class:`TenantView` scoping this catalog to ``tenant``.

        Views share the underlying maps, compile memo, and disk cache —
        a namespace is a key prefix, not a copy.
        """
        return TenantView(self, tenant)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- compilation ----------------------------------------------------------

    def compiled(self, entry: SpecEntry, obs=None):
        """``compile_workflow`` for ``entry``, memoized on ``entry.key``.

        The memo holds compiles of the *current* versions only (superseded
        keys are dropped at registration time); the disk cache underneath
        persists every version content-addressed, so flapping between two
        texts stays cheap.
        """
        with self._lock:
            hit = self._compiled.get(entry.key)
        if hit is not None:
            return hit
        from ..core.compiler import compile_workflow

        spec = entry.spec
        compiled = compile_workflow(spec.goal, list(spec.constraints),
                                    rules=spec.rules, cache=self.cache, obs=obs)
        with self._lock:
            # Don't memoize under a superseded key: a concurrent
            # re-registration (or inline-memo eviction) may have already
            # dropped this version.
            if entry.name.startswith("inline:"):
                if entry.name in self._inline:
                    self._compiled[entry.key] = compiled
            else:
                current = self._entries.get(entry.name)
                if current is not None and current.key == entry.key:
                    self._compiled[entry.key] = compiled
        return compiled


class TenantView:
    """A per-tenant window onto a :class:`SpecRegistry`.

    Registrations are keyed ``tenant::name``, so tenants can neither
    shadow nor read each other's specs; lookups fall back to the
    registry's *unprefixed* entries (the specs-directory preload), which
    act as a catalog shared by every tenant. Inline text resolves through
    the shared content-addressed memo — identical text is identical work,
    whoever asks.
    """

    def __init__(self, registry: SpecRegistry, tenant: str):
        if TENANT_SEP in tenant:
            raise ValueError(f"tenant name may not contain {TENANT_SEP!r}")
        self.registry = registry
        self.tenant = tenant

    def _scoped(self, name: str) -> str:
        if TENANT_SEP in name:
            # Never let "other::secret" escape the namespace via the
            # shared-catalog fallback in :meth:`get`.
            raise UnknownSpecError(name, tuple(self.names()))
        return f"{self.tenant}{TENANT_SEP}{name}"

    def public_name(self, entry: SpecEntry) -> str:
        """The client-facing name: the entry's name minus this namespace."""
        prefix = f"{self.tenant}{TENANT_SEP}"
        if entry.name.startswith(prefix):
            return entry.name[len(prefix):]
        return entry.name

    def register(self, name: str, text: str) -> SpecEntry:
        return self.registry.register(self._scoped(name), text)

    def unregister(self, name: str) -> bool:
        return self.registry.unregister(self._scoped(name))

    def get(self, name: str) -> SpecEntry:
        scoped = self._scoped(name)  # outside the try: its refusal of
        # "other::secret" must not be mistaken for a plain miss below.
        try:
            return self.registry.get(scoped)
        except UnknownSpecError:
            pass
        try:
            return self.registry.get(name)  # the shared (directory) catalog
        except UnknownSpecError:
            raise UnknownSpecError(name, tuple(self.names())) from None

    def resolve_inline(self, text: str) -> SpecEntry:
        return self.registry.resolve_inline(text)

    def compiled(self, entry: SpecEntry, obs=None):
        return self.registry.compiled(entry, obs=obs)

    def names(self) -> list[str]:
        prefix = f"{self.tenant}{TENANT_SEP}"
        out = set()
        for name in self.registry.names():
            if name.startswith(prefix):
                out.add(name[len(prefix):])
            elif TENANT_SEP not in name:
                out.add(name)  # shared catalog entry
        return sorted(out)

    def __contains__(self, name: str) -> bool:
        if TENANT_SEP in name:
            return False
        return (f"{self.tenant}{TENANT_SEP}{name}" in self.registry
                or name in self.registry)
