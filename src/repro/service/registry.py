"""Named workflow specifications for the verification service.

A :class:`SpecRegistry` is the service's catalog: workflow specifications
registered by name (over HTTP or preloaded from a specs directory) and
served to the request handlers as parsed, *versioned* entries. Versioning
is what keeps the batching and caching layers honest:

* every registration that changes a specification's text bumps its
  version, and the batch key the :class:`~repro.service.batcher`
  groups requests under embeds that version — so requests racing a
  re-registration can never be coalesced with requests for the old text;
* the in-memory memo of compiled workflows is keyed by the same
  ``name@version`` pair and dropped on re-registration, while the
  persistent :class:`~repro.core.compiler.CompileCache` underneath is
  content-addressed and needs no invalidation at all (the old entry
  simply stops being asked for).

Entries loaded from a specs directory *hot-reload*: every lookup stats
the backing file and re-registers it when its mtime changed, so editing
``orders.workflow`` on disk is visible to the next request without
restarting the daemon. A file that vanishes keeps serving its last good
parse — a deploy atomically replacing files must never 404 mid-swap.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from ..spec import Specification, parse_specification

__all__ = ["SpecEntry", "SpecRegistry", "UnknownSpecError"]

#: File suffixes the directory scan recognises as specifications.
SPEC_SUFFIXES = (".workflow", ".spec")

#: How many anonymous (inline-text) entries to remember; content-addressed,
#: so eviction only costs a re-parse.
_INLINE_MEMO = 64


class UnknownSpecError(ReproError, KeyError):
    """A request named a specification the registry does not hold."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        message = f"unknown specification {name!r}"
        if known:
            message += "; registered: " + ", ".join(sorted(known))
        ReproError.__init__(self, message)


@dataclass(frozen=True)
class SpecEntry:
    """One registered specification at one version."""

    name: str
    version: int
    text: str
    spec: Specification
    source: Path | None = None
    mtime: float | None = None

    @property
    def key(self) -> str:
        """The batch/memo key: stable for a (name, text) pair, never reused
        across re-registrations with different text."""
        return f"{self.name}@{self.version}"


class SpecRegistry:
    """Thread-safe catalog of named specifications with compiled memos.

    The registry is touched from the event-loop thread (registration,
    lookups) *and* from executor threads (compiles), so every access to
    the internal maps takes ``_lock``. Compilation itself runs outside
    the lock — two threads racing to compile the same entry do redundant
    work at worst, and the content-addressed disk cache makes even that
    mostly a cache hit.
    """

    def __init__(self, specs_dir: str | Path | None = None, cache=None):
        from ..core.compiler import CompileCache

        self.cache = CompileCache.coerce(cache)
        self.specs_dir = Path(specs_dir) if specs_dir is not None else None
        self._lock = threading.Lock()
        self._entries: dict[str, SpecEntry] = {}
        self._compiled: dict[str, object] = {}  # SpecEntry.key -> CompiledWorkflow
        self._inline: OrderedDict[str, SpecEntry] = OrderedDict()
        if self.specs_dir is not None:
            self.load_directory()

    # -- registration ---------------------------------------------------------

    def register(self, name: str, text: str, source: Path | None = None,
                 mtime: float | None = None) -> SpecEntry:
        """Parse and register ``text`` under ``name``; returns the entry.

        Re-registering identical text is a no-op returning the existing
        entry (same version, memo intact). Different text bumps the
        version and drops the old version's compiled memo.
        """
        spec = parse_specification(text)  # parse errors propagate pre-mutation
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and previous.text == text:
                if mtime is not None and previous.mtime != mtime:
                    # Same content, fresher file: remember the new mtime so
                    # the hot-reload stat check quiesces.
                    entry = SpecEntry(name, previous.version, text, previous.spec,
                                      source=source, mtime=mtime)
                    self._entries[name] = entry
                    return entry
                return previous
            version = 1 if previous is None else previous.version + 1
            entry = SpecEntry(name, version, text, spec, source=source, mtime=mtime)
            self._entries[name] = entry
            if previous is not None:
                self._compiled.pop(previous.key, None)
            return entry

    def unregister(self, name: str) -> bool:
        """Drop ``name``; returns whether it was registered."""
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is not None:
                self._compiled.pop(entry.key, None)
            return entry is not None

    def load_directory(self) -> list[str]:
        """(Re)load every spec file in ``specs_dir``; returns loaded names.

        The stem is the registered name: ``orders.workflow`` → ``orders``.
        Unparseable files are skipped (a daemon must come up even when one
        spec in the directory is mid-edit); they surface on explicit lookup.
        """
        if self.specs_dir is None or not self.specs_dir.is_dir():
            return []
        loaded = []
        for path in sorted(self.specs_dir.iterdir()):
            if path.suffix not in SPEC_SUFFIXES or not path.is_file():
                continue
            try:
                stat = path.stat()
                self.register(path.stem, path.read_text(encoding="utf-8"),
                              source=path, mtime=stat.st_mtime)
                loaded.append(path.stem)
            except (OSError, ReproError):
                continue
        return loaded

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> SpecEntry:
        """The current entry for ``name``, hot-reloading from disk if stale."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            entry = self._load_from_dir(name)
            if entry is None:
                with self._lock:
                    known = tuple(self._entries)
                raise UnknownSpecError(name, known)
            return entry
        if entry.source is not None:
            try:
                mtime = entry.source.stat().st_mtime
            except OSError:
                return entry  # file vanished: keep serving the last good parse
            if mtime != entry.mtime:
                try:
                    text = entry.source.read_text(encoding="utf-8")
                    return self.register(name, text, source=entry.source,
                                         mtime=mtime)
                except (OSError, ReproError):
                    return entry  # mid-edit or unreadable: last good parse
        return entry

    def _load_from_dir(self, name: str) -> SpecEntry | None:
        """A file that appeared in ``specs_dir`` after startup."""
        if self.specs_dir is None:
            return None
        for suffix in SPEC_SUFFIXES:
            path = self.specs_dir / f"{name}{suffix}"
            try:
                stat = path.stat()
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            return self.register(name, text, source=path, mtime=stat.st_mtime)
        return None

    def resolve_inline(self, text: str) -> SpecEntry:
        """An anonymous entry for inline request text, content-addressed.

        Identical text always resolves to the identical entry (and hence
        the same batch key), so concurrent inline requests for the same
        specification coalesce exactly like named ones.
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        name = f"inline:{digest}"
        with self._lock:
            entry = self._inline.get(name)
            if entry is not None:
                self._inline.move_to_end(name)
                return entry
        spec = parse_specification(text)
        entry = SpecEntry(name, 1, text, spec)
        with self._lock:
            self._inline[name] = entry
            self._inline.move_to_end(name)
            while len(self._inline) > _INLINE_MEMO:
                evicted, _ = self._inline.popitem(last=False)
                self._compiled.pop(f"{evicted}@1", None)
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- compilation ----------------------------------------------------------

    def compiled(self, entry: SpecEntry, obs=None):
        """``compile_workflow`` for ``entry``, memoized on ``entry.key``.

        The memo holds compiles of the *current* versions only (superseded
        keys are dropped at registration time); the disk cache underneath
        persists every version content-addressed, so flapping between two
        texts stays cheap.
        """
        with self._lock:
            hit = self._compiled.get(entry.key)
        if hit is not None:
            return hit
        from ..core.compiler import compile_workflow

        spec = entry.spec
        compiled = compile_workflow(spec.goal, list(spec.constraints),
                                    rules=spec.rules, cache=self.cache, obs=obs)
        with self._lock:
            # Don't memoize under a superseded key: a concurrent
            # re-registration (or inline-memo eviction) may have already
            # dropped this version.
            if entry.name.startswith("inline:"):
                if entry.name in self._inline:
                    self._compiled[entry.key] = compiled
            else:
                current = self._entries.get(entry.name)
                if current is not None and current.key == entry.key:
                    self._compiled[entry.key] = compiled
        return compiled
