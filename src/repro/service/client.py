"""A small blocking client for the verification service.

:class:`ServiceClient` wraps :mod:`http.client` (standard library only,
matching the daemon's zero-dependency stance) with one keep-alive
connection per client and JSON in/out. It exists for the test suite, the
benchmark harness, and the quickstart example; production callers can
use any HTTP client — the protocol is plain JSON over HTTP/1.1.

Service-side rejections surface as :class:`ServiceClientError` carrying
the HTTP status, so callers can tell backpressure (429), draining (503),
and deadline expiry (504) apart from their own bugs (400/404).
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"service returned HTTP {status}")


class ServiceClient:
    """Blocking JSON client over one keep-alive connection.

    Not thread-safe (``http.client`` connections are not); give each
    thread its own client — they multiplex fine on the server side, which
    is exactly what the batcher wants.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, body: dict | None = None):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A dropped keep-alive connection (server restart, idle
                # timeout): reconnect once, then give up.
                self.close()
                if attempt == 2:
                    raise
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            data = json.loads(raw) if raw else {}
        else:
            data = raw.decode("utf-8")
        if response.status >= 400:
            raise ServiceClientError(response.status, data)
        return data

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "text"):
        """The metrics exposition: Prometheus text, or a dict with
        ``format="json"``."""
        suffix = "?format=json" if format == "json" else ""
        return self._request("GET", "/metrics" + suffix)

    def specs(self) -> list[dict]:
        return self._request("GET", "/specs")["specs"]

    def register(self, name: str, text: str) -> dict:
        return self._request("POST", "/specs", {"name": name, "text": text})

    def compile(self, spec: str | None = None, text: str | None = None) -> dict:
        return self._request("POST", "/compile", _target(spec, text))

    def consistency(self, spec: str | None = None,
                    text: str | None = None) -> bool:
        return self._request(
            "POST", "/consistency", _target(spec, text)
        )["consistent"]

    def verify(
        self,
        spec: str | None = None,
        text: str | None = None,
        properties: list[str] | None = None,
        timeout: float | None = None,
        seed: int | None = None,
    ) -> dict:
        body = _target(spec, text)
        if properties is not None:
            body["properties"] = list(properties)
        if timeout is not None:
            body["timeout"] = timeout
        if seed is not None:
            body["seed"] = seed
        return self._request("POST", "/verify", body)

    def schedule(self, spec: str | None = None, text: str | None = None,
                 limit: int = 1) -> dict:
        body = _target(spec, text)
        body["limit"] = limit
        return self._request("POST", "/schedule", body)


def _target(spec: str | None, text: str | None) -> dict:
    if (spec is None) == (text is None):
        raise ValueError("provide exactly one of spec= or text=")
    return {"spec": spec} if spec is not None else {"text": text}
