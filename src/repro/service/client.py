"""A small blocking client for the verification service.

:class:`ServiceClient` wraps :mod:`http.client` (standard library only,
matching the daemon's zero-dependency stance) with one keep-alive
connection per client and JSON in/out. It exists for the test suite, the
benchmark harness, and the quickstart example; production callers can
use any HTTP client — the protocol is plain JSON over HTTP/1.1.

Service-side rejections surface as :class:`ServiceClientError` carrying
the HTTP status, so callers can tell backpressure (429), draining (503),
and deadline expiry (504) apart from their own bugs (400/404).

Retries are deliberate, not blind. A request is re-sent only when it is
provably safe: the connection failed before any bytes were sent (nothing
reached the server), or the endpoint is *idempotent* — all the read-only
decision procedures (``/verify``, ``/consistency``, ``/compile``,
``/schedule``) are pure functions of the specification, and GETs
trivially so. A non-idempotent ``POST /specs`` that dies mid-response is
surfaced to the caller instead of silently re-executed. Between retries
the client backs off with seeded jitter, bounded by ``retries``, so a
fleet of clients hammering a restarting daemon does not re-arrive in
lockstep. The same client speaks to a single ``repro serve`` daemon or a
``repro cluster`` router — identical wire protocol; ``tenant=`` adds the
``X-Repro-Tenant`` namespace header the router scopes specs and
admission quotas by.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any

from ..errors import ReproError
from ..obs.context import (
    TRACE_HEADER,
    IdSource,
    TraceContext,
    current_trace_context,
    format_trace_header,
)

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """A non-2xx response from the service.

    ``request_id`` is the server's ``X-Repro-Request-Id`` for the failed
    exchange (None when the response never arrived) — quote it when
    filing a bug against a daemon's logs.
    """

    def __init__(self, status: int, payload: Any,
                 request_id: str | None = None):
        self.status = status
        self.payload = payload
        self.request_id = request_id
        message = payload.get("error") if isinstance(payload, dict) else None
        detail = f" [request {request_id}]" if request_id else ""
        super().__init__(
            (message or f"service returned HTTP {status}") + detail
        )


class ServiceClient:
    """Blocking JSON client over one keep-alive connection.

    Not thread-safe (``http.client`` connections are not); give each
    thread its own client — they multiplex fine on the server side, which
    is exactly what the batcher wants.

    ``retries`` bounds reconnect attempts *after* the first try;
    ``backoff`` is the base delay between them, doubled per attempt and
    jittered by the seeded ``rng`` (pass ``backoff=0`` in tests for
    instant retries).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 *, tenant: str | None = None, retries: int = 1,
                 backoff: float = 0.05, seed: int | None = None,
                 ids: IdSource | None = None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant
        self.retries = retries
        self.backoff = backoff
        #: With an IdSource the client *originates* traces: every request
        #: carries an ``X-Repro-Trace`` header (fresh trace id per call,
        #: unless an ambient context is already installed) and the last
        #: minted trace id is kept on :attr:`last_trace_id` for
        #: ``repro trace fetch``.
        self.ids = ids
        self.last_trace_id: str | None = None
        self.last_request_id: str | None = None
        self._rng = random.Random(seed)
        self._sleep = time.sleep  # test seam
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, body: dict | None = None,
                 idempotent: bool | None = None):
        """One exchange, with bounded retries where re-sending is safe.

        ``idempotent=None`` means "GETs only". Failures while *connecting*
        (no bytes ever reached the server) are always retryable; failures
        after the request started going out are retried only for
        idempotent endpoints — the server may already be (or have
        finished) executing the first copy.
        """
        if idempotent is None:
            idempotent = method == "GET"
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        ctx = current_trace_context()
        if ctx is None and self.ids is not None:
            ctx = TraceContext(
                trace_id=self.ids.trace_id(), span_id=self.ids.span_id()
            )
        if ctx is not None:
            headers[TRACE_HEADER] = format_trace_header(ctx)
            self.last_trace_id = ctx.trace_id
        attempt = 0
        while True:
            attempt += 1
            conn = self._connection()
            connected = conn.sock is not None
            try:
                if not connected:
                    conn.connect()  # split out: a connect failure sent nothing
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt > self.retries:
                    raise
                self._backoff_sleep(attempt)
                continue
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, TimeoutError):
                # The request (at least partly) went out and died — a
                # dropped keep-alive, a mid-response crash. Only an
                # idempotent endpoint may be re-sent: the server may have
                # executed the first copy already.
                self.close()
                if not idempotent or attempt > self.retries:
                    raise
                self._backoff_sleep(attempt)
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        self.last_request_id = response.headers.get("X-Repro-Request-Id")
        if content_type.startswith("application/json"):
            data = json.loads(raw) if raw else {}
        else:
            data = raw.decode("utf-8")
        if response.status >= 400:
            raise ServiceClientError(response.status, data,
                                     request_id=self.last_request_id)
        return data

    def _backoff_sleep(self, attempt: int) -> None:
        if self.backoff <= 0:
            return
        # Exponential with full jitter in [0.5, 1.0] of the step, so
        # concurrent clients spread out instead of retrying in lockstep.
        delay = self.backoff * (2 ** (attempt - 1))
        self._sleep(delay * (0.5 + 0.5 * self._rng.random()))

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "text"):
        """The metrics exposition: Prometheus text, or a dict with
        ``format="json"``."""
        suffix = "?format=json" if format == "json" else ""
        return self._request("GET", "/metrics" + suffix)

    def specs(self) -> list[dict]:
        return self._request("GET", "/specs")["specs"]

    def traces(self) -> list[str]:
        """Trace ids the daemon (or router sink) has retained."""
        return self._request("GET", "/traces")["traces"]

    def trace(self, trace_id: str) -> dict:
        """One trace: the span segment(s) the far end holds for it."""
        return self._request("GET", f"/traces/{trace_id}")

    def cluster_status(self) -> dict:
        """The router's fleet view: workers, ring, admission, SLOs."""
        return self._request("GET", "/cluster/status")

    def cluster_metrics(self, format: str = "text"):
        """The federated exposition (totals + router + every live
        worker): Prometheus text, or the dict form with ``format="json"``."""
        suffix = "?format=json" if format == "json" else ""
        return self._request("GET", "/cluster/metrics" + suffix)

    def register(self, name: str, text: str) -> dict:
        # Not marked idempotent: a re-sent registration racing a
        # different writer could double-bump the version.
        return self._request("POST", "/specs", {"name": name, "text": text})

    def compile(self, spec: str | None = None, text: str | None = None) -> dict:
        return self._request("POST", "/compile", _target(spec, text),
                             idempotent=True)

    def consistency(self, spec: str | None = None,
                    text: str | None = None) -> bool:
        return self._request(
            "POST", "/consistency", _target(spec, text), idempotent=True
        )["consistent"]

    def verify(
        self,
        spec: str | None = None,
        text: str | None = None,
        properties: list[str] | None = None,
        timeout: float | None = None,
        seed: int | None = None,
    ) -> dict:
        body = _target(spec, text)
        if properties is not None:
            body["properties"] = list(properties)
        if timeout is not None:
            body["timeout"] = timeout
        if seed is not None:
            body["seed"] = seed
        return self._request("POST", "/verify", body, idempotent=True)

    def schedule(self, spec: str | None = None, text: str | None = None,
                 limit: int = 1) -> dict:
        body = _target(spec, text)
        body["limit"] = limit
        return self._request("POST", "/schedule", body, idempotent=True)


def _target(spec: str | None, text: str | None) -> dict:
    if (spec is None) == (text is None):
        raise ValueError("provide exactly one of spec= or text=")
    return {"spec": spec} if spec is not None else {"text": text}
