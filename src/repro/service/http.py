"""Shared HTTP/1.1 plumbing for the service daemon and the cluster router.

Both front doors — the single-process :class:`~repro.service.server.
VerificationService` and the :class:`~repro.cluster.router.ClusterRouter`
— speak the same wire protocol: JSON bodies over hand-rolled HTTP/1.1
with keep-alive, on :func:`asyncio.start_server`, zero dependencies
beyond the standard library. This module is that shared substrate:

* :class:`HttpServerBase` — connection lifecycle (accept, keep-alive
  loop, graceful half of shutdown), request parsing with body-size
  limits, response writing, per-endpoint metrics and spans, and the
  in-flight request accounting that lets shutdown drain accepted
  requests without letting a parked keep-alive socket hold it hostage;
* :class:`HttpError` — the internal status-plus-payload carrier handlers
  raise to produce a JSON error response;
* :func:`json_body` — strict JSON-object body parsing.

Subclasses implement :meth:`HttpServerBase._handle` (the router table)
and may override :attr:`HttpServerBase.metrics_prefix` so their request
counters and latency histograms land under their own namespace
(``service.http.*`` vs ``cluster.http.*``).
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError
from ..obs.config import Observability
from ..obs.context import (
    IdSource,
    parse_trace_header,
    reset_trace_context,
    set_trace_context,
)
from ..obs.metrics import MetricsRegistry

__all__ = [
    "HttpError",
    "HttpServerBase",
    "json_body",
    "MAX_BODY_BYTES",
    "REQUEST_ID_HEADER",
]

#: Every response carries one: echoed when the client supplied it,
#: minted otherwise — the correlation handle for logs and bug reports.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Largest accepted request body; a specification is text, not a payload.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpError(Exception):
    """Internal: carries a status + JSON error payload to the writer."""

    def __init__(self, status: int, message: str, **extra):
        self.status = status
        self.payload = {"error": message, **extra}
        super().__init__(message)


def json_body(body: bytes):
    """Parse a request body as a JSON object (``{}`` when empty)."""
    if not body:
        return {}
    try:
        data = json.loads(body)
    except ValueError:
        raise HttpError(400, "request body is not valid JSON") from None
    if not isinstance(data, dict):
        raise HttpError(400, "request body must be a JSON object")
    return data


class HttpServerBase:
    """A JSON-over-HTTP asyncio server; subclasses supply the routes.

    The contract for subclasses:

    * implement ``async _handle(method, path, query, headers, body)``
      returning ``(status, payload, content_type)`` — ``payload`` is a
      ``str`` (sent verbatim) or any JSON-serializable object;
    * raise :class:`HttpError` for protocol-level rejections, or any
      :class:`~repro.errors.ReproError` to have :meth:`_error_status`
      map it (override to extend the mapping);
    * optionally set :attr:`metrics_prefix` for the metrics namespace.
    """

    metrics_prefix = "service"

    def __init__(self, obs: Observability | None = None):
        self.obs = obs if obs is not None else Observability(
            metrics=MetricsRegistry()
        )
        # Request ids come from the tracer's IdSource when tracing is
        # distributed (so a seeded run mints a replayable id stream), and
        # from a private source otherwise.
        self._request_ids = getattr(self.obs.tracer, "ids", None) or IdSource()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutting_down = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)`` — resolves ``port=0`` requests."""
        if self._server is None or not self._server.sockets:
            return None
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound address."""
        self._server = await asyncio.start_server(self._on_connection, host, port)
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def _stop_accepting(self) -> None:
        """Close the listening socket (half one of a graceful shutdown)."""
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _drain_connections(self) -> None:
        """Wait for in-flight *requests* (not idle keep-alive sockets — a
        parked client must not be able to hold shutdown hostage), then
        cancel and reap every connection task."""
        await self._idle.wait()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    def _cancel_connections(self) -> None:
        """The abrupt path: cancel every connection task immediately."""
        for task in list(self._connections):
            task.cancel()

    # -- connection handling --------------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    await self._write_response(
                        writer, exc.status, exc.payload,
                        "application/json", keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self._begin_request()
                try:
                    status, payload, content_type, extra = await self._route(
                        method, path, query, headers, body
                    )
                    await self._write_response(
                        writer, status, payload, content_type,
                        keep_alive=keep_alive, extra_headers=extra,
                    )
                finally:
                    self._end_request()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _write_response(self, writer, status, payload, content_type,
                              keep_alive: bool,
                              extra_headers: dict[str, str] | None = None,
                              ) -> None:
        raw = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload, default=str).encode("utf-8")
        )
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(raw)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n".encode("ascii")
        )
        writer.write(raw)
        await writer.drain()

    def _begin_request(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF between requests."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, ValueError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("ascii").split()
        except ValueError:
            raise HttpError(400, "malformed request line") from None
        path, _, query_string = target.partition("?")
        query = {}
        for pair in query_string.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, query, headers, body

    # -- routing --------------------------------------------------------------

    async def _route(self, method, path, query, headers, body):
        """Dispatch; returns (status, payload, content-type, extra headers).

        Besides the route table this is where a request's observability
        identity is established: the ``X-Repro-Trace`` header (if any)
        becomes the remote parent of the ``http.<endpoint>`` span, the
        span's own context is installed in the task-local contextvar so
        everything the handler awaits inherits it, and the request id is
        echoed (or minted) into the response headers. The span records
        the outcome either way — ``status`` always, ``error_type`` on
        failures.
        """
        endpoint = path.strip("/").replace("/", ".") or "root"
        metrics = self.obs.metrics
        started = asyncio.get_running_loop().time()
        ctx = parse_trace_header(headers.get("x-repro-trace"))
        request_id = (
            headers.get("x-repro-request-id", "").strip()
            or self._request_ids.request_id()
        )
        error_type: str | None = None
        token = None
        try:
            with self.obs.tracer.span(
                f"http.{endpoint}", method=method, ctx=ctx, root=True
            ) as span:
                own_ctx = getattr(span, "context", None)
                if own_ctx is not None:
                    token = set_trace_context(own_ctx)
                try:
                    status, payload, content_type = await self._handle(
                        method, path, query, headers, body
                    )
                except HttpError as exc:
                    status, payload, content_type = (
                        exc.status, exc.payload, "application/json",
                    )
                    error_type = type(exc).__name__
                except ReproError as exc:
                    status = self._error_status(exc)
                    payload = {"error": str(exc), "kind": type(exc).__name__}
                    content_type = "application/json"
                    error_type = type(exc).__name__
                except Exception as exc:  # never kill the connection loop
                    status = 500
                    payload = {"error": str(exc), "kind": type(exc).__name__}
                    content_type = "application/json"
                    error_type = type(exc).__name__
                span.annotate(status=status)
                if error_type is not None:
                    span.annotate(error_type=error_type)
        finally:
            if token is not None:
                reset_trace_context(token)
        latency = asyncio.get_running_loop().time() - started
        if metrics is not None:
            prefix = self.metrics_prefix
            metrics.inc(f"{prefix}.http.{endpoint}.requests")
            if status >= 400:
                metrics.inc(f"{prefix}.http.{endpoint}.errors")
            metrics.observe(f"{prefix}.http.{endpoint}.latency", latency)
        self._observe_outcome(endpoint, status, latency)
        return status, payload, content_type, {REQUEST_ID_HEADER: request_id}

    def _observe_outcome(self, endpoint: str, status: int,
                         latency: float) -> None:
        """Per-request hook; the router feeds its SLO monitor here."""

    async def _handle(self, method, path, query, headers, body):
        raise NotImplementedError

    def _error_status(self, exc: ReproError) -> int:
        """Map a library error to an HTTP status; subclasses extend."""
        from ..errors import ParseError

        if isinstance(exc, ParseError):
            return 400
        return 400
