"""The asyncio JSON-over-HTTP verification daemon (``repro serve``).

Zero dependencies beyond the standard library: a hand-rolled HTTP/1.1
server on :func:`asyncio.start_server` with keep-alive, JSON bodies, and
a deliberately small surface:

========  =================  ==================================================
method    path               semantics
========  =================  ==================================================
GET       ``/healthz``       liveness + registry/queue snapshot
GET       ``/metrics``       Prometheus text exposition (``?format=json`` too)
GET       ``/specs``         the registered specifications
GET       ``/traces``        retained distributed trace ids
GET       ``/traces/<id>``   this process's span segment for one trace
POST      ``/specs``         register/replace ``{"name": ..., "text": ...}``
POST      ``/compile``       compile; sizes, consistency, pretty goal
POST      ``/consistency``   Theorem 5.8 for ``{"spec": name}`` or ``{"text"}``
POST      ``/verify``        Theorem 5.9, *batched* — see below
POST      ``/schedule``      enumerate allowed executions (``limit`` capped)
========  =================  ==================================================

``/verify`` goes through the :class:`~repro.service.batcher.VerifyBatcher`:
concurrent requests for the same specification coalesce into one
:func:`~repro.core.verify.verify_properties` fan-out, with bounded-queue
admission (429 when shedding, 503 while draining, 504 past the
per-request deadline). The other POST endpoints run directly on the
executor — they are single compiles against the registry's memo and the
persistent compile cache.

Graceful shutdown (:meth:`VerificationService.shutdown` with
``drain=True``, the default, wired to SIGINT/SIGTERM by the CLI) stops
accepting connections and new verify work first, then drains every
accepted batch and lets in-flight handlers write their responses: an
accepted request is never dropped.

The HTTP substrate (connection lifecycle, request parsing, per-endpoint
metrics and spans) lives in :class:`~repro.service.http.HttpServerBase`,
shared with the :class:`~repro.cluster.router.ClusterRouter` — the
cluster front door speaks this exact protocol, so anything that can talk
to one daemon can talk to a fleet.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..core.resilience import Clock
from ..errors import ReproError
from ..obs.config import Observability
from ..obs.metrics import MetricsRegistry
from .batcher import (
    DeadlineExceededError,
    QueueFullError,
    ServiceDrainingError,
    VerifyBatcher,
)
from .http import HttpError, HttpServerBase, json_body
from .registry import SpecEntry, SpecRegistry, UnknownSpecError

__all__ = ["VerificationService", "ServiceHandle", "serve_in_thread"]

#: Hard cap on schedules returned by one ``/schedule`` call.
MAX_SCHEDULES = 10_000

# Backward-compatible aliases: these predate the extraction of the shared
# HTTP substrate into repro.service.http.
_HttpError = HttpError
_json_body = staticmethod(json_body)


class VerificationService(HttpServerBase):
    """The daemon: registry + batcher + HTTP front end, one event loop."""

    metrics_prefix = "service"

    def __init__(
        self,
        registry: SpecRegistry | None = None,
        *,
        specs_dir: str | Path | None = None,
        cache=None,
        jobs: int | None = 1,
        queue_limit: int = 256,
        batch_window: float = 0.005,
        default_deadline: float | None = 30.0,
        clock: Clock | None = None,
        obs: Observability | None = None,
    ):
        super().__init__(obs=obs)
        if registry is None:
            registry = SpecRegistry(specs_dir=specs_dir, cache=cache)
        self.registry = registry
        self.executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-service"
        )
        self.batcher = VerifyBatcher(
            registry,
            jobs=jobs,
            queue_limit=queue_limit,
            batch_window=batch_window,
            default_deadline=default_deadline,
            clock=clock,
            executor=self.executor,
            obs=self.obs,
        )

    # -- lifecycle ------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8745) -> tuple[str, int]:
        """Bind and start serving; returns the bound address."""
        self.batcher.start()
        return await super().start(host, port)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, then drain (or cancel) in-flight work.

        ``drain=True`` — the graceful path — completes every accepted
        verification batch and every in-flight HTTP response before
        returning. ``drain=False`` abandons the queue (waiters see 503).
        """
        await self._stop_accepting()
        if drain:
            await self.batcher.aclose()
            await self._drain_connections()
        else:
            self.batcher._draining = True
            self._cancel_connections()
            for group in list(self.batcher._pending.values()):
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(ServiceDrainingError())
            self.batcher._pending.clear()
            if self.batcher._task is not None:
                self.batcher._wake.set()
                await asyncio.gather(self.batcher._task, return_exceptions=True)
        self.executor.shutdown(wait=True)

    # -- routing --------------------------------------------------------------

    def _error_status(self, exc: ReproError) -> int:
        if isinstance(exc, QueueFullError):
            return 429
        if isinstance(exc, ServiceDrainingError):
            return 503
        if isinstance(exc, DeadlineExceededError):
            return 504
        if isinstance(exc, UnknownSpecError):
            return 404
        return super()._error_status(exc)

    async def _handle(self, method, path, query, headers, body):
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "draining" if self._shutting_down else "ok",
                "specs": len(self.registry),
                "queue_depth": self.batcher.depth,
                "queue_limit": self.batcher.queue_limit,
            }, "application/json"
        if path == "/metrics" and method == "GET":
            registry = self.obs.metrics or MetricsRegistry()
            if query.get("format") == "json":
                return 200, registry.to_dict(), "application/json"
            return 200, registry.render_prometheus(), "text/plain; version=0.0.4"
        if path == "/traces" and method == "GET":
            return 200, {"traces": self.obs.tracer.trace_ids()}, \
                "application/json"
        if path.startswith("/traces/") and method == "GET":
            from ..obs.distributed import segment_spans

            trace_id = path[len("/traces/"):]
            spans = self.obs.tracer.spans_for(trace_id)
            return 200, {
                "trace_id": trace_id,
                "segment": getattr(self.obs.tracer, "segment", "local"),
                "spans": segment_spans(
                    spans, getattr(self.obs.tracer, "segment", "local")
                ),
            }, "application/json"
        if path == "/specs" and method == "GET":
            specs = []
            for name in self.registry.names():
                entry = self.registry.get(name)
                specs.append({
                    "name": entry.name,
                    "version": entry.version,
                    "properties": [p_name for p_name, _ in entry.spec.properties],
                })
            return 200, {"specs": specs}, "application/json"
        if path == "/specs" and method == "POST":
            data = json_body(body)
            name, text = data.get("name"), data.get("text")
            if not isinstance(name, str) or not isinstance(text, str):
                raise HttpError(400, "POST /specs needs string 'name' and 'text'")
            entry = self.registry.register(name, text)
            return 200, {"name": entry.name, "version": entry.version}, \
                "application/json"
        if method != "POST" or path not in (
            "/compile", "/consistency", "/verify", "/schedule"
        ):
            known = ("/healthz", "/metrics", "/specs", "/traces", "/compile",
                     "/consistency", "/verify", "/schedule")
            if path in known:
                raise HttpError(405, f"method {method} not allowed on {path}")
            raise HttpError(404, f"no such endpoint {path}")

        data = json_body(body)
        entry = self._resolve_entry(data)
        if path == "/verify":
            return await self._handle_verify(entry, data)
        loop = asyncio.get_running_loop()
        if path == "/compile":
            compiled = await loop.run_in_executor(
                self.executor, self.registry.compiled, entry
            )
            from ..ctr.formulas import goal_size
            from ..ctr.pretty import pretty

            return 200, {
                "spec": entry.name,
                "version": entry.version,
                "consistent": compiled.consistent,
                "source_size": goal_size(compiled.source),
                "applied_size": compiled.applied_size,
                "compiled_size": compiled.compiled_size,
                "compiled": pretty(compiled.goal),
            }, "application/json"
        if path == "/consistency":
            compiled = await loop.run_in_executor(
                self.executor, self.registry.compiled, entry
            )
            return 200, {
                "spec": entry.name,
                "consistent": compiled.consistent,
            }, "application/json"
        # /schedule
        limit = data.get("limit", 1)
        if not isinstance(limit, int) or limit < 1:
            raise HttpError(400, "'limit' must be a positive integer")
        limit = min(limit, MAX_SCHEDULES)
        compiled = await loop.run_in_executor(
            self.executor, self.registry.compiled, entry
        )
        if not compiled.consistent:
            return 200, {"spec": entry.name, "consistent": False,
                         "schedules": []}, "application/json"

        def enumerate_schedules():
            out = []
            for schedule in compiled.schedules(limit=limit):
                out.append(list(schedule))
                if len(out) >= limit:
                    break
            return out

        schedules = await loop.run_in_executor(self.executor, enumerate_schedules)
        return 200, {"spec": entry.name, "consistent": True,
                     "schedules": schedules}, "application/json"

    async def _handle_verify(self, entry: SpecEntry, data):
        from ..constraints.parser import parse_constraint

        requested = data.get("properties")
        if requested is None:
            names = [name for name, _ in entry.spec.properties]
            props = [prop for _, prop in entry.spec.properties]
        else:
            if not isinstance(requested, list) or not all(
                isinstance(p, str) for p in requested
            ):
                raise HttpError(400, "'properties' must be a list of strings")
            names = list(requested)
            props = [parse_constraint(p) for p in requested]
        if not props:
            return 200, {"spec": entry.name, "results": []}, "application/json"
        deadline = data.get("timeout")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise HttpError(400, "'timeout' must be a number of seconds")
        seed = data.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise HttpError(400, "'seed' must be an integer")
        results = await self.batcher.submit(
            entry, props, deadline=deadline, seed=seed
        )
        return 200, {
            "spec": entry.name,
            "version": entry.version,
            "results": [
                {
                    "name": name,
                    "property": str(result.property),
                    "holds": result.holds,
                    "witness": list(result.witness) if result.witness else None,
                }
                for name, result in zip(names, results)
            ],
        }, "application/json"

    def _resolve_entry(self, data) -> SpecEntry:
        name, text = data.get("spec"), data.get("text")
        if (name is None) == (text is None):
            raise HttpError(400, "provide exactly one of 'spec' or 'text'")
        if name is not None:
            if not isinstance(name, str):
                raise HttpError(400, "'spec' must be a string")
            return self.registry.get(name)
        if not isinstance(text, str):
            raise HttpError(400, "'text' must be a string")
        return self.registry.resolve_inline(text)


# -- the synchronous harness ---------------------------------------------------


class ServiceHandle:
    """A running service on a background thread (tests, benchmarks, examples).

    Obtained from :func:`serve_in_thread`; ``stop()`` performs the
    graceful (draining) shutdown by default.
    """

    def __init__(self, service: VerificationService, loop, thread):
        self.service = service
        self._loop = loop
        self._thread = thread
        self.host, self.port = service.address

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout: float = 30.0):
        from .client import ServiceClient

        return ServiceClient(self.host, self.port, timeout=timeout)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_in_thread(
    host: str = "127.0.0.1", port: int = 0, **service_kwargs
) -> ServiceHandle:
    """Start a :class:`VerificationService` on a daemon thread.

    ``port=0`` binds an ephemeral port; the bound address is on the
    returned handle. The caller talks to it with any HTTP client —
    :meth:`ServiceHandle.client` hands out the bundled blocking one.
    """
    loop = asyncio.new_event_loop()
    service = VerificationService(**service_kwargs)
    started = threading.Event()
    failure: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start(host, port))
        except BaseException as exc:  # bind failure, bad specs dir, ...
            failure.append(exc)
            loop.close()
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-service", daemon=True
    )
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ServiceHandle(service, loop, thread)
