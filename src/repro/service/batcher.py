"""Request batching and admission control for the verification service.

Verification is the service's expensive operation — each property is an
Apply/Excise compile of ``G ∧ C ∧ ¬Φ`` (Theorem 5.9), NP-hard in the
constraint set. It is also, for a service, highly *coalescible*: many
concurrent requests ask about the same specification, often about the
same properties. The :class:`VerifyBatcher` exploits that:

* requests are grouped by the specification's batch key (``name@version``
  from the :class:`~repro.service.registry.SpecRegistry`, so a
  re-registration racing a request can never join the wrong group);
* a short *coalescing window* lets concurrent submitters land in the same
  group before it is dispatched — and while one batch verifies on the
  executor, newly arriving requests pile into the next one;
* within a batch, duplicate properties are verified **once** and the
  result fanned back out to every waiter, via one
  :func:`~repro.core.verify.verify_properties` call (itself ``jobs``-aware);
* results are bit-identical to per-request :func:`verify_property` calls —
  the batch API carries that determinism contract.

Admission control is explicit: a bounded queue measured in *properties*
(the unit of work), shed-on-full (HTTP 429), reject-while-draining
(HTTP 503), and a per-request deadline checked against an injectable
:class:`~repro.core.resilience.Clock` — a
:class:`~repro.core.resilience.VirtualClock` makes expiry deterministic
in tests (HTTP 504). Expiry is enforced twice: at dispatch time (a batch
never verifies dead requests) and by a periodic *sweep*
(:meth:`VerifyBatcher.sweep_expired`, run by a background task every
``expiry_interval`` seconds) — so a request whose deadline passes while
the coalescing window is idle or the queue is parked behind a long batch
gets its 504 promptly, not whenever the next dispatch happens to look.
Graceful shutdown (:meth:`VerifyBatcher.aclose`) stops admissions first,
then drains: every request accepted before the drain began still gets
its verdict.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..constraints.algebra import Constraint
from ..core.resilience import Clock, SystemClock
from ..errors import ReproError
from ..obs.context import (
    TraceContext,
    current_trace_context,
    use_trace_context,
)
from .registry import SpecEntry, SpecRegistry

__all__ = [
    "QueueFullError",
    "ServiceDrainingError",
    "DeadlineExceededError",
    "VerifyBatcher",
]


class QueueFullError(ReproError):
    """Admission denied: accepting this request would overflow the queue."""

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"verification queue is full ({depth}/{limit} properties queued)"
        )


class ServiceDrainingError(ReproError):
    """Admission denied: the service is shutting down."""

    def __init__(self) -> None:
        super().__init__("service is draining; no new work accepted")


class DeadlineExceededError(ReproError):
    """The request's deadline passed before its batch was dispatched."""

    def __init__(self, waited: float, deadline: float):
        self.waited = waited
        self.deadline = deadline
        super().__init__(
            f"request deadline of {deadline:g}s exceeded after {waited:g}s queued"
        )


@dataclass
class _Request:
    """One submitted verification request awaiting its batch."""

    entry: SpecEntry
    props: tuple[Constraint, ...]
    future: asyncio.Future
    enqueued_at: float
    deadline: float | None  # seconds from enqueue, on the injectable clock
    seed: int | None = None
    # The submitter's trace context, captured at submit() time (the HTTP
    # request span). The batch span links every waiter through these.
    ctx: TraceContext | None = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and (now - self.enqueued_at) > self.deadline


@dataclass
class BatcherStats:
    """Counters the batcher maintains (mirrored into the metrics registry)."""

    submitted: int = 0
    accepted: int = 0
    shed: int = 0
    rejected_draining: int = 0
    expired: int = 0
    batches: int = 0
    verified: int = 0        # unique properties actually verified
    coalesced: int = 0       # properties answered without verification
    batch_sizes: list[int] = field(default_factory=list)


class VerifyBatcher:
    """Coalesces concurrent verification requests into batched fan-outs.

    Single event loop, many waiters: :meth:`submit` is awaited by the
    HTTP handlers; a background consumer task groups pending requests by
    spec key, runs one ``verify_properties`` per group on ``executor``
    (keeping the loop free to accept more work), and resolves every
    waiter's future with its slice of the batch results.
    """

    def __init__(
        self,
        registry: SpecRegistry,
        *,
        jobs: int | None = 1,
        queue_limit: int = 256,
        batch_window: float = 0.005,
        default_deadline: float | None = 30.0,
        expiry_interval: float = 0.05,
        clock: Clock | None = None,
        executor=None,
        obs=None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if expiry_interval <= 0:
            raise ValueError("expiry_interval must be > 0")
        self.registry = registry
        self.jobs = jobs
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.default_deadline = default_deadline
        self.expiry_interval = expiry_interval
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.executor = executor
        self.obs = obs
        self.stats = BatcherStats()
        self._pending: OrderedDict[str, list[_Request]] = OrderedDict()
        self._depth = 0  # queued properties across all groups
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._sweep_task: asyncio.Task | None = None
        self._draining = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the consumer and expiry-sweep tasks on the running loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-verify-batcher"
            )
        if self._sweep_task is None or self._sweep_task.done():
            self._sweep_task = asyncio.get_running_loop().create_task(
                self._sweep_loop(), name="repro-verify-expiry"
            )

    async def aclose(self) -> None:
        """Stop admissions, drain every accepted request, stop the tasks."""
        self._draining = True
        self._wake.set()
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            await asyncio.gather(self._sweep_task, return_exceptions=True)
            self._sweep_task = None
        if self._task is not None:
            await self._task
            self._task = None
        # Started without a consumer task (tests drive flush() by hand):
        # drain whatever is still queued so accepted work is never dropped.
        await self.flush()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Queued properties (the unit the queue limit is measured in)."""
        return self._depth

    # -- submission -----------------------------------------------------------

    async def submit(
        self,
        entry: SpecEntry,
        props,
        *,
        deadline: float | None = None,
        seed: int | None = None,
    ) -> list:
        """Queue ``props`` for ``entry`` and await their verdicts.

        Returns a list of
        :class:`~repro.core.verify.VerificationResult`, in ``props``
        order. Raises :class:`ServiceDrainingError`,
        :class:`QueueFullError`, or :class:`DeadlineExceededError`.
        """
        props = tuple(props)
        self.stats.submitted += len(props)
        self._count("service.verify.submitted", len(props))
        if self._draining:
            self.stats.rejected_draining += len(props)
            self._count("service.verify.rejected_draining", len(props))
            raise ServiceDrainingError()
        cost = max(len(props), 1)
        if self._depth + cost > self.queue_limit:
            self.stats.shed += len(props)
            self._count("service.verify.shed", len(props))
            raise QueueFullError(self._depth, self.queue_limit)
        if deadline is None:
            deadline = self.default_deadline
        request = _Request(
            entry=entry,
            props=props,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self.clock.now(),
            deadline=deadline,
            seed=seed,
            ctx=current_trace_context(),
        )
        self._pending.setdefault(entry.key, []).append(request)
        self._depth += cost
        self.stats.accepted += len(props)
        self._gauge("service.queue_depth", self._depth)
        self._wake.set()
        return await request.future

    # -- the consumer ---------------------------------------------------------

    async def _run(self) -> None:
        while True:
            if not self._pending:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.batch_window > 0 and not self._draining:
                # The coalescing window: let concurrent submitters join
                # the groups dequeued below. Real loop time on purpose —
                # the injectable clock governs request deadlines, not the
                # daemon's own pacing.
                await asyncio.sleep(self.batch_window)
            await self.flush(limit=len(self._pending))

    async def _sweep_loop(self) -> None:
        # The consumer can be parked for a long time — an idle coalescing
        # window with nothing to dispatch, or a huge batch hogging the
        # executor while new requests pile up behind it. The sweeper runs
        # beside it so deadline expiry (on the *injectable* clock) is
        # delivered promptly in wall time either way.
        while not self._draining:
            await asyncio.sleep(self.expiry_interval)
            self.sweep_expired()

    def sweep_expired(self) -> int:
        """Fail every queued request whose deadline has passed; returns
        how many were expired.

        Also the deterministic test seam: submit, advance a
        :class:`~repro.core.resilience.VirtualClock`, call this by hand.
        """
        now = self.clock.now()
        expired = 0
        for key in list(self._pending):
            requests = self._pending[key]
            live: list[_Request] = []
            for request in requests:
                if not request.future.done() and request.expired(now):
                    self._expire(request, now)
                    expired += 1
                else:
                    live.append(request)
            if len(live) != len(requests):
                removed_cost = (
                    sum(max(len(r.props), 1) for r in requests)
                    - sum(max(len(r.props), 1) for r in live)
                )
                self._depth -= removed_cost
                if live:
                    self._pending[key] = live
                else:
                    del self._pending[key]
        if expired:
            self._gauge("service.queue_depth", self._depth)
        return expired

    def _expire(self, request: _Request, now: float) -> None:
        self.stats.expired += len(request.props)
        self._count("service.verify.expired", len(request.props))
        request.future.set_exception(
            DeadlineExceededError(now - request.enqueued_at, request.deadline)
        )

    async def flush(self, limit: int | None = None) -> int:
        """Dispatch up to ``limit`` pending groups (all of them by default).

        The test seam: deterministic tests enqueue submits, advance a
        :class:`~repro.core.resilience.VirtualClock`, then flush by hand
        instead of racing the background task. Returns the number of
        groups dispatched.
        """
        dispatched = 0
        while self._pending and (limit is None or dispatched < limit):
            key, requests = self._pending.popitem(last=False)
            self._depth -= sum(max(len(r.props), 1) for r in requests)
            self._gauge("service.queue_depth", self._depth)
            await self._dispatch(key, requests)
            dispatched += 1
        return dispatched

    async def _dispatch(self, key: str, requests: list[_Request]) -> None:
        now = self.clock.now()
        live: list[_Request] = []
        for request in requests:
            if request.future.done():  # cancelled, or already swept to 504
                continue
            if request.expired(now):
                self._expire(request, now)
                continue
            live.append(request)
        if not live:
            return

        # Dedup: verify each distinct property once per batch. Constraints
        # are hash-consed values, so dict identity is semantic identity.
        unique: OrderedDict[tuple[Constraint, int | None], None] = OrderedDict()
        for request in live:
            for prop in request.props:
                unique.setdefault((prop, request.seed), None)
        total_props = sum(len(r.props) for r in live)
        self.stats.batches += 1
        self.stats.verified += len(unique)
        self.stats.coalesced += total_props - len(unique)
        self.stats.batch_sizes.append(total_props)
        self._count("service.verify.batches")
        self._count("service.verify.coalesced", total_props - len(unique))
        self._observe("service.verify.batch_size", total_props)
        self._observe("service.verify.batch_unique", len(unique))

        entry = live[0].entry
        loop = asyncio.get_running_loop()
        # One batch span covering the whole dispatch. Its distributed
        # parent is the first waiter's request span; every other waiter
        # is linked through the ``links`` attribute — the cross-request
        # record of who coalesced into this batch.
        tracer = getattr(self.obs, "tracer", None)
        primary = next((r.ctx for r in live if r.ctx is not None), None)
        span_cm = (
            tracer.span(
                "service.verify.batch", ctx=primary, key=key,
                waiters=len(live), unique=len(unique),
            )
            if tracer is not None else nullcontext(None)
        )
        with span_cm as batch_span:
            links = [
                r.ctx.span_id for r in live
                if r.ctx is not None and r.ctx is not primary
            ]
            if batch_span is not None and links:
                batch_span.annotate(links=links)
            batch_ctx = getattr(batch_span, "context", None)
            started = loop.time()
            try:
                results = await loop.run_in_executor(
                    self.executor, self._verify_batch, entry, list(unique),
                    batch_ctx,
                )
            except BaseException as exc:  # compile/verify failure fails batch
                for request in live:
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                return
            finally:
                # The exemplar makes this histogram name the spec it was
                # slow for — "top-k slowest specs" in ``repro top``.
                self._observe("service.verify.batch_latency",
                              loop.time() - started, exemplar=key)
        by_prop = dict(zip(unique, results))
        for request in live:
            if not request.future.cancelled():
                request.future.set_result(
                    [by_prop[(prop, request.seed)] for prop in request.props]
                )

    def _verify_batch(self, entry: SpecEntry, keyed_props: list,
                      ctx: TraceContext | None = None) -> list:
        """Runs on the executor thread: one batched verification fan-out.

        ``ctx`` — the batch span's context — is installed for the
        duration, so the ``parallel.*`` spans recorded by
        :mod:`repro.core.parallel` hang under the batch span in the
        distributed tree even though they run on a different thread.
        """
        from ..core.verify import verify_properties

        spec = entry.spec
        # Group by seed (requests rarely differ); each group is one
        # verify_properties call so the common case is a single fan-out.
        results: list = [None] * len(keyed_props)
        by_seed: OrderedDict[int | None, list[int]] = OrderedDict()
        for index, (_, seed) in enumerate(keyed_props):
            by_seed.setdefault(seed, []).append(index)
        with use_trace_context(ctx):
            for seed, indices in by_seed.items():
                verdicts = verify_properties(
                    spec.goal, list(spec.constraints),
                    [keyed_props[i][0] for i in indices],
                    rules=spec.rules, cache=self.registry.cache,
                    jobs=self.jobs, seed=seed, obs=self.obs,
                )
                for index, verdict in zip(indices, verdicts):
                    results[index] = verdict
        return results

    # -- metrics helpers ------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        if self.obs is not None and self.obs.metrics is not None and amount:
            self.obs.metrics.inc(name, amount)

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None and self.obs.metrics is not None:
            self.obs.metrics.set_gauge(name, value)

    def _observe(self, name: str, value: float,
                 exemplar: str | None = None) -> None:
        if self.obs is not None and self.obs.metrics is not None:
            self.obs.metrics.observe(name, value, exemplar=exemplar)
