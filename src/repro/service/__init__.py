"""The workflow verification service (``repro serve``).

A zero-dependency asyncio daemon exposing the library's decision
procedures — compile (Theorems 5.8/5.11), consistency (5.8), property
verification (5.9), and schedule enumeration — as JSON over HTTP, with
the three things a service adds over a library call:

* a :class:`~repro.service.registry.SpecRegistry` of named, versioned,
  hot-reloadable specifications, backed by the persistent
  :class:`~repro.core.compiler.CompileCache` so the ``O(d^N·|G|)``
  compile cost of Theorem 5.11 is paid once per specification *content*,
  not once per request;
* a :class:`~repro.service.batcher.VerifyBatcher` that coalesces
  concurrent verification requests per specification into single batched
  fan-outs with intra-batch dedup — bit-identical verdicts to
  per-request calls — plus bounded-queue admission control (429),
  per-request deadlines on an injectable clock (504), and
  reject-while-draining (503);
* graceful shutdown that drains every accepted request, and
  observability throughout (``/healthz``, ``/metrics``, a span per
  request when tracing is on).
"""

from .batcher import (
    DeadlineExceededError,
    QueueFullError,
    ServiceDrainingError,
    VerifyBatcher,
)
from .client import ServiceClient, ServiceClientError
from .registry import SpecEntry, SpecRegistry, TenantView, UnknownSpecError
from .server import ServiceHandle, VerificationService, serve_in_thread

__all__ = [
    "SpecRegistry",
    "SpecEntry",
    "TenantView",
    "UnknownSpecError",
    "VerifyBatcher",
    "QueueFullError",
    "ServiceDrainingError",
    "DeadlineExceededError",
    "VerificationService",
    "ServiceHandle",
    "serve_in_thread",
    "ServiceClient",
    "ServiceClientError",
]
