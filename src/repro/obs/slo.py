"""Service-level objectives over a sliding window, with burn rates.

An :class:`SLObjective` states a promise about recent traffic:

* ``availability`` — at least ``target`` of requests answered without a
  server-side failure (5xx; client errors are the client's problem);
* ``latency`` — at least ``target`` of requests answered within
  ``threshold`` seconds.

The :class:`SLOMonitor` holds a sliding window of request outcomes on an
injectable :class:`~repro.core.resilience.Clock` (a
:class:`~repro.core.resilience.VirtualClock` makes every windowing
branch deterministic in tests) and evaluates each objective on demand:

* ``ratio`` — the fraction of good events in the window;
* ``budget_remaining`` — how much of the error budget ``1 - target`` is
  left, as a fraction of the budget (1.0 = untouched, 0.0 = spent,
  negative = violated);
* ``burn_rate`` — the observed error rate divided by the budgeted error
  rate. Burn rate 1.0 means the budget is being consumed exactly as
  provisioned; 14.4 is the classic "page now" threshold for a 99.9%
  objective. An empty window burns nothing.

The router records every front-door request into the monitor and
mirrors each objective's gauges into the metrics registry
(``slo.<name>.ratio`` / ``.burn_rate`` / ``.budget_remaining``), so the
numbers are visible three ways: ``/cluster/status``, ``/metrics``, and
``repro top``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.resilience import Clock, SystemClock

__all__ = ["SLObjective", "SLOMonitor", "DEFAULT_OBJECTIVES"]


@dataclass(frozen=True)
class SLObjective:
    """One promise about the traffic in the window."""

    name: str
    kind: str              # "availability" | "latency"
    target: float          # fraction of requests that must be good
    threshold: float = 0.0  # seconds; latency objectives only

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be strictly between 0 and 1")
        if self.kind == "latency" and self.threshold <= 0:
            raise ValueError("latency objectives need a positive threshold")

    def good(self, ok: bool, latency: float) -> bool:
        if self.kind == "availability":
            return ok
        return ok and latency <= self.threshold


#: The router's defaults: three nines of availability, and 95% of
#: requests under half a second (workers carry NP-hard compiles; half a
#: second is generous for the benchmark specs and tight for real abuse).
DEFAULT_OBJECTIVES = (
    SLObjective(name="availability", kind="availability", target=0.999),
    SLObjective(name="latency_p95_500ms", kind="latency", target=0.95,
                threshold=0.5),
)


class SLOMonitor:
    """Sliding-window SLO evaluation fed one request outcome at a time."""

    def __init__(self, objectives=DEFAULT_OBJECTIVES, *,
                 window: float = 300.0, clock: Clock | None = None,
                 max_events: int = 100_000):
        if window <= 0:
            raise ValueError("window must be positive")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.objectives = tuple(objectives)
        self.window = window
        self.clock = clock if clock is not None else SystemClock()
        self.max_events = max_events
        # (timestamp, ok, latency); appends at the right, prunes the left.
        self._events: deque[tuple[float, bool, float]] = deque()

    def record(self, ok: bool, latency: float) -> None:
        """One request outcome: server-side success flag + latency."""
        now = self.clock.now()
        self._events.append((now, ok, latency))
        if len(self._events) > self.max_events:
            self._events.popleft()
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    def evaluate(self) -> list[dict]:
        """Every objective against the current window (prunes first)."""
        self._prune(self.clock.now())
        total = len(self._events)
        out = []
        for objective in self.objectives:
            good = sum(
                1 for _, ok, latency in self._events
                if objective.good(ok, latency)
            )
            ratio = good / total if total else 1.0
            budget = 1.0 - objective.target
            error_rate = 1.0 - ratio
            burn_rate = error_rate / budget if total else 0.0
            out.append({
                "name": objective.name,
                "kind": objective.kind,
                "target": objective.target,
                "threshold": objective.threshold or None,
                "window_s": self.window,
                "events": total,
                "good": good,
                "ratio": ratio,
                "met": ratio >= objective.target if total else True,
                "budget_remaining": 1.0 - burn_rate,
                "burn_rate": burn_rate,
            })
        return out

    def snapshot(self) -> dict:
        """The ``/cluster/status`` shape: window size + per-objective rows."""
        return {"window_s": self.window, "objectives": self.evaluate()}

    def export_gauges(self, metrics) -> None:
        """Mirror each objective into ``slo.<name>.*`` gauges."""
        if metrics is None:
            return
        for row in self.evaluate():
            prefix = f"slo.{row['name']}"
            metrics.set_gauge(f"{prefix}.ratio", round(row["ratio"], 6))
            metrics.set_gauge(f"{prefix}.burn_rate",
                              round(row["burn_rate"], 6))
            metrics.set_gauge(f"{prefix}.budget_remaining",
                              round(row["budget_remaining"], 6))
