"""``repro top``: a refreshing ASCII fleet view of a cluster router.

The renderer is a pure function from the router's two JSON snapshots —
``/cluster/status`` (workers, circuit breakers, admission, SLOs) and
``/cluster/metrics?format=json`` (federated per-worker scrapes plus
bit-exact totals) — to one text frame, so tests feed it canned payloads
and assert on lines. :func:`run_top` is the thin polling loop around it:
fetch, render, redraw (ANSI home+clear when stdout is a tty, plain
frames otherwise), sleep, repeat.

What a frame shows, top to bottom: fleet header, one row per worker
(health, circuit-breaker state, restarts, verify p95), SLO burn-gauge
rows, per-tenant admission usage with shed counts, the slowest specs by
batch-latency exemplar, and the traffic summary line (forwarded /
failover / hedge-win / coalescing).
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["render_top", "run_top"]

#: Histogram whose exemplars name the slowest specs.
SLOW_SPEC_HISTOGRAM = "service.verify.batch_latency"

#: Worker-side request-latency histogram backing the per-replica p95.
VERIFY_LATENCY_HISTOGRAM = "service.http.verify.latency"


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _fmt_rate(numerator: float, denominator: float) -> str:
    if not denominator:
        return "-"
    return f"{numerator / denominator:.0%}"


def _worker_rows(status: dict[str, Any],
                 scrapes: dict[str, Any]) -> list[str]:
    rows = []
    for worker in status.get("workers") or []:
        worker_id = worker.get("worker", "?")
        healthy = worker.get("healthy")
        breaker = (worker.get("breaker") or {}).get("state", "?")
        restarts = worker.get("restarts", 0)
        histograms = (scrapes.get(worker_id) or {}).get("histograms") or {}
        summary = histograms.get(VERIFY_LATENCY_HISTOGRAM) or {}
        p95 = summary.get("p95") if summary.get("count") else None
        rows.append(
            f"  {worker_id:<6} {'UP' if healthy else 'DOWN':<5}"
            f" breaker={breaker:<9} restarts={restarts:<3}"
            f" verify_p95={_fmt_seconds(p95)}"
        )
    return rows or ["  (no workers)"]


def _slo_rows(status: dict[str, Any]) -> list[str]:
    slo = status.get("slo") or {}
    rows = []
    for row in slo.get("objectives") or []:
        flag = "OK " if row.get("met") else "MISS"
        rows.append(
            f"  {row.get('name', '?'):<20}"
            f" ratio={row.get('ratio', 1.0):.4f}"
            f" target={row.get('target', 0.0):.4f}"
            f" burn={row.get('burn_rate', 0.0):5.2f}"
            f"  {flag}"
        )
    if rows:
        window = slo.get("window_s")
        header = (f"slo (window {window:g}s)" if window is not None
                  else "slo")
        return [header] + rows
    return []


def _admission_rows(status: dict[str, Any]) -> list[str]:
    admission = status.get("admission")
    if not admission:
        return []
    rows = [
        "admission"
        f"  capacity={admission.get('capacity', 0):g}"
        f" in_flight={admission.get('in_flight', 0):g}"
        f" admitted={admission.get('admitted', 0)}"
        f" shed={admission.get('shed', 0)}"
    ]
    for tenant, entry in sorted((admission.get("tenants") or {}).items()):
        rows.append(
            f"  tenant {tenant:<12}"
            f" usage={entry.get('usage', 0):g}/{entry.get('share', 0):g}"
            f" shed={entry.get('shed', 0)}"
        )
    return rows


def _slowest_specs(metrics: dict[str, Any], k: int = 5) -> list[str]:
    """Top-k slowest specs across the fleet, from histogram exemplars.

    Totals cannot carry exemplars (sums have no single originating spec),
    so the slowest are gathered from every per-worker scrape and merged.
    """
    pairs: list[tuple[float, str, str]] = []
    sources = dict(metrics.get("workers") or {})
    if metrics.get("router"):
        sources["router"] = metrics["router"]
    for worker_id, scrape in sources.items():
        histograms = scrape.get("histograms") or {}
        summary = histograms.get(SLOW_SPEC_HISTOGRAM) or {}
        for value, label in summary.get("exemplars") or []:
            pairs.append((float(value), str(label), worker_id))
    if not pairs:
        return []
    pairs.sort(key=lambda item: -item[0])
    rows = ["slowest specs"]
    for value, label, worker_id in pairs[:k]:
        rows.append(f"  {label:<24} {_fmt_seconds(value):>9}  @{worker_id}")
    return rows


def _traffic_row(metrics: dict[str, Any]) -> str:
    router = (metrics.get("router") or {}).get("counters") or {}
    totals = (metrics.get("totals") or {}).get("counters") or {}
    forwarded = router.get("cluster.router.forwarded", 0)
    failovers = router.get("cluster.router.failovers", 0)
    hedges = router.get("cluster.router.hedges", 0)
    hedge_wins = router.get("cluster.router.hedge_wins", 0)
    submitted = totals.get("service.verify.submitted", 0)
    coalesced = totals.get("service.verify.coalesced", 0)
    return (
        f"traffic  forwarded={forwarded:g} failovers={failovers:g}"
        f" hedge_wins={_fmt_rate(hedge_wins, hedges)}"
        f" coalesced={_fmt_rate(coalesced, submitted)}"
    )


def render_top(status: dict[str, Any], metrics: dict[str, Any],
               *, address: str = "") -> str:
    """One ``repro top`` frame from the router's two JSON snapshots."""
    workers = status.get("workers") or []
    healthy = sum(1 for w in workers if w.get("healthy"))
    scrapes = metrics.get("workers") or {}
    lines = [
        f"repro top — cluster{' @ ' + address if address else ''}",
        f"workers {healthy}/{len(workers)} healthy"
        f"  ring={len(status.get('ring') or [])}"
        f" replicas/key={status.get('replicas', '?')}",
    ]
    lines += _worker_rows(status, scrapes)
    lines += _slo_rows(status)
    lines += _admission_rows(status)
    lines += _slowest_specs(metrics)
    lines.append(_traffic_row(metrics))
    return "\n".join(lines)


def run_top(host: str, port: int, *, interval: float = 2.0,
            iterations: int = 0, out=None, sleep=time.sleep) -> int:
    """Poll the router and redraw until interrupted (or ``iterations``).

    Returns the process exit status: 0 on a clean exit, 1 when the
    router could not be reached at all.
    """
    import sys

    from ..service.client import ServiceClient, ServiceClientError

    out = out or sys.stdout
    is_tty = getattr(out, "isatty", lambda: False)()
    client = ServiceClient(host, port, timeout=10.0)
    address = f"{host}:{port}"
    drawn = 0
    try:
        while True:
            try:
                status = client.cluster_status()
                metrics = client.cluster_metrics(format="json")
            except (OSError, ServiceClientError) as exc:
                print(f"error: router at {address} unreachable: {exc}",
                      file=sys.stderr)
                return 1
            frame = render_top(status, metrics, address=address)
            if is_tty:
                print("\x1b[H\x1b[2J" + frame, file=out, flush=True)
            else:
                if drawn:
                    print("", file=out)
                print(frame, file=out, flush=True)
            drawn += 1
            if iterations and drawn >= iterations:
                return 0
            sleep(interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()
