"""Trace context: the identity a request carries across process borders.

One verification request may touch the cluster router, a failover
replica, a worker daemon, its batcher, and a process-pool fan-out —
five processes, five tracers, five disjoint span lists. What stitches
them back into *one* tree is a :class:`TraceContext`: a 128-bit trace
id naming the request end-to-end plus the 64-bit span id of the caller's
active span, serialized into the ``X-Repro-Trace`` header in the W3C
``traceparent`` shape (``00-<trace-id>-<span-id>-01``).

Ids come from an :class:`IdSource` — a seeded RNG, injectable everywhere
ids are minted, so chaos tests replay with *identical* span ids and the
flight recorder's replay check extends to the distributed tree
(``tests/obs/test_recorder.py``).

Within a process the active context rides a :mod:`contextvars` variable
(:func:`current_trace_context`), the asyncio-native carrier: each
request-handling task sees its own context, and explicit handoff points
(the batcher's executor thread, subprocess workers) re-install it on the
far side.
"""

from __future__ import annotations

import contextvars
import random
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "IdSource",
    "format_trace_header",
    "parse_trace_header",
    "current_trace_context",
    "set_trace_context",
    "reset_trace_context",
    "use_trace_context",
]

#: The propagation header (wire casing; servers look it up lower-cased).
TRACE_HEADER = "X-Repro-Trace"

_VERSION = "00"
_FLAGS = "01"  # sampled — repro traces everything it traces


@dataclass(frozen=True)
class TraceContext:
    """A (trace id, parent span id) pair identifying where work hangs."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str   # 16 lowercase hex chars — the caller's active span

    def header(self) -> str:
        return format_trace_header(self)


class IdSource:
    """Mints trace/span/request ids; seed it and every id is replayable.

    >>> IdSource(seed=7).span_id() == IdSource(seed=7).span_id()
    True
    """

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    def trace_id(self) -> str:
        return f"{self._rng.getrandbits(128):032x}"

    def span_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def request_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"


def format_trace_header(ctx: TraceContext) -> str:
    """``TraceContext`` → ``00-<trace-id>-<span-id>-01``."""
    return f"{_VERSION}-{ctx.trace_id}-{ctx.span_id}-{_FLAGS}"


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_trace_header(value: str | None) -> TraceContext | None:
    """Parse an ``X-Repro-Trace`` header; ``None`` on absent or malformed.

    Malformed headers are dropped, never fatal: a bad trace header must
    not fail the request it came in on.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != _VERSION:
        return None
    if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None  # the all-zero ids are invalid per traceparent
    return TraceContext(trace_id=trace_id.lower(), span_id=span_id.lower())


# -- the in-process carrier ----------------------------------------------------

_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_trace_context() -> TraceContext | None:
    """The context active in this task/thread (None outside any trace)."""
    return _CURRENT.get()


def set_trace_context(ctx: TraceContext | None) -> contextvars.Token:
    """Install ``ctx``; returns the token for :func:`reset_trace_context`."""
    return _CURRENT.set(ctx)


def reset_trace_context(token: contextvars.Token) -> None:
    """Undo a :func:`set_trace_context` (restores the previous context)."""
    _CURRENT.reset(token)


@contextmanager
def use_trace_context(ctx: TraceContext | None):
    """Scope ``ctx`` to a ``with`` block (explicit-handoff helper)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
