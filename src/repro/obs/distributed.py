"""Cross-process trace assembly: span segments in, one tree out.

Every process in the fleet traces on its own — the router, each worker
daemon, the batcher and process-pool fan-out inside a worker. What each
contributes for a given trace id is a *segment*: the flat list of its
spans stamped with that ``trace_id`` (see the distributed fields on
:class:`~repro.obs.tracer.Span`). The router's ``/traces`` endpoint
collects segments from every live worker plus its own tracer;
:func:`assemble` stitches them into one tree keyed on the cross-process
``ref``/``parent_ref`` ids, and :func:`render_distributed` draws it —
router → failover attempt(s) → worker → batcher batch → parallel
fan-out, one indented tree with per-segment tags.

Spans arriving from different machines have different monotonic clocks;
ordering within a parent therefore uses ``(segment, start)`` — stable
and deterministic, not wall-clock-comparable across segments (the span
*structure* is the cross-process contract, durations are per-segment
truth).

:class:`TraceSink` is the on-disk side: one JSONL file per trace id
under a directory, oldest traces evicted past ``max_traces``. The files
it writes are exactly what ``repro trace show --distributed`` renders
and ``repro trace fetch`` downloads.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

from ..errors import ReproError
from .tracer import Span

__all__ = [
    "segment_spans",
    "merge_segments",
    "assemble",
    "render_distributed",
    "TraceSink",
    "load_distributed_trace",
]


def segment_spans(spans: Iterable[Span], segment: str) -> list[dict[str, Any]]:
    """Serialize one process's spans, tagging each with its segment name."""
    out = []
    for span in spans:
        data = span.to_dict()
        data["segment"] = segment
        out.append(data)
    return out


def merge_segments(*segments: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Concatenate segment lists, de-duplicating on (segment, ref/id).

    A worker polled twice (or a router retrying collection) must not
    double every span.
    """
    seen: set[tuple] = set()
    merged: list[dict[str, Any]] = []
    for segment in segments:
        for data in segment:
            key = (data.get("segment"), data.get("ref") or data.get("id"))
            if key in seen:
                continue
            seen.add(key)
            merged.append(data)
    return merged


def _global_id(data: dict[str, Any]) -> str:
    ref = data.get("ref")
    if ref is not None:
        return ref
    return f"{data.get('segment', 'local')}:{data.get('id')}"


def _global_parent(data: dict[str, Any]) -> str | None:
    parent_ref = data.get("parent_ref")
    if parent_ref is not None:
        return parent_ref
    parent = data.get("parent")
    if parent is None:
        return None
    return f"{data.get('segment', 'local')}:{parent}"


def assemble(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Build the cross-process tree; returns the list of root nodes.

    Each node is the span dict plus a ``children`` list. A span whose
    parent is not in the set (the far end never shipped it, or it was
    evicted) becomes a root — the tree degrades to a forest instead of
    dropping data.
    """
    nodes: dict[str, dict[str, Any]] = {}
    for data in spans:
        node = dict(data)
        node["children"] = []
        nodes[_global_id(node)] = node
    roots: list[dict[str, Any]] = []
    for node in nodes.values():
        parent = _global_parent(node)
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)

    def order(group: list[dict[str, Any]]) -> None:
        group.sort(key=lambda n: (str(n.get("segment", "")),
                                  n.get("start") or 0.0))
        for node in group:
            order(node["children"])

    order(roots)
    return roots


def _duration(data: dict[str, Any]) -> str:
    start, end = data.get("start"), data.get("end")
    if start is None or end is None:
        return "open"
    seconds = end - start
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_distributed(spans: list[dict[str, Any]]) -> str:
    """The assembled cross-process tree as indented text.

    ::

        http.verify @router  [12.53ms] status=200
          http.verify @w1  [11.90ms] status=200
            service.verify.batch @w1  [11.20ms] waiters=1
              parallel.verify_batch @w1  [10.80ms] jobs=4
    """
    if not spans:
        return "(no spans)"
    lines: list[str] = []

    def visit(node: dict[str, Any], depth: int) -> None:
        attrs = node.get("attrs") or {}
        rendered_attrs = "".join(
            f" {key}={value!r}" for key, value in attrs.items()
        )
        lines.append(
            f"{'  ' * depth}{node.get('name')} @{node.get('segment', '?')}"
            f"  [{_duration(node)}]{rendered_attrs}"
        )
        for child in node["children"]:
            visit(child, depth + 1)

    for root in assemble(spans):
        visit(root, 0)
    return "\n".join(lines)


class TraceSink:
    """On-disk JSONL store of assembled distributed traces.

    One file per trace id (``<trace_id>.trace.jsonl``), one span record
    per line. ``max_traces`` bounds the directory: past it, the
    oldest-written traces are evicted. Writes are atomic
    (tempfile + rename), matching the compile cache's crash posture.
    """

    SUFFIX = ".trace.jsonl"

    def __init__(self, directory: str | Path, max_traces: int = 256):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_traces = max_traces

    def _path(self, trace_id: str) -> Path:
        if not trace_id or any(c not in "0123456789abcdef" for c in trace_id):
            raise ReproError(f"invalid trace id {trace_id!r}")
        return self.directory / f"{trace_id}{self.SUFFIX}"

    def write(self, trace_id: str, spans: list[dict[str, Any]]) -> Path:
        path = self._path(trace_id)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for data in spans:
                    handle.write(json.dumps(data, default=repr) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._evict()
        return path

    def read(self, trace_id: str) -> list[dict[str, Any]]:
        path = self._path(trace_id)
        if not path.exists():
            raise ReproError(f"no stored trace {trace_id!r}")
        return load_distributed_trace(path)

    def trace_ids(self) -> list[str]:
        """Stored trace ids, oldest write first."""
        entries = []
        for path in self.directory.glob(f"*{self.SUFFIX}"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # raced an eviction
        entries.sort()
        return [p.name[: -len(self.SUFFIX)] for _, p in entries]

    def _evict(self) -> None:
        ids = self.trace_ids()
        for trace_id in ids[: max(0, len(ids) - self.max_traces)]:
            try:
                self._path(trace_id).unlink()
            except OSError:
                pass


def load_distributed_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a distributed-trace JSONL file (the sink / ``trace fetch``
    format: one span object per line, each carrying ``segment``)."""
    spans: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ReproError(f"malformed span line in {path}")
            spans.append(data)
    return spans
