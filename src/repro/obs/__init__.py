"""Zero-dependency observability: tracing, metrics, and a flight recorder.

The paper's pipeline — translate → ``Apply(C, G)`` → ``Excise`` →
schedule/execute — runs end to end inside this library; this package makes
it inspectable at run time without changing its semantics:

* :mod:`~repro.obs.tracer` — hierarchical context-manager **spans** with
  monotonic timings and JSONL export, instrumented through ``translate``,
  ``apply``, ``excise``, every scheduler step, and every engine attempt;
* :mod:`~repro.obs.metrics` — a **registry** of counters, gauges, and
  p50/p95/p99 histograms fed by the compiler (goal sizes before/after
  Apply and Excise, knots excised, the Theorem 5.11 ``N``/``d``/ratio) and
  the engine (attempts, retries exhausted, reroutes, snapshots, rollbacks,
  per-activity latency);
* :mod:`~repro.obs.recorder` — a **flight recorder** journaling every
  scheduler decision (eligible set, chosen event, verdict, database
  digest) into a replayable JSONL trace, with record / pretty-print /
  diff / deterministic replay on the ``repro trace`` command line.

Everything hangs off one :class:`~repro.obs.config.Observability` object;
the default (:data:`~repro.obs.config.OBS_DISABLED`) is no-op-cheap.
"""

from .config import OBS_DISABLED, Observability
from .context import (
    TRACE_HEADER,
    IdSource,
    TraceContext,
    current_trace_context,
    format_trace_header,
    parse_trace_header,
    reset_trace_context,
    set_trace_context,
    use_trace_context,
)
from .distributed import (
    TraceSink,
    assemble,
    load_distributed_trace,
    merge_segments,
    render_distributed,
    segment_spans,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
    prometheus_name,
    render_federated_prometheus,
    sum_scrapes,
)
from .slo import DEFAULT_OBJECTIVES, SLObjective, SLOMonitor
from .recorder import (
    Decision,
    FlightRecorder,
    ReplayDivergenceError,
    ReplayResult,
    ReplayStrategy,
    Trace,
    diff_traces,
    read_trace,
    render_trace,
    replay_trace,
    write_trace,
)
from .tracer import NullTracer, Span, Tracer, render_spans

__all__ = [
    "Observability",
    "OBS_DISABLED",
    "Tracer",
    "NullTracer",
    "Span",
    "render_spans",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "Decision",
    "Trace",
    "write_trace",
    "read_trace",
    "render_trace",
    "diff_traces",
    "replay_trace",
    "ReplayStrategy",
    "ReplayResult",
    "ReplayDivergenceError",
    # Distributed tracing
    "TRACE_HEADER",
    "TraceContext",
    "IdSource",
    "format_trace_header",
    "parse_trace_header",
    "current_trace_context",
    "set_trace_context",
    "reset_trace_context",
    "use_trace_context",
    "TraceSink",
    "segment_spans",
    "merge_segments",
    "assemble",
    "render_distributed",
    "load_distributed_trace",
    # Exposition / federation
    "prometheus_name",
    "escape_label_value",
    "format_labels",
    "render_federated_prometheus",
    "sum_scrapes",
    # SLOs
    "SLObjective",
    "SLOMonitor",
    "DEFAULT_OBJECTIVES",
]
