"""The flight recorder: a replayable journal of every scheduler decision.

While the engine runs, the recorder journals each drive-loop decision —
the step index, the eligible set offered to the strategy, the chosen
event, the oracle's verdict (``ok`` or the failure class that killed the
attempt permanently), and a digest of the database after the step — plus
every choice-branch failover taken. Together with a header carrying the
workflow specification, the chaos fault plan, and the retry policies, the
journal is *replayable*: :func:`replay_trace` recompiles the workflow,
rebuilds the deterministic fault plan, and re-drives the engine with a
strategy that re-picks the recorded choices, then checks that the
schedule, final database digest, and resilience counters all match.

Trace files are JSONL: one ``header`` line, then ``span`` / ``decision`` /
``reroute`` lines in order, then one ``summary`` line. ``repro trace``
records, pretty-prints, diffs, and replays them from the command line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, TextIO

from ..analysis.metrics import render_table
from ..errors import ReproError
from .tracer import Span, render_spans

__all__ = [
    "Decision",
    "FlightRecorder",
    "Trace",
    "ReplayDivergenceError",
    "ReplayResult",
    "ReplayStrategy",
    "write_trace",
    "read_trace",
    "render_trace",
    "diff_traces",
    "replay_trace",
]

TRACE_FORMAT = 1


@dataclass(frozen=True)
class Decision:
    """One scheduler decision: what was offered, chosen, and how it went."""

    step: int
    eligible: tuple[str, ...]
    chosen: str
    verdict: str = "ok"  # "ok" or "dead:<ExceptionClass>" (permanent failure)
    digest: str = ""     # database digest after the step settled

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "decision",
            "step": self.step,
            "eligible": list(self.eligible),
            "chosen": self.chosen,
            "verdict": self.verdict,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Decision":
        return cls(
            step=data["step"],
            eligible=tuple(data["eligible"]),
            chosen=data["chosen"],
            verdict=data["verdict"],
            digest=data["digest"],
        )


class FlightRecorder:
    """Accumulates decisions and reroutes during one engine run."""

    def __init__(self) -> None:
        self.decisions: list[Decision] = []
        self.reroutes: list[dict[str, Any]] = []

    def record(self, step: int, eligible: frozenset[str], chosen: str,
               verdict: str, digest: str) -> None:
        self.decisions.append(
            Decision(step, tuple(sorted(eligible)), chosen, verdict, digest)
        )

    def record_reroute(self, failed_event: str, resumed_depth: int,
                       discarded: tuple[str, ...]) -> None:
        self.reroutes.append({
            "kind": "reroute",
            "failed_event": failed_event,
            "resumed_depth": resumed_depth,
            "discarded": list(discarded),
            "at_decision": len(self.decisions),
        })


@dataclass
class Trace:
    """A parsed trace file."""

    header: dict[str, Any]
    spans: list[Span] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    reroutes: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    @property
    def schedule(self) -> tuple[str, ...]:
        return tuple(self.summary.get("schedule", ()))

    @property
    def digest(self) -> str:
        return self.summary.get("digest", "")


def write_trace(
    fp: TextIO,
    header: dict[str, Any],
    spans: list[Span] | tuple[Span, ...] = (),
    recorder: FlightRecorder | None = None,
    summary: dict[str, Any] | None = None,
) -> None:
    """Serialize one run as JSONL (header, spans, journal, summary)."""
    head = {"kind": "header", "format": TRACE_FORMAT}
    head.update(header)
    fp.write(json.dumps(head, default=repr) + "\n")
    for span in spans:
        fp.write(json.dumps(span.to_dict(), default=repr) + "\n")
    if recorder is not None:
        for decision in recorder.decisions:
            fp.write(json.dumps(decision.to_dict()) + "\n")
        for reroute in recorder.reroutes:
            fp.write(json.dumps(reroute) + "\n")
    if summary is not None:
        tail = {"kind": "summary"}
        tail.update(summary)
        fp.write(json.dumps(tail, default=repr) + "\n")


def read_trace(fp: TextIO) -> Trace:
    """Parse a trace written by :func:`write_trace`."""
    header: dict[str, Any] | None = None
    spans: list[Span] = []
    decisions: list[Decision] = []
    reroutes: list[dict[str, Any]] = []
    summary: dict[str, Any] = {}
    for line in fp:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        kind = data.get("kind")
        if kind == "header":
            header = data
        elif kind == "span":
            spans.append(Span.from_dict(data))
        elif kind == "decision":
            decisions.append(Decision.from_dict(data))
        elif kind == "reroute":
            reroutes.append(data)
        elif kind == "summary":
            summary = data
        else:
            raise ReproError(f"unknown trace record kind {kind!r}")
    if header is None:
        raise ReproError("trace file has no header record")
    return Trace(header=header, spans=spans, decisions=decisions,
                 reroutes=reroutes, summary=summary)


def render_trace(trace: Trace) -> str:
    """Pretty-print a trace: header, span tree, decision journal, summary."""
    lines: list[str] = []
    header = {k: v for k, v in trace.header.items()
              if k not in ("kind", "spec")}
    lines.append("trace header: " + json.dumps(header, default=repr))
    if trace.spans:
        lines.append("")
        lines.append("spans:")
        lines.append(render_spans(trace.spans))
    if trace.decisions:
        reroutes_at = {r["at_decision"]: r for r in trace.reroutes}
        rows: list[list] = []
        for index, decision in enumerate(trace.decisions):
            rows.append([
                decision.step,
                decision.chosen,
                "{" + ",".join(decision.eligible) + "}",
                decision.verdict,
                decision.digest[:12],
            ])
            reroute = reroutes_at.get(index + 1)
            if reroute is not None:
                discarded = ",".join(reroute["discarded"]) or "-"
                rows.append([
                    "", "-> reroute",
                    f"resumed at depth {reroute['resumed_depth']}",
                    "discarded " + discarded,
                    "",
                ])
        lines.append("")
        lines.append(render_table(
            "flight recorder: scheduler decisions",
            ["step", "chosen", "eligible", "verdict", "db digest"],
            rows,
        ))
    if trace.summary:
        summary = {k: v for k, v in trace.summary.items() if k != "kind"}
        lines.append("")
        lines.append("summary: " + json.dumps(summary, default=repr))
    return "\n".join(lines)


def diff_traces(a: Trace, b: Trace) -> list[str]:
    """Human-readable differences between two traces ([] when equivalent).

    Compares the decision journals step by step, then the final schedule
    and database digest — the replay-identity criteria. Spans and timings
    are deliberately ignored: two runs of the same workflow are *the same
    run* even when their wall-clock profiles differ.
    """
    differences: list[str] = []
    for index, (da, db_) in enumerate(zip(a.decisions, b.decisions)):
        for attr in ("chosen", "eligible", "verdict", "digest"):
            va, vb = getattr(da, attr), getattr(db_, attr)
            if va != vb:
                differences.append(
                    f"decision {index}: {attr} differs: {va!r} vs {vb!r}"
                )
    if len(a.decisions) != len(b.decisions):
        differences.append(
            f"decision count differs: {len(a.decisions)} vs {len(b.decisions)}"
        )
    if a.schedule != b.schedule:
        differences.append(
            f"schedule differs: {' -> '.join(a.schedule)} vs "
            f"{' -> '.join(b.schedule)}"
        )
    if a.digest != b.digest:
        differences.append(f"final digest differs: {a.digest} vs {b.digest}")
    return differences


# -- replay --------------------------------------------------------------------


class ReplayDivergenceError(ReproError):
    """A replayed run diverged from its recorded trace."""

    def __init__(self, step: int, message: str):
        self.step = step
        super().__init__(f"replay diverged at decision {step}: {message}")


class ReplayStrategy:
    """An engine strategy that re-picks the recorded decisions in order.

    The surrounding determinism (seeded chaos plan, virtual clock,
    compiled goal) makes the engine consult the strategy in exactly the
    recorded sequence; any mismatch between the offered eligible set and
    the recorded one is a divergence, reported with the step index.
    """

    def __init__(self, decisions: list[Decision]):
        self._decisions = decisions
        self._cursor = 0

    def __call__(self, eligible: frozenset[str], db) -> str:
        if self._cursor >= len(self._decisions):
            raise ReplayDivergenceError(
                self._cursor, "engine asked for more decisions than recorded"
            )
        decision = self._decisions[self._cursor]
        self._cursor += 1
        if frozenset(decision.eligible) != eligible:
            raise ReplayDivergenceError(
                decision.step,
                f"eligible set {sorted(eligible)} does not match recorded "
                f"{list(decision.eligible)}",
            )
        return decision.chosen

    @property
    def exhausted(self) -> bool:
        return self._cursor == len(self._decisions)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a trace against a freshly-built engine."""

    schedule: tuple[str, ...]
    digest: str
    mismatches: tuple[str, ...]
    report: Any = None

    @property
    def matches(self) -> bool:
        return not self.mismatches


def replay_trace(trace: Trace) -> ReplayResult:
    """Re-execute a recorded run and verify it reproduces the trace.

    The header must carry the specification source (``spec``); the chaos
    plan, retry policies, and seed are rebuilt from it, the engine is
    driven by a :class:`ReplayStrategy`, and the resulting schedule, final
    database digest, and resilience counters are compared with the
    recorded summary.
    """
    # Imported lazily: the engine itself imports this package's config.
    from ..core.engine import WorkflowEngine
    from ..core.resilience import ChaosOracle, ResiliencePolicy, VirtualClock
    from ..db.oracle import TransitionOracle
    from ..spec import parse_specification

    spec_text = trace.header.get("spec")
    if not spec_text:
        raise ReproError("trace header carries no specification source")

    # Distributed-id interop: a trace recorded with a seeded IdSource
    # (header ``ids_seed``) is replayed under an identically-seeded
    # tracer, so the replay mints the *same* trace/span ids — and when
    # the header asks for it (``span_check``), the whole span tree is
    # part of the reproducibility contract.
    ids_seed = trace.header.get("ids_seed")
    obs = None
    if ids_seed is not None:
        from .config import Observability
        from .context import IdSource

        obs = Observability.enabled(
            trace=True, metrics=False, record=False,
            ids=IdSource(seed=ids_seed),
        )
    compiled = parse_specification(spec_text).compile(obs=obs)

    clock = VirtualClock()
    oracle: TransitionOracle | ChaosOracle = TransitionOracle()
    plan = trace.header.get("chaos")
    if plan:
        oracle = ChaosOracle.from_plan(plan, inner=oracle, clock=clock)
    policies = ResiliencePolicy.from_dict(trace.header.get("policies") or {})

    strategy = ReplayStrategy(trace.decisions)
    engine = WorkflowEngine(compiled, oracle=oracle, policies=policies,
                            clock=clock, strategy=strategy, obs=obs)
    report = engine.run()

    mismatches: list[str] = []
    if obs is not None and trace.header.get("span_check"):
        recorded_tree = [
            (s.name, s.ref, s.parent_ref) for s in trace.spans
        ]
        replayed_tree = [
            (s.name, s.ref, s.parent_ref) for s in obs.tracer.spans
        ]
        if recorded_tree != replayed_tree:
            mismatches.append(
                f"span tree: replay produced {len(replayed_tree)} spans "
                f"diverging from the {len(recorded_tree)} recorded"
            )
    if report.schedule != trace.schedule:
        mismatches.append(
            f"schedule: replay {' -> '.join(report.schedule)} vs recorded "
            f"{' -> '.join(trace.schedule)}"
        )
    digest = report.database.digest()
    if trace.digest and digest != trace.digest:
        mismatches.append(f"digest: replay {digest} vs recorded {trace.digest}")
    recorded = trace.summary
    for key, actual in [
        ("attempts", dict(report.attempts)),
        ("failures", len(report.failures)),
        ("reroutes", len(report.reroutes)),
    ]:
        expected = recorded.get(key)
        if expected is not None and expected != actual:
            mismatches.append(f"{key}: replay {actual!r} vs recorded {expected!r}")
    if not strategy.exhausted:
        mismatches.append("replay consumed fewer decisions than recorded")
    return ReplayResult(
        schedule=report.schedule,
        digest=digest,
        mismatches=tuple(mismatches),
        report=report,
    )
