"""The one switch for the whole observability subsystem.

An :class:`Observability` object bundles the three sinks — tracer, metrics
registry, flight recorder — and is threaded through
:func:`~repro.core.compiler.compile_workflow`,
:class:`~repro.core.engine.WorkflowEngine`, and the CLI. The default,
:data:`OBS_DISABLED`, carries a :class:`~repro.obs.tracer.NullTracer` and
no registry/recorder; instrumented code checks :attr:`Observability.active`
once per run and skips every hook, which keeps the happy path within the
3% budget gated by ``benchmarks/bench_observability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import IdSource
from .metrics import MetricsRegistry
from .recorder import FlightRecorder
from .tracer import NullTracer, Tracer

__all__ = ["Observability", "OBS_DISABLED"]


@dataclass
class Observability:
    """Configuration of the tracing/metrics/flight-recorder sinks.

    ``active`` is derived once at construction: instrumented hot loops read
    it a single time and take the uninstrumented branch when everything is
    off. (Benchmarks override it to measure the cost of the hooks
    themselves with null sinks.)
    """

    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    metrics: MetricsRegistry | None = None
    recorder: FlightRecorder | None = None

    def __post_init__(self) -> None:
        self.active = (
            self.tracer.enabled
            or self.metrics is not None
            or self.recorder is not None
        )

    @classmethod
    def enabled(cls, trace: bool = True, metrics: bool = True,
                record: bool = True, *, ids: "IdSource | None" = None,
                segment: str = "local",
                max_spans: int | None = None) -> "Observability":
        """An all-on (or selectively-on) configuration.

        ``ids`` switches the tracer into distributed mode (every span
        gets a ``trace_id``/``ref``/``parent_ref`` from the injectable
        :class:`~repro.obs.context.IdSource` — seed it and chaos runs
        replay with identical span ids); ``segment`` names this process
        in cross-process trees; ``max_spans`` bounds retention for
        long-running daemons.
        """
        return cls(
            tracer=(Tracer(ids=ids, segment=segment, max_spans=max_spans)
                    if trace else NullTracer()),
            metrics=MetricsRegistry() if metrics else None,
            recorder=FlightRecorder() if record else None,
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The no-op configuration (what everything defaults to)."""
        return OBS_DISABLED


#: Shared default: all sinks off. Safe to share — it holds no state.
OBS_DISABLED = Observability()
