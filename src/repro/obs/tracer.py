"""Hierarchical tracing spans for the compile/execute pipeline.

A :class:`Tracer` hands out context-manager *spans*: named, monotonic-clock
timed intervals that nest (a span opened while another is active becomes
its child). The finished spans form a tree — one ``compile`` span with
``translate``/``apply``/``excise`` children, one ``engine.run`` span with a
``engine.step`` child per scheduler decision — exportable as JSONL and
renderable as an indented tree with per-phase timings.

The default everywhere is :class:`NullTracer`: its :meth:`~NullTracer.span`
returns a shared no-op context manager, so instrumented code pays one
attribute lookup and one call per hook when tracing is off (benchmarked
against a 3% budget in ``benchmarks/bench_observability.py``).

**Distributed mode.** A tracer constructed with an
:class:`~repro.obs.context.IdSource` additionally stamps every span with
globally-meaningful identity: a 128-bit ``trace_id`` (inherited from the
parent span, adopted from an explicit remote :class:`~repro.obs.context.
TraceContext`, or freshly minted for a root), a 64-bit ``ref`` naming
the span across processes, and a ``parent_ref`` pointing at its parent —
local or remote. Those three fields are what
:mod:`repro.obs.distributed` reassembles a cross-process tree from; the
local integer ``span_id``/``parent_id`` pair stays exactly as before, so
single-process traces and their JSONL format are unchanged.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from .context import IdSource, TraceContext

__all__ = ["Span", "Tracer", "NullTracer", "render_spans"]


@dataclass
class Span:
    """One timed, named interval in the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    # Distributed identity (set only by a tracer with an IdSource):
    trace_id: str | None = None
    ref: str | None = None          # this span's cross-process id
    parent_ref: str | None = None   # parent's ref — local or remote

    @property
    def duration(self) -> float:
        """Seconds from start to end (0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after the span was opened."""
        self.attrs.update(attrs)

    @property
    def context(self) -> TraceContext | None:
        """This span as a propagable context (None without distributed ids)."""
        if self.trace_id is None or self.ref is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=self.ref)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }
        # Emitted only in distributed mode: plain traces stay byte-stable.
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.ref is not None:
            data["ref"] = self.ref
        if self.parent_ref is not None:
            data["parent_ref"] = self.parent_ref
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            span_id=data["id"],
            parent_id=data["parent"],
            name=data["name"],
            start=data["start"],
            end=data["end"],
            attrs=dict(data.get("attrs") or {}),
            trace_id=data.get("trace_id"),
            ref=data.get("ref"),
            parent_ref=data.get("parent_ref"),
        )


class _ActiveSpan:
    """The context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span, exc)
        return False

    def annotate(self, **attrs: Any) -> None:
        self.span.annotate(**attrs)


class _NullSpan:
    """Shared do-nothing span: the hot-path cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of timed spans.

    >>> tracer = Tracer(time_source=iter(range(100)).__next__)
    >>> with tracer.span("compile"):
    ...     with tracer.span("apply"):
    ...         pass
    >>> [(s.name, s.parent_id) for s in tracer.spans]
    [('compile', None), ('apply', 0)]
    """

    enabled = True

    def __init__(self, time_source: Callable[[], float] = time.perf_counter,
                 *, ids: IdSource | None = None, segment: str = "local",
                 max_spans: int | None = None):
        self._time = time_source
        self._stack: list[Span] = []
        self.spans: list[Span] = []  # in start order; finished spans have `end`
        self._next_id = 0
        self.ids = ids
        self.segment = segment
        self.max_spans = max_spans

    def span(self, name: str, *, ctx: TraceContext | None = None,
             root: bool = False, **attrs: Any) -> _ActiveSpan:
        """Open a child span of the currently-active span.

        ``ctx`` — a remote parent (e.g. parsed off an ``X-Repro-Trace``
        header) — overrides the local stack for the span's *distributed*
        parentage; the local parent/child ids are recorded regardless.
        Only meaningful on a tracer holding an :class:`IdSource`.

        ``root=True`` ignores the local stack entirely: the span is a
        top-level request boundary (parented only by ``ctx``, if any).
        The async servers need this — their tracer is shared by every
        task on the event loop, so an unrelated request landing while
        another is awaiting would otherwise inherit that request's span
        (and its trace id) off the stack.
        """
        parent_span = (None if root
                       else self._stack[-1] if self._stack else None)
        parent = parent_span.span_id if parent_span is not None else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            start=self._time(),
            attrs=attrs,
        )
        if self.ids is not None:
            if ctx is not None:
                span.trace_id = ctx.trace_id
                span.parent_ref = ctx.span_id
            elif parent_span is not None and parent_span.trace_id is not None:
                span.trace_id = parent_span.trace_id
                span.parent_ref = parent_span.ref
            else:
                span.trace_id = self.ids.trace_id()
            span.ref = self.ids.span_id()
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        if self.max_spans is not None and len(self.spans) > self.max_spans:
            self._evict()
        return _ActiveSpan(self, span)

    def _evict(self) -> None:
        """Drop the oldest *finished* spans down to the bound.

        Open spans are kept no matter how old: they are still on the
        stack and their ``end`` is pending. A long-running daemon with
        ``max_spans`` set therefore holds a sliding window of recent
        request trees instead of growing without bound.
        """
        excess = len(self.spans) - self.max_spans
        if excess <= 0:
            return
        keep: list[Span] = []
        dropped = 0
        for span in self.spans:
            if dropped < excess and span.end is not None:
                dropped += 1
                continue
            keep.append(span)
        self.spans = keep

    def spans_for(self, trace_id: str) -> list[Span]:
        """Every retained span stamped with ``trace_id``, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids among retained spans, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans:
            if span.trace_id is not None:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def _finish(self, span: Span, exc: BaseException | None) -> None:
        span.end = self._time()
        if exc is not None:
            span.attrs.setdefault("error", type(exc).__name__)
        # Unwind past abandoned children (an exception may skip __exit__
        # ordering when spans are closed out of band).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def export_jsonl(self, fp: TextIO) -> None:
        """Write one JSON object per span, in start order."""
        for span in self.spans:
            fp.write(json.dumps(span.to_dict(), default=repr))
            fp.write("\n")

    def render(self) -> str:
        """The span tree with per-phase timings (see :func:`render_spans`)."""
        return render_spans(self.spans)


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    ``span`` returns a shared context manager, so instrumented code runs
    with near-zero overhead when observability is off.
    """

    enabled = False
    spans: tuple[Span, ...] = ()
    ids = None
    segment = "local"

    def span(self, name: str, *, ctx: TraceContext | None = None,
             root: bool = False, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans_for(self, trace_id: str) -> list[Span]:
        return []

    def trace_ids(self) -> list[str]:
        return []

    def to_dicts(self) -> list[dict[str, Any]]:
        return []

    def export_jsonl(self, fp: TextIO) -> None:
        pass

    def render(self) -> str:
        return ""


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_spans(spans: list[Span] | tuple[Span, ...]) -> str:
    """Render spans as an indented tree with durations and attributes.

    Repeated runs of sibling spans with the same name (e.g. hundreds of
    ``engine.step`` spans) are collapsed into one line with a count and the
    summed duration, keeping the output readable for long executions.
    """
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def visit(parent: int | None, depth: int) -> None:
        group = children.get(parent, [])
        index = 0
        while index < len(group):
            span = group[index]
            run = [span]
            while (
                index + len(run) < len(group)
                and group[index + len(run)].name == span.name
            ):
                run.append(group[index + len(run)])
            indent = "  " * depth
            if len(run) > 1:
                total = sum(s.duration for s in run)
                lines.append(
                    f"{indent}{span.name} x{len(run)}"
                    f"  [{_format_duration(total)} total]"
                )
            else:
                attrs = "".join(
                    f" {key}={value!r}" for key, value in span.attrs.items()
                )
                lines.append(
                    f"{indent}{span.name}  [{_format_duration(span.duration)}]{attrs}"
                )
                visit(span.span_id, depth + 1)
            index += len(run)

    visit(None, 0)
    return "\n".join(lines)
