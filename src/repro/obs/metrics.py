"""Counters, gauges, and histograms for the compiler and the engine.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (attempts, reroutes,
  snapshots, rollbacks, backoff seconds slept);
* :class:`Gauge` — last-written values (goal sizes before/after Apply and
  Excise, the constraint count ``N`` and arity ``d``, the Theorem 5.11
  ratio recorded on every compile);
* :class:`Histogram` — distributions with p50/p95/p99 summaries
  (per-activity latencies), percentiles via
  :func:`repro.analysis.metrics.percentile`.

The registry renders itself through the benchmark harness's
:func:`repro.analysis.metrics.render_table`, so ``repro run --metrics``
prints the same ASCII tables as the paper-validation benchmarks.
"""

from __future__ import annotations

import re
from typing import Any

from ..analysis.metrics import percentile, render_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_name",
    "escape_label_value",
    "format_labels",
    "render_federated_prometheus",
    "sum_scrapes",
]

# Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; registry names
# use dots ("compile.cache_hits"), which map to underscores.
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Exemplars retained per histogram (the slowest observations).
MAX_EXEMPLARS = 8


def prometheus_name(name: str) -> str:
    """A registry name as a valid Prometheus metric name.

    Dots become underscores, every other illegal character is squashed
    to ``_``, and a leading digit (illegal as the *first* character even
    though digits are fine later) gets an underscore prefix.
    """
    metric = _PROM_SANITIZE.sub("_", name.replace(".", "_"))
    if not metric:
        return "_"
    if metric[0].isdigit():
        metric = "_" + metric
    return metric


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash first,
    then double quotes and newlines."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict[str, str] | None) -> str:
    """``{"worker": "w0"}`` → ``{worker="w0"}`` (sorted; "" when empty)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{prometheus_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A recorded distribution with percentile summaries.

    ``observe(value, exemplar=...)`` optionally tags the observation
    (e.g. the spec key a verification batch was for); the histogram
    retains the :data:`MAX_EXEMPLARS` *largest* tagged observations —
    exactly what "top-k slowest specs" in ``repro top`` reads back.
    """

    __slots__ = ("values", "exemplars")

    def __init__(self) -> None:
        self.values: list[float] = []
        self.exemplars: list[tuple[float, str]] = []  # sorted descending

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.values.append(value)
        if exemplar is not None:
            self.exemplars.append((value, exemplar))
            self.exemplars.sort(key=lambda pair: -pair[0])
            del self.exemplars[MAX_EXEMPLARS:]

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> dict[str, float]:
        """count/total/min/max plus the p50/p95/p99 the tables print."""
        if not self.values:
            return {"count": 0, "total": 0.0}
        out = {
            "count": self.count,
            "total": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        if self.exemplars:
            out["exemplars"] = [[value, label]
                                for value, label in self.exemplars]
        return out


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms.

    >>> metrics = MetricsRegistry()
    >>> metrics.inc("engine.attempts")
    >>> metrics.observe("latency.pay", 0.25)
    >>> metrics.counter("engine.attempts").value
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- write shortcuts (the forms instrumented code calls) -----------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                exemplar: str | None = None) -> None:
        self.histogram(name).observe(value, exemplar=exemplar)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """ASCII tables of every instrument, benchmark-report style."""
        sections: list[str] = []
        scalars = [[name, counter.value] for name, counter in
                   sorted(self._counters.items())]
        scalars += [[name, gauge.value] for name, gauge in
                    sorted(self._gauges.items())]
        if scalars:
            sections.append(
                render_table("metrics: counters and gauges",
                             ["name", "value"], scalars)
            )
        if self._histograms:
            rows = []
            for name, histogram in sorted(self._histograms.items()):
                summary = histogram.summary()
                if not summary["count"]:
                    continue
                rows.append([
                    name, summary["count"], summary["total"], summary["min"],
                    summary["p50"], summary["p95"], summary["p99"],
                    summary["max"],
                ])
            if rows:
                sections.append(
                    render_table(
                        "metrics: histograms",
                        ["name", "count", "total", "min", "p50", "p95",
                         "p99", "max"],
                        rows,
                    )
                )
        return "\n\n".join(sections)

    def render_prometheus(self, labels: dict[str, str] | None = None) -> str:
        """Text exposition in the Prometheus line format.

        Dotted registry names become underscore-separated metric names
        (``service.verify.batches`` → ``service_verify_batches``), with
        :func:`prometheus_name` fixing anything else the format rejects.
        Histograms export under the summary convention: one ``# TYPE``
        line on the *base* name, then ``_count``/``_sum`` series (both
        present even with zero samples) and quantile series. ``labels``
        are attached to every series — the federated endpoint renders
        each worker's scrape with ``worker="wN"`` through this hook.
        """
        return "".join(
            _prometheus_lines(self.to_dict(), labels=labels or {})
        )


def _prometheus_lines(snapshot: dict[str, Any],
                      labels: dict[str, str],
                      *, type_lines: bool = True) -> list[str]:
    """Exposition lines (each newline-terminated) for a ``to_dict`` dump."""
    lines: list[str] = []
    label_str = format_labels(labels)

    def emit(name: str, value: float | None, extra: str = "",
             kind: str | None = None) -> None:
        if value is None:
            return
        metric = prometheus_name(name)
        if kind is not None and type_lines:
            lines.append(f"# TYPE {metric} {kind}\n")
        rendered = repr(float(value)) if isinstance(value, float) else value
        lines.append(f"{metric}{extra or label_str} {rendered}\n")

    for name, value in sorted((snapshot.get("counters") or {}).items()):
        emit(name, value, kind="counter")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        emit(name, value, kind="gauge")
    for name, summary in sorted((snapshot.get("histograms") or {}).items()):
        if type_lines:
            lines.append(f"# TYPE {prometheus_name(name)} summary\n")
        emit(name + "_count", summary.get("count", 0))
        emit(name + "_sum", summary.get("total", 0.0))
        if summary.get("count"):
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                if key not in summary:
                    continue
                quantile_labels = format_labels(
                    {**labels, "quantile": str(q)}
                )
                emit(name, summary[key], extra=quantile_labels)
    return lines


def render_federated_prometheus(
    workers: dict[str, dict[str, Any]],
    totals: dict[str, Any] | None = None,
    router: dict[str, Any] | None = None,
) -> str:
    """One exposition for a whole fleet.

    ``workers`` maps worker id → that worker's ``to_dict`` scrape; every
    series is emitted with a ``worker="<id>"`` label. ``totals`` (the
    cross-worker sums computed by :func:`sum_scrapes`) is emitted
    unlabeled under the same metric names, so a counter's fleet total
    sits next to its per-worker breakdown. ``router`` — the router's own
    registry — is emitted with ``worker="router"``.
    """
    lines: list[str] = []
    if totals:
        lines += _prometheus_lines(totals, labels={})
    if router:
        # TYPE lines only once per metric name: the totals section owns
        # them; labeled sections emit bare series.
        lines += _prometheus_lines(router, labels={"worker": "router"},
                                   type_lines=False)
    for worker_id in sorted(workers):
        lines += _prometheus_lines(workers[worker_id],
                                   labels={"worker": worker_id},
                                   type_lines=False)
    return "".join(lines)


def sum_scrapes(scrapes: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Cross-worker totals of ``to_dict`` scrapes, in sorted-key order.

    Counters and histogram count/sum add (in deterministic worker-id
    order, so the totals are bit-for-bit the sum of the parts — the CI
    gate); gauges and quantiles do not meaningfully add and are left to
    the per-worker series.
    """
    counters: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for worker_id in sorted(scrapes):
        scrape = scrapes[worker_id]
        for name, value in (scrape.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, summary in (scrape.get("histograms") or {}).items():
            merged = histograms.setdefault(name, {"count": 0, "total": 0.0})
            merged["count"] += summary.get("count", 0)
            merged["total"] += summary.get("total", 0.0)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {},
        "histograms": dict(sorted(histograms.items())),
    }
