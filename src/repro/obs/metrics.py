"""Counters, gauges, and histograms for the compiler and the engine.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (attempts, reroutes,
  snapshots, rollbacks, backoff seconds slept);
* :class:`Gauge` — last-written values (goal sizes before/after Apply and
  Excise, the constraint count ``N`` and arity ``d``, the Theorem 5.11
  ratio recorded on every compile);
* :class:`Histogram` — distributions with p50/p95/p99 summaries
  (per-activity latencies), percentiles via
  :func:`repro.analysis.metrics.percentile`.

The registry renders itself through the benchmark harness's
:func:`repro.analysis.metrics.render_table`, so ``repro run --metrics``
prints the same ASCII tables as the paper-validation benchmarks.
"""

from __future__ import annotations

import re
from typing import Any

from ..analysis.metrics import percentile, render_table

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

# Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; registry names
# use dots ("compile.cache_hits"), which map to underscores.
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A recorded distribution with percentile summaries."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> dict[str, float]:
        """count/total/min/max plus the p50/p95/p99 the tables print."""
        if not self.values:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms.

    >>> metrics = MetricsRegistry()
    >>> metrics.inc("engine.attempts")
    >>> metrics.observe("latency.pay", 0.25)
    >>> metrics.counter("engine.attempts").value
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- write shortcuts (the forms instrumented code calls) -----------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """ASCII tables of every instrument, benchmark-report style."""
        sections: list[str] = []
        scalars = [[name, counter.value] for name, counter in
                   sorted(self._counters.items())]
        scalars += [[name, gauge.value] for name, gauge in
                    sorted(self._gauges.items())]
        if scalars:
            sections.append(
                render_table("metrics: counters and gauges",
                             ["name", "value"], scalars)
            )
        if self._histograms:
            rows = []
            for name, histogram in sorted(self._histograms.items()):
                summary = histogram.summary()
                if not summary["count"]:
                    continue
                rows.append([
                    name, summary["count"], summary["total"], summary["min"],
                    summary["p50"], summary["p95"], summary["p99"],
                    summary["max"],
                ])
            if rows:
                sections.append(
                    render_table(
                        "metrics: histograms",
                        ["name", "count", "total", "min", "p50", "p95",
                         "p99", "max"],
                        rows,
                    )
                )
        return "\n\n".join(sections)

    def render_prometheus(self) -> str:
        """Text exposition in the Prometheus line format.

        Dotted registry names become underscore-separated metric names
        (``service.verify.batches`` → ``service_verify_batches``).
        Histograms export ``_count``/``_sum`` plus quantile gauges, the
        summary-metric convention.
        """
        lines: list[str] = []

        def emit(name: str, value: float | None,
                 labels: str = "", kind: str | None = None) -> None:
            if value is None:
                return
            metric = _PROM_SANITIZE.sub("_", name.replace(".", "_"))
            if kind is not None:
                lines.append(f"# TYPE {metric} {kind}")
            rendered = repr(float(value)) if isinstance(value, float) else value
            lines.append(f"{metric}{labels} {rendered}")

        for name, counter in sorted(self._counters.items()):
            emit(name, counter.value, kind="counter")
        for name, gauge in sorted(self._gauges.items()):
            emit(name, gauge.value, kind="gauge")
        for name, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            emit(name + "_count", summary["count"], kind="summary")
            emit(name + "_sum", summary["total"])
            if summary["count"]:
                for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    emit(name, summary[key], labels=f'{{quantile="{q}"}}')
        return "\n".join(lines) + ("\n" if lines else "")
