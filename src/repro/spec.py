"""Plain-text workflow specification files.

A human-friendly front door for the command-line interface: one file
declares the goal, sub-workflow rules, global constraints, and named
properties to verify, using the textual syntaxes of
:mod:`repro.ctr.parser` and :mod:`repro.constraints.parser`::

    # order processing
    goal: receive * (credit_check | stock_check) * approve

    rule shipping: pack * send_parcel
    rule shipping: pack * courier

    constraint: precedes(credit_check, approve)
    constraint: never(fraud)

    property checked_first: precedes(credit_check, stock_check)
    property always_approved: happens(approve)

Lines starting with ``#`` (or blank lines) are ignored. Exactly one
``goal:`` line is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constraints.algebra import Constraint
from .constraints.parser import parse_constraint
from .ctr.formulas import Goal
from .ctr.parser import parse_goal
from .ctr.rules import Rule, RuleBase
from .errors import ParseError

__all__ = ["Specification", "parse_specification", "load_specification"]


@dataclass(frozen=True)
class Specification:
    """A parsed workflow specification file."""

    goal: Goal
    constraints: tuple[Constraint, ...] = ()
    rules: RuleBase | None = None
    properties: tuple[tuple[str, Constraint], ...] = field(default=())

    def compile(self, obs=None, cache=None, backend=None):
        """Compile via :func:`repro.core.compiler.compile_workflow`.

        ``cache`` is a :class:`~repro.core.compiler.CompileCache` (or a
        cache directory path); repeated compiles of an unchanged
        specification are then served from disk. ``backend`` selects the
        query engine of the compiled workflow (``"object"`` | ``"kernel"``,
        default ``$REPRO_BACKEND``).
        """
        from .core.compiler import compile_workflow

        return compile_workflow(self.goal, list(self.constraints),
                                rules=self.rules, obs=obs, cache=cache,
                                backend=backend)


def parse_specification(text: str) -> Specification:
    """Parse the specification file format described in the module docstring."""
    goal: Goal | None = None
    constraints: list[Constraint] = []
    rules = RuleBase()
    have_rules = False
    properties: list[tuple[str, Constraint]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keyword, _, rest = line.partition(":")
        keyword = keyword.strip()
        rest = rest.strip()
        try:
            if keyword == "goal":
                if goal is not None:
                    raise ParseError("duplicate goal declaration")
                goal = parse_goal(rest)
            elif keyword == "constraint":
                constraints.append(parse_constraint(rest))
            elif keyword.startswith("rule "):
                head = keyword[len("rule "):].strip()
                rules.add(Rule(head, parse_goal(rest)))
                have_rules = True
            elif keyword.startswith("property "):
                name = keyword[len("property "):].strip()
                properties.append((name, parse_constraint(rest)))
            else:
                raise ParseError(f"unknown declaration {keyword!r}")
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc

    if goal is None:
        raise ParseError("specification declares no goal")
    return Specification(
        goal=goal,
        constraints=tuple(constraints),
        rules=rules if have_rules else None,
        properties=tuple(properties),
    )


def load_specification(path: str) -> Specification:
    """Read and parse a specification file from disk."""
    with open(path, encoding="utf-8") as handle:
        return parse_specification(handle.read())
