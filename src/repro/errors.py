"""Exception hierarchy for the workflow-logic library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. The subclasses mirror the phases of
the pipeline: specification problems (malformed formulas or constraints),
compilation problems (Apply/Excise), and run-time problems (scheduling and
activity execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """A workflow specification (goal, graph, or rule base) is malformed."""


class UniqueEventError(SpecificationError):
    """A goal violates the unique-event property (Definition 3.1).

    The offending event name is stored in :attr:`event`.
    """

    def __init__(self, event: str, message: str | None = None):
        self.event = event
        super().__init__(message or f"event {event!r} may occur more than once in an execution")


class RecursionError_(SpecificationError):
    """A rule base defines a workflow recursively.

    The paper restricts itself to non-iterative workflows (Section 2), so
    recursive concurrent-Horn rules are rejected. Named with a trailing
    underscore to avoid shadowing the builtin ``RecursionError``.
    """

    def __init__(self, cycle: tuple[str, ...]):
        self.cycle = cycle
        super().__init__("recursive sub-workflow definition: " + " -> ".join(cycle))


class ConstraintError(SpecificationError):
    """A temporal constraint is outside the CONSTR algebra (Definition 3.2)."""


class ParseError(SpecificationError):
    """The textual formula/constraint syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CompilationError(ReproError):
    """The Apply/Excise pipeline failed for a reason other than inconsistency."""


class InconsistentWorkflowError(CompilationError):
    """The workflow specification G ∧ C has no legal execution (Theorem 5.8).

    Carries the smallest inconsistent sub-specification found, when
    available, as :attr:`culprit` (mirrors the paper's G_fail feedback).
    """

    def __init__(self, message: str = "workflow is inconsistent with its constraints",
                 culprit=None):
        self.culprit = culprit
        super().__init__(message)


class SchedulingError(ReproError):
    """The scheduler was driven into an impossible position."""


class IneligibleEventError(SchedulingError):
    """An event was fired that is not currently eligible."""

    def __init__(self, event: str, eligible: frozenset[str]):
        self.event = event
        self.eligible = eligible
        shown = ", ".join(sorted(eligible)) or "<none>"
        super().__init__(f"event {event!r} is not eligible; eligible events: {shown}")


class ExecutionError(ReproError):
    """An activity failed at run time inside the workflow engine.

    Carries enough run context to diagnose an aborted run without
    re-executing it: :attr:`schedule` is the partial schedule at failure
    time (the failed activity last) and :attr:`eligible` the set of events
    that were eligible when the failed step was chosen. Both are ``None``
    when the error is raised outside a run (e.g. a manual :meth:`fire`).
    """

    def __init__(
        self,
        activity: str,
        cause: BaseException | None,
        message: str | None = None,
        schedule: tuple[str, ...] | None = None,
        eligible: frozenset[str] | None = None,
    ):
        self.activity = activity
        self.cause = cause
        self.schedule = tuple(schedule) if schedule is not None else None
        self.eligible = frozenset(eligible) if eligible is not None else None
        super().__init__(message or f"activity {activity!r} failed: {cause}")


class RetryExhaustedError(ExecutionError):
    """An activity failed permanently: its retry policy ran out of attempts.

    Raised by the engine after the configured ``max_attempts`` all failed
    and — when raised out of :meth:`WorkflowEngine.run` — after no
    ``∨``-alternative path avoiding the dead event(s) was found either.
    :attr:`dead` lists the permanently-failed events at that point, so the
    message doubles as a reroute diagnostic.
    """

    def __init__(
        self,
        activity: str,
        attempts: int,
        cause: BaseException | None,
        schedule: tuple[str, ...] | None = None,
        eligible: frozenset[str] | None = None,
        dead: frozenset[str] = frozenset(),
    ):
        self.attempts = attempts
        self.dead = frozenset(dead)
        noun = "attempt" if attempts == 1 else "attempts"
        message = f"activity {activity!r} failed permanently after {attempts} {noun}: {cause}"
        if self.dead:
            message += (
                "; no alternative branch avoids the dead event(s) "
                + ", ".join(sorted(self.dead))
            )
        super().__init__(activity, cause, message=message,
                         schedule=schedule, eligible=eligible)


class ActivityTimeoutError(ReproError):
    """An activity attempt overran its per-attempt timeout budget.

    The engine detects the overrun on its (injectable) clock after the
    activity returns — it cannot preempt a running update — and treats the
    attempt as failed, rolling its effects back. The name avoids shadowing
    the builtin ``TimeoutError`` while saying what timed out; the
    historical alias :data:`TimeoutError_` is kept for compatibility and
    is deprecated.
    """

    def __init__(self, activity: str, elapsed: float, timeout: float, attempt: int):
        self.activity = activity
        self.elapsed = elapsed
        self.timeout = timeout
        self.attempt = attempt
        super().__init__(
            f"activity {activity!r} attempt {attempt} took {elapsed:g}s, "
            f"over its {timeout:g}s timeout"
        )


#: Deprecated alias of :class:`ActivityTimeoutError` (pre-1.1 name).
TimeoutError_ = ActivityTimeoutError


class DatabaseError(ReproError):
    """An elementary update or query was invalid for the current state."""
