"""Exception hierarchy for the workflow-logic library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. The subclasses mirror the phases of
the pipeline: specification problems (malformed formulas or constraints),
compilation problems (Apply/Excise), and run-time problems (scheduling and
activity execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """A workflow specification (goal, graph, or rule base) is malformed."""


class UniqueEventError(SpecificationError):
    """A goal violates the unique-event property (Definition 3.1).

    The offending event name is stored in :attr:`event`.
    """

    def __init__(self, event: str, message: str | None = None):
        self.event = event
        super().__init__(message or f"event {event!r} may occur more than once in an execution")


class RecursionError_(SpecificationError):
    """A rule base defines a workflow recursively.

    The paper restricts itself to non-iterative workflows (Section 2), so
    recursive concurrent-Horn rules are rejected. Named with a trailing
    underscore to avoid shadowing the builtin ``RecursionError``.
    """

    def __init__(self, cycle: tuple[str, ...]):
        self.cycle = cycle
        super().__init__("recursive sub-workflow definition: " + " -> ".join(cycle))


class ConstraintError(SpecificationError):
    """A temporal constraint is outside the CONSTR algebra (Definition 3.2)."""


class ParseError(SpecificationError):
    """The textual formula/constraint syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CompilationError(ReproError):
    """The Apply/Excise pipeline failed for a reason other than inconsistency."""


class InconsistentWorkflowError(CompilationError):
    """The workflow specification G ∧ C has no legal execution (Theorem 5.8).

    Carries the smallest inconsistent sub-specification found, when
    available, as :attr:`culprit` (mirrors the paper's G_fail feedback).
    """

    def __init__(self, message: str = "workflow is inconsistent with its constraints",
                 culprit=None):
        self.culprit = culprit
        super().__init__(message)


class SchedulingError(ReproError):
    """The scheduler was driven into an impossible position."""


class IneligibleEventError(SchedulingError):
    """An event was fired that is not currently eligible."""

    def __init__(self, event: str, eligible: frozenset[str]):
        self.event = event
        self.eligible = eligible
        shown = ", ".join(sorted(eligible)) or "<none>"
        super().__init__(f"event {event!r} is not eligible; eligible events: {shown}")


class ExecutionError(ReproError):
    """An activity failed at run time inside the workflow engine."""

    def __init__(self, activity: str, cause: BaseException):
        self.activity = activity
        self.cause = cause
        super().__init__(f"activity {activity!r} failed: {cause}")


class DatabaseError(ReproError):
    """An elementary update or query was invalid for the current state."""
