"""Baselines the paper compares against.

* :mod:`~repro.baselines.passive` — passive event-stream validation
  (Singh ICDE'96 et al.): quadratic per sequence, with worst-case
  exponential external consistency checking;
* :mod:`~repro.baselines.automata` — CONSTR constraints as finite
  automata;
* :mod:`~repro.baselines.modelcheck` — explicit-state model checking of
  the workflow × constraint product (the state-explosion baseline of
  Section 6).
"""

from .automata import ConstraintAutomaton, ProductAutomaton
from .modelcheck import ModelCheckResult, model_check_consistency, model_check_property
from .passive import (
    PassiveScheduler,
    generate_and_test_consistency,
    validate_sequence,
)

__all__ = [
    "PassiveScheduler",
    "validate_sequence",
    "generate_and_test_consistency",
    "ConstraintAutomaton",
    "ProductAutomaton",
    "ModelCheckResult",
    "model_check_consistency",
    "model_check_property",
]
