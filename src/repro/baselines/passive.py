"""Passive scheduling baseline (Singh ICDE'96; Attie et al. VLDB'93).

"Passive schedulers receive sequences of events from an external source …
and validate that these sequences satisfy all global constraints. … To
validate a particular sequence of events, each of these schedulers takes
at least quadratic time in the number of events. However, in passive
scheduling environments, it is left to an unspecified external system to
do consistency checking … The known algorithms for these tasks are
worst-case exponential." (Section 4.)

This module reproduces that complexity envelope faithfully:

* :class:`PassiveScheduler` validates an externally supplied event stream.
  Following the published algorithms, each arriving event triggers a
  re-evaluation of every constraint against the *entire* history, so a
  sequence of ``n`` events costs ``O(N · n²)`` — the quadratic baseline
  the pro-active scheduler is compared against in benchmark E6.
* :func:`generate_and_test_consistency` is the "unspecified external
  system": it searches the exponential space of candidate executions of
  the control flow graph for one satisfying the constraints.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint
from ..constraints.satisfy import PrefixEvaluator, Verdict, satisfies
from ..ctr.formulas import Goal
from ..ctr.machine import Machine
from ..errors import SchedulingError

__all__ = ["PassiveScheduler", "validate_sequence", "generate_and_test_consistency"]


class PassiveScheduler:
    """Validates an event stream against a constraint store, passively.

    >>> from repro.constraints import order
    >>> ps = PassiveScheduler([order("a", "b")])
    >>> ps.accept("b")
    <Verdict.FALSE: 'false'>
    """

    def __init__(self, constraints: list[Constraint]):
        self.constraints = list(constraints)
        self._history: list[str] = []

    @property
    def history(self) -> tuple[str, ...]:
        return tuple(self._history)

    def accept(self, event: str) -> Verdict:
        """Admit ``event`` and report the aggregate constraint verdict.

        Deliberately re-scans the whole history (the published passive
        algorithms re-run their dependency checks per event), giving the
        quadratic per-sequence cost the paper cites.
        """
        self._history.append(event)
        evaluator = PrefixEvaluator()
        for past in self._history:
            evaluator.observe(past)
        verdicts = [evaluator.verdict(c) for c in self.constraints]
        if any(v is Verdict.FALSE for v in verdicts):
            return Verdict.FALSE
        if all(v is Verdict.TRUE for v in verdicts):
            return Verdict.TRUE
        return Verdict.UNKNOWN

    def finish(self) -> bool:
        """Validate the completed sequence (resolves UNKNOWN verdicts)."""
        trace = tuple(self._history)
        return all(satisfies(trace, c) for c in self.constraints)

    def reset(self) -> None:
        self._history = []


def validate_sequence(sequence: tuple[str, ...], constraints: list[Constraint]) -> bool:
    """Full passive validation of one event sequence (quadratic)."""
    scheduler = PassiveScheduler(constraints)
    for event in sequence:
        if scheduler.accept(event) is Verdict.FALSE:
            return False
    return scheduler.finish()


def generate_and_test_consistency(
    goal: Goal,
    constraints: list[Constraint],
    max_candidates: int = 1_000_000,
) -> tuple[str, ...] | None:
    """Search the execution space of ``goal`` for a constraint-satisfying trace.

    This is the worst-case-exponential external consistency check that
    passive scheduling environments rely on; returns a witness trace, or
    None when the specification is inconsistent. It enumerates candidate
    executions directly from the goal's step semantics, validating each
    completed candidate passively.
    """
    machine = Machine(goal)
    candidates = 0
    stack = [((), machine.initial())]
    seen = set()
    while stack:
        prefix, config = stack.pop()
        if (prefix, config) in seen:
            continue
        seen.add((prefix, config))
        if machine.is_final(config):
            candidates += 1
            if candidates > max_candidates:
                raise SchedulingError(
                    f"generate-and-test exceeded {max_candidates} candidates"
                )
            if validate_sequence(prefix, constraints):
                return prefix
        for label, nxt in machine.steps(config):
            new_prefix = prefix if label is None else prefix + (label,)
            stack.append((new_prefix, nxt))
    return None
