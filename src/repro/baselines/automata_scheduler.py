"""Automata-synthesis scheduling baseline (Section 6, fourth comparison).

"After verification, the proof theory of CTR can schedule workflows at
time linear in the size of the original graph, but exponential in the size
of the constraint set. In contrast, process scheduling using the standard
toolkit of process algebras and temporal logic requires automata that are
**exponential in the size of the original graph**."

This module is that standard toolkit: it *synthesises* an explicit
deterministic scheduling automaton up front —

1. determinise the workflow's interleaving NFA (subset construction over
   machine configurations),
2. product it with the constraint DFAs,
3. prune backwards every state from which no accepting completion is
   reachable (so the scheduler can never dead-end),

and then schedules by trivially walking the pruned automaton. Stepping is
O(1); the synthesis is exponential in the workflow's parallel width —
benchmark E10 contrasts its cost with Apply-based compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints.algebra import Constraint
from ..ctr.formulas import Goal
from ..ctr.machine import Config, Machine
from ..errors import IneligibleEventError, InconsistentWorkflowError
from .automata import ProductAutomaton

__all__ = ["AutomatonScheduler"]

# A synthesis state: determinised machine configurations + constraint state.
_State = tuple[frozenset[Config], tuple]


@dataclass
class AutomatonScheduler:
    """A fully-synthesised scheduling automaton for ``goal ∧ constraints``."""

    initial_state: _State
    transitions: dict[_State, dict[str, _State]]
    accepting: frozenset[_State]
    _current: _State = field(init=False)
    _history: list[str] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._current = self.initial_state

    # -- synthesis ---------------------------------------------------------------

    @classmethod
    def build(
        cls, goal: Goal, constraints: list[Constraint]
    ) -> "AutomatonScheduler":
        """Synthesise the pruned scheduling automaton (worst-case exponential)."""
        machine = Machine(goal)
        product = ProductAutomaton.build(list(constraints))

        def determinise(configs: frozenset[Config]) -> dict[str, frozenset[Config]]:
            moves: dict[str, set[Config]] = {}
            for config in configs:
                for event, targets in machine.successors(config).items():
                    moves.setdefault(event, set()).update(targets)
            return {event: frozenset(targets) for event, targets in moves.items()}

        initial: _State = (frozenset((machine.initial(),)), product.initial())
        transitions: dict[_State, dict[str, _State]] = {}
        accepting: set[_State] = set()
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            if state in transitions:
                continue
            configs, automaton_state = state
            if product.accepting(automaton_state) and any(
                machine.is_final(c) for c in configs
            ):
                accepting.add(state)
            outgoing: dict[str, _State] = {}
            for event, targets in determinise(configs).items():
                successor: _State = (targets, product.step(automaton_state, event))
                outgoing[event] = successor
                frontier.append(successor)
            transitions[state] = outgoing

        live = cls._backward_prune(transitions, accepting)
        if initial not in live:
            raise InconsistentWorkflowError(
                "no execution of the workflow satisfies the constraints"
            )
        pruned = {
            state: {
                event: target
                for event, target in outgoing.items()
                if target in live
            }
            for state, outgoing in transitions.items()
            if state in live
        }
        return cls(
            initial_state=initial,
            transitions=pruned,
            accepting=frozenset(accepting & live),
        )

    @staticmethod
    def _backward_prune(
        transitions: dict[_State, dict[str, _State]], accepting: set[_State]
    ) -> set[_State]:
        """States from which an accepting completion is reachable."""
        inverse: dict[_State, set[_State]] = {}
        for state, outgoing in transitions.items():
            for target in outgoing.values():
                inverse.setdefault(target, set()).add(state)
        live = set(accepting)
        frontier = list(accepting)
        while frontier:
            state = frontier.pop()
            for predecessor in inverse.get(state, ()):
                if predecessor not in live:
                    live.add(predecessor)
                    frontier.append(predecessor)
        return live

    # -- statistics ---------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    # -- scheduling ------------------------------------------------------------------

    @property
    def history(self) -> tuple[str, ...]:
        return tuple(self._history)

    def eligible(self) -> frozenset[str]:
        return frozenset(self.transitions.get(self._current, {}))

    def fire(self, event: str) -> None:
        outgoing = self.transitions.get(self._current, {})
        if event not in outgoing:
            raise IneligibleEventError(event, self.eligible())
        self._current = outgoing[event]
        self._history.append(event)

    def can_finish(self) -> bool:
        return self._current in self.accepting

    def reset(self) -> None:
        self._current = self.initial_state
        self._history = []

    def run(self, max_steps: int = 100_000) -> tuple[str, ...]:
        """Drive to completion, always firing the smallest eligible event."""
        for _ in range(max_steps):
            events = self.eligible()
            if not events:
                assert self.can_finish(), "pruned automaton cannot dead-end"
                return self.history
            self.fire(min(events))
        raise IneligibleEventError("<timeout>", frozenset())  # pragma: no cover
