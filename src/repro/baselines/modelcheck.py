"""Explicit-state model checking baseline (Section 6's comparison point).

"Standard model checking techniques [Clarke-Emerson-Sistla] used for
verification are worst-case exponential in the size of the control flow
graph — the state-explosion problem. In contrast, Apply is linear in the
size of the graph."

This module is that baseline: it explores the synchronous product of

* the workflow's interleaving state space (the non-deterministic
  :class:`~repro.ctr.machine.Machine` over the *uncompiled* goal), and
* the :class:`~repro.baselines.automata.ProductAutomaton` of the
  constraint set (and, for verification, of the negated property),

counting the states it visits. On the ``parallel_chains`` workloads the
visited-state count grows combinatorially with the parallel width while
Apply's output stays linear — benchmark E7 plots exactly this contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint
from ..constraints.normalize import negate
from ..ctr.formulas import Goal
from ..ctr.machine import Machine
from .automata import ProductAutomaton

__all__ = ["ModelCheckResult", "model_check_consistency", "model_check_property"]


@dataclass(frozen=True)
class ModelCheckResult:
    """Outcome of an explicit-state exploration."""

    holds: bool
    states_explored: int
    witness: tuple[str, ...] | None = None

    def __bool__(self) -> bool:
        return self.holds


def model_check_consistency(
    goal: Goal, constraints: list[Constraint]
) -> ModelCheckResult:
    """Is there a complete execution of ``goal`` accepted by all constraints?

    ``holds=True`` means consistent; ``witness`` is a satisfying trace.
    """
    machine = Machine(goal)
    product = ProductAutomaton.build(list(constraints))
    seen = set()
    stack = [(machine.initial(), product.initial(), ())]
    while stack:
        config, automaton_state, prefix = stack.pop()
        key = (config, automaton_state)
        if key in seen:
            continue
        seen.add(key)
        if machine.is_final(config) and product.accepting(automaton_state):
            return ModelCheckResult(True, len(seen), witness=prefix)
        for label, nxt in machine.steps(config):
            if label is None:
                stack.append((nxt, automaton_state, prefix))
            else:
                stack.append((nxt, product.step(automaton_state, label), prefix + (label,)))
    return ModelCheckResult(False, len(seen))


def model_check_property(
    goal: Goal, constraints: list[Constraint], prop: Constraint
) -> ModelCheckResult:
    """Does every legal execution (satisfying ``constraints``) satisfy ``prop``?

    Explores the product with the constraints and the *negated* property:
    a reachable accepting state is a counterexample.
    """
    violating = list(constraints) + [negate(prop)]
    result = model_check_consistency(goal, violating)
    return ModelCheckResult(
        holds=not result.holds,
        states_explored=result.states_explored,
        witness=result.witness,
    )
