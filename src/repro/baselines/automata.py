"""Finite automata for CONSTR constraints.

The "standard toolkit" the paper contrasts itself with (Section 6) turns
temporal properties into automata and model-checks the product with the
system. This module builds that toolkit for CONSTR: every constraint
compiles to a deterministic finite automaton over event sequences, and
constraint sets compile to product automata.

States track, per constraint leaf, exactly what satisfaction depends on:

* a primitive ``∇e`` / ``¬∇e`` leaf needs one bit — has ``e`` occurred;
* a serial leaf ``∇e₁ ⊗ … ⊗ ∇eₙ`` needs its matched-prefix length, with a
  sink state for irrecoverable order violations (unique events cannot
  re-occur, so an out-of-order occurrence is permanent).

Acceptance evaluates the constraint's boolean structure over the leaf
verdicts. The DFA is exponential-free for single constraints (state count
is the product of leaf sizes), but the *product* over a constraint set —
what a model checker must explore together with the system's interleaving
space — grows multiplicatively: the state-explosion of benchmark E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints.algebra import And, Constraint, Primitive, SerialConstraint
from ..constraints.normalize import normalize
from ..errors import SpecificationError

__all__ = ["ConstraintAutomaton", "ProductAutomaton"]

_VIOLATED = -1


def check_unique_serials(constraint: Constraint) -> None:
    """Reject serial constraints that repeat an event.

    The sink-state encoding below (and the kernel's position tables)
    assumes unique events: a repeated event would match the wrong prefix
    position and the DFA would silently accept violating sequences.
    :class:`~repro.constraints.algebra.SerialConstraint` already refuses
    duplicates at construction; this guards constraints deserialized or
    built around ``__post_init__``.
    """
    if isinstance(constraint, SerialConstraint):
        if len(set(constraint.events)) != len(constraint.events):
            raise SpecificationError(
                "serial constraint repeats an event, violating the "
                "unique-event assumption the automaton encoding relies on: "
                f"{constraint}"
            )
    elif not isinstance(constraint, Primitive):
        for part in constraint.parts:  # type: ignore[attr-defined]
            check_unique_serials(part)


@dataclass(frozen=True)
class ConstraintAutomaton:
    """A DFA accepting exactly the event sequences satisfying a constraint."""

    constraint: Constraint
    leaves: tuple[Constraint, ...]
    # Acceptance per state is pure, and schedulers ask it for the same few
    # states over and over — memoized out-of-band so the dataclass stays
    # hashable/comparable on its semantic fields only.
    _accept_cache: dict = field(
        default_factory=dict, compare=False, repr=False,
    )

    @classmethod
    def build(cls, constraint: Constraint) -> "ConstraintAutomaton":
        # Validate *before* normalize: pairwise decomposition rewrites a
        # duplicate-event serial into innocuous-looking orders, hiding the
        # violation of the unique-event assumption from the leaf check.
        check_unique_serials(constraint)
        constraint = normalize(constraint)
        leaves: list[Constraint] = []

        def collect(c: Constraint) -> None:
            if isinstance(c, (Primitive, SerialConstraint)):
                leaves.append(c)
            else:
                for part in c.parts:  # type: ignore[attr-defined]
                    collect(part)

        collect(constraint)
        for leaf in leaves:
            if isinstance(leaf, SerialConstraint) and len(set(leaf.events)) != len(
                leaf.events
            ):
                # The sink-state trick below assumes unique events: a
                # repeated event would match the wrong prefix position and
                # the DFA would silently accept violating sequences.
                raise SpecificationError(
                    "serial constraint repeats an event, violating the "
                    "unique-event assumption the automaton encoding relies on: "
                    f"{leaf}"
                )
        return cls(constraint=constraint, leaves=tuple(leaves))

    @property
    def alphabet(self) -> frozenset[str]:
        events: set[str] = set()
        for leaf in self.leaves:
            if isinstance(leaf, Primitive):
                events.add(leaf.event)
            else:
                events.update(leaf.events)  # type: ignore[union-attr]
        return frozenset(events)

    def initial(self) -> tuple[int, ...]:
        return tuple(0 for _ in self.leaves)

    def step(self, state: tuple[int, ...], event: str) -> tuple[int, ...]:
        return tuple(
            self._leaf_step(leaf, leaf_state, event)
            for leaf, leaf_state in zip(self.leaves, state)
        )

    @staticmethod
    def _leaf_step(leaf: Constraint, state: int, event: str) -> int:
        if isinstance(leaf, Primitive):
            return 1 if event == leaf.event else state
        events = leaf.events  # type: ignore[union-attr]
        if state == _VIOLATED or event not in events:
            return state
        if state < len(events) and event == events[state]:
            return state + 1
        return _VIOLATED

    def accepting(self, state: tuple[int, ...]) -> bool:
        cached = self._accept_cache.get(state)
        if cached is not None:
            return cached
        verdicts: list[bool] = []
        for leaf, leaf_state in zip(self.leaves, state):
            if isinstance(leaf, Primitive):
                seen = leaf_state == 1
                verdicts.append(seen if leaf.positive else not seen)
            else:
                verdicts.append(leaf_state == len(leaf.events))  # type: ignore[union-attr]

        # Re-walk the constraint in the same order the leaves were
        # collected, consuming one verdict per leaf.
        index = [0]

        def evaluate(c: Constraint) -> bool:
            if isinstance(c, (Primitive, SerialConstraint)):
                value = verdicts[index[0]]
                index[0] += 1
                return value
            if isinstance(c, And):
                results = [evaluate(p) for p in c.parts]
                return all(results)
            results = [evaluate(p) for p in c.parts]  # Or
            return any(results)

        verdict = evaluate(self.constraint)
        if len(self._accept_cache) >= 65536:
            self._accept_cache.clear()
        self._accept_cache[state] = verdict
        return verdict

    def accepts(self, sequence: tuple[str, ...]) -> bool:
        state = self.initial()
        for event in sequence:
            state = self.step(state, event)
        return self.accepting(state)


@dataclass(frozen=True)
class ProductAutomaton:
    """The synchronous product of one automaton per constraint."""

    automata: tuple[ConstraintAutomaton, ...]

    @classmethod
    def build(cls, constraints: list[Constraint]) -> "ProductAutomaton":
        return cls(tuple(ConstraintAutomaton.build(c) for c in constraints))

    def initial(self) -> tuple[tuple[int, ...], ...]:
        return tuple(a.initial() for a in self.automata)

    def step(
        self, state: tuple[tuple[int, ...], ...], event: str
    ) -> tuple[tuple[int, ...], ...]:
        return tuple(a.step(s, event) for a, s in zip(self.automata, state))

    def accepting(self, state: tuple[tuple[int, ...], ...]) -> bool:
        return all(a.accepting(s) for a, s in zip(self.automata, state))

    def accepts(self, sequence: tuple[str, ...]) -> bool:
        state = self.initial()
        for event in sequence:
            state = self.step(state, event)
        return self.accepting(state)
