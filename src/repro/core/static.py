"""Static analysis of (compiled) workflow goals: designer feedback.

The paper emphasises design-time feedback ("the workflow designers can be
given a feedback that might help them find the bug in their
specifications"). Beyond the G_fail culprit of Excise, this module
extracts three structural reports from a goal — typically the *compiled*
goal, where the constraints have already pruned the impossible behaviour:

* :func:`possible_events` — events occurring in at least one execution;
* :func:`mandatory_events` — events occurring in *every* execution;
* :func:`dead_activities` — activities of the source workflow that no
  legal execution can reach (usually a sign of an over-constrained
  specification);
* :func:`guaranteed_orderings` — pairs ``(e, f)`` such that ``e`` precedes
  ``f`` in every execution where both occur. The analysis uses the serial
  structure only, so it is a sound under-approximation on goals containing
  ``send``/``receive`` tokens (tokens can only *add* orderings).

All analyses are linear in the goal size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    NegPath,
    Possibility,
    Serial,
)
from .compiler import CompiledWorkflow

__all__ = [
    "possible_events",
    "mandatory_events",
    "dead_activities",
    "guaranteed_orderings",
    "WorkflowReport",
    "analyze",
]


def possible_events(goal: Goal) -> frozenset[str]:
    """Events that occur in at least one execution of ``goal``."""
    if isinstance(goal, NegPath):
        return frozenset()
    if isinstance(goal, Atom):
        return frozenset((goal.name,))
    if isinstance(goal, Possibility):
        return frozenset()
    if isinstance(goal, Isolated):
        return possible_events(goal.body)
    if isinstance(goal, (Serial, Concurrent, Choice)):
        out: frozenset[str] = frozenset()
        for part in goal.parts:
            out |= possible_events(part)
        return out
    return frozenset()


def mandatory_events(goal: Goal) -> frozenset[str]:
    """Events that occur in *every* execution of ``goal``.

    ``¬path`` has no executions, so vacuously every event is mandatory
    there; by convention we return the empty set for it (callers should
    check consistency first).
    """
    if isinstance(goal, (NegPath, Possibility)):
        return frozenset()
    if isinstance(goal, Atom):
        return frozenset((goal.name,))
    if isinstance(goal, Isolated):
        return mandatory_events(goal.body)
    if isinstance(goal, (Serial, Concurrent)):
        out: frozenset[str] = frozenset()
        for part in goal.parts:
            out |= mandatory_events(part)
        return out
    if isinstance(goal, Choice):
        parts = [mandatory_events(p) for p in goal.parts]
        out = parts[0]
        for p in parts[1:]:
            out &= p
        return out
    return frozenset()


def dead_activities(compiled: CompiledWorkflow) -> frozenset[str]:
    """Source activities that no legal execution can reach."""
    return possible_events(compiled.source) - possible_events(compiled.goal)


def guaranteed_orderings(goal: Goal) -> frozenset[tuple[str, str]]:
    """Pairs ``(e, f)``: ``e`` precedes ``f`` whenever both occur.

    Derived from the serial structure: inside ``e₁ ⊗ … ⊗ eₙ`` every event
    of an earlier part precedes every event of a later part; a pair is
    *guaranteed* if the ordering holds in every choice alternative in
    which both events can occur together.
    """
    both_possible, ordered = _orderings(goal)
    return frozenset(pair for pair in ordered if pair in both_possible)


def _orderings(
    goal: Goal,
) -> tuple[frozenset[tuple[str, str]], frozenset[tuple[str, str]]]:
    """(pairs that may co-occur, pairs e<f ordered whenever they co-occur)."""
    if isinstance(goal, Atom):
        return frozenset(), frozenset()
    if isinstance(goal, (NegPath, Possibility)):
        return frozenset(), frozenset()
    if isinstance(goal, Isolated):
        return _orderings(goal.body)

    if isinstance(goal, Serial):
        co: set[tuple[str, str]] = set()
        ordered: set[tuple[str, str]] = set()
        seen_before: frozenset[str] = frozenset()
        for part in goal.parts:
            part_co, part_ordered = _orderings(part)
            co |= part_co
            ordered |= part_ordered
            part_events = possible_events(part)
            for earlier in seen_before:
                for later in part_events:
                    if earlier != later:
                        co.add((earlier, later))
                        co.add((later, earlier))
                        ordered.add((earlier, later))
            seen_before |= part_events
        return frozenset(co), frozenset(ordered)

    if isinstance(goal, Concurrent):
        co = set()
        ordered = set()
        events_so_far: frozenset[str] = frozenset()
        for part in goal.parts:
            part_co, part_ordered = _orderings(part)
            co |= part_co
            ordered |= part_ordered
            part_events = possible_events(part)
            for a in events_so_far:
                for b in part_events:
                    if a != b:
                        co.add((a, b))
                        co.add((b, a))
            events_so_far |= part_events
        return frozenset(co), frozenset(ordered)

    if isinstance(goal, Choice):
        results = [_orderings(p) for p in goal.parts]
        co = set().union(*(r[0] for r in results))
        # A pair stays guaranteed iff no alternative can realise the pair
        # unordered or reversed: ordered(e,f) holds overall when every
        # alternative that may co-realise (e,f) orders them (e,f).
        ordered = set()
        for e, f in co:
            fine = True
            for part_co, part_ordered in results:
                if (e, f) in part_co and (e, f) not in part_ordered:
                    fine = False
                    break
            if fine:
                ordered.add((e, f))
        return frozenset(co), frozenset(ordered)

    return frozenset(), frozenset()


@dataclass(frozen=True)
class WorkflowReport:
    """Designer-facing summary of a compiled workflow."""

    consistent: bool
    possible: frozenset[str]
    mandatory: frozenset[str]
    optional: frozenset[str]
    dead: frozenset[str]
    orderings: frozenset[tuple[str, str]]

    def describe(self) -> str:
        """A readable multi-line summary."""
        lines = [f"consistent: {self.consistent}"]
        lines.append("mandatory: " + (", ".join(sorted(self.mandatory)) or "-"))
        lines.append("optional:  " + (", ".join(sorted(self.optional)) or "-"))
        lines.append("dead:      " + (", ".join(sorted(self.dead)) or "-"))
        shown = sorted(self.orderings)[:12]
        rendered = ", ".join(f"{a}<{b}" for a, b in shown)
        suffix = " …" if len(self.orderings) > len(shown) else ""
        lines.append(f"orderings: {rendered or '-'}{suffix}")
        return "\n".join(lines)


def analyze(compiled: CompiledWorkflow) -> WorkflowReport:
    """Full static report over a compiled workflow."""
    if not compiled.consistent:
        return WorkflowReport(
            consistent=False,
            possible=frozenset(),
            mandatory=frozenset(),
            optional=frozenset(),
            dead=possible_events(compiled.source),
            orderings=frozenset(),
        )
    possible = possible_events(compiled.goal)
    mandatory = mandatory_events(compiled.goal)
    return WorkflowReport(
        consistent=True,
        possible=possible,
        mandatory=mandatory,
        optional=possible - mandatory,
        dead=dead_activities(compiled),
        orderings=guaranteed_orderings(compiled.goal),
    )
