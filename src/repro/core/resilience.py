"""Resilience policies and deterministic fault injection for the engine.

The paper's pitch is that one formalism covers *specifying, analyzing and
executing* workflows — and its own examples (the ``∨`` alternatives of
Section 2, the saga encoding of Section 7) are about surviving failure.
This module supplies the run-time half of that story:

* :class:`RetryPolicy` / :class:`ResiliencePolicy` — per-activity retry
  budgets with fixed or exponential backoff and a per-attempt timeout,
  looked up by the engine before every step;
* :class:`Clock` / :class:`VirtualClock` / :class:`SystemClock` — an
  injectable time source, so backoff sleeps and timeout detection are
  deterministic under test and real under deployment;
* :class:`ChaosOracle` — a deterministic fault-injection wrapper over
  :class:`~repro.db.oracle.TransitionOracle` that fails chosen events on
  chosen attempts (by name, schedule index, or seeded probability) and can
  inject latency, so every recovery path the compiled goal encodes is
  testable and benchmarkable;
* :class:`FailureRecord` / :class:`RerouteRecord` — the structured
  accounting that ends up on :class:`~repro.core.engine.ExecutionReport`.

The engine's failover logic itself lives in
:mod:`repro.core.engine`; the branch-viability query it consults is
:meth:`repro.core.scheduler.Scheduler.viable_events`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Protocol

from ..db.oracle import TransitionOracle
from ..db.state import Database
from ..errors import ReproError

__all__ = [
    "Clock",
    "VirtualClock",
    "SystemClock",
    "RetryPolicy",
    "ResiliencePolicy",
    "ChaosOracle",
    "FaultInjected",
    "FailureRecord",
    "RerouteRecord",
]


# -- time ---------------------------------------------------------------------


class Clock(Protocol):
    """The engine's time source: monotonic seconds plus a sleep."""

    def now(self) -> float: ...

    def sleep(self, seconds: float) -> None: ...


class VirtualClock:
    """A deterministic clock: ``sleep`` advances time instantly.

    This is the engine's default, so retry backoff and timeout budgets are
    exact and tests run in zero wall-clock time. ``ExecutionReport.elapsed``
    then reports *virtual* seconds.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias of :meth:`sleep`, for test readability."""
        self.sleep(seconds)


class SystemClock:
    """Wall-clock time (``time.monotonic`` / ``time.sleep``) for deployment."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


# -- retry policies -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How one activity may be retried.

    ``max_attempts`` bounds the total number of tries.  Between failed
    attempts the engine sleeps ``base_delay * multiplier**(attempt - 1)``
    seconds, capped at ``max_delay`` — ``multiplier=1`` is fixed backoff,
    ``multiplier>1`` exponential.  ``timeout`` is a per-attempt budget on
    the engine's clock; an attempt that overruns it counts as failed (and
    is rolled back) even though the update returned.

    ``jitter`` spreads correlated retries (a fleet of workers restarting
    in lockstep would hammer whatever killed them): when an ``rng`` is
    passed to :meth:`delay`, the computed delay is scaled by a uniform
    factor in ``[1 - jitter, 1 + jitter]``. A seeded ``random.Random``
    keeps the spread deterministic; without an ``rng`` the delay is the
    exact unjittered value, preserving replay determinism everywhere the
    engine does not opt in.

    >>> RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0).delay(3)
    0.4
    """

    max_attempts: int = 1
    base_delay: float = 0.0
    multiplier: float = 1.0
    max_delay: float | None = None
    timeout: float | None = None
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    @classmethod
    def fixed(cls, max_attempts: int, delay: float = 0.0,
              timeout: float | None = None) -> "RetryPolicy":
        """Retry with a constant delay between attempts."""
        return cls(max_attempts=max_attempts, base_delay=delay, timeout=timeout)

    @classmethod
    def exponential(cls, max_attempts: int, base_delay: float,
                    multiplier: float = 2.0, max_delay: float | None = None,
                    timeout: float | None = None) -> "RetryPolicy":
        """Retry with exponentially growing delays."""
        return cls(max_attempts=max_attempts, base_delay=base_delay,
                   multiplier=multiplier, max_delay=max_delay, timeout=timeout)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to back off after failed attempt number ``attempt`` (1-based).

        Pass a (seeded) ``rng`` to apply the policy's ``jitter``; the cap
        ``max_delay`` bounds the delay before and after jittering, so a
        jittered delay never escapes the configured envelope upward by
        more than ``jitter`` of the cap.
        """
        delay = self.base_delay * self.multiplier ** (attempt - 1)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    @property
    def needs_attempt_snapshot(self) -> bool:
        """Must the engine checkpoint the database before each attempt?

        Only retried or timed activities need per-attempt atomicity; the
        default single-attempt policy keeps the happy path snapshot-free
        (permanent failures are cleaned up by the failover/abort restore).
        """
        return self.max_attempts > 1 or self.timeout is not None

    def to_dict(self) -> dict:
        """JSON-serializable form (trace headers embed policies for replay)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "timeout": self.timeout,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


class ResiliencePolicy:
    """Registry mapping event names to :class:`RetryPolicy` objects.

    Events without a registered policy get ``default`` (one attempt, no
    timeout, unless overridden), preserving the seed engine's semantics.

    >>> policies = ResiliencePolicy()
    >>> policies.register("charge", RetryPolicy.exponential(3, 0.1))
    >>> policies.policy_for("charge").max_attempts
    3
    >>> policies.policy_for("anything_else").max_attempts
    1
    """

    def __init__(self, default: RetryPolicy | None = None):
        self._policies: dict[str, RetryPolicy] = {}
        self.default = default or RetryPolicy()

    def register(self, event: str, policy: RetryPolicy) -> None:
        self._policies[event] = policy

    def policy_for(self, event: str) -> RetryPolicy:
        return self._policies.get(event, self.default)

    def __contains__(self, event: str) -> bool:
        return event in self._policies

    def __len__(self) -> int:
        return len(self._policies)

    def to_dict(self) -> dict:
        """JSON-serializable form (trace headers embed policies for replay)."""
        return {
            "default": self.default.to_dict(),
            "events": {e: p.to_dict() for e, p in sorted(self._policies.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResiliencePolicy":
        default = data.get("default")
        registry = cls(RetryPolicy.from_dict(default) if default else None)
        for event, policy in (data.get("events") or {}).items():
            registry.register(event, RetryPolicy.from_dict(policy))
        return registry


# -- structured failure accounting -------------------------------------------


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """One failed activity attempt, as observed by the engine."""

    event: str
    attempt: int
    kind: str
    error: str


@dataclass(frozen=True, slots=True)
class RerouteRecord:
    """One successful choice-branch failover.

    ``failed_event`` died permanently; the engine rolled back to schedule
    position ``resumed_depth``, discarding the already-committed events in
    ``discarded`` (their database effects were undone with the snapshot),
    and continued down a ``∨``-alternative that avoids the dead event.
    ``target`` is the first event fired on the surviving branch (``None``
    only if the run ended before another event fired).
    """

    failed_event: str
    discarded: tuple[str, ...]
    resumed_depth: int
    target: str | None = None


# -- fault injection ----------------------------------------------------------


class FaultInjected(ReproError):
    """The failure raised by :class:`ChaosOracle` on an injected fault."""

    def __init__(self, event: str, attempt: int, step: int, reason: str):
        self.event = event
        self.attempt = attempt
        self.step = step
        super().__init__(
            f"injected fault ({reason}) in {event!r} "
            f"(attempt {attempt}, schedule index {step})"
        )


class ChaosOracle:
    """A deterministic fault-injecting wrapper over a transition oracle.

    Faults can be scheduled three ways, freely combined:

    * :meth:`fail_event` — by event name, for the first ``attempts`` tries
      (``attempts=None`` fails every try: a permanently dead activity);
    * :meth:`fail_at` — by schedule index: the *i*-th distinct event the
      run executes (first attempts establish the numbering, so retries and
      post-failover replays of an event keep its original index);
    * :meth:`fail_rate` — by seeded probability per attempt, reproducible
      run to run.

    :meth:`add_latency` makes an event consume clock time, which is how
    per-attempt timeouts are exercised deterministically. ``corrupt=True``
    on :meth:`fail_event` applies the real update *before* raising, leaving
    a dirty state the engine must roll back — the hostile case for
    per-attempt atomicity.

    The wrapper satisfies the :class:`~repro.db.oracle.TransitionOracle`
    interface (``register``/``knows``/``execute``/``successors``), so it
    drops into :class:`~repro.core.engine.WorkflowEngine` unchanged.
    """

    def __init__(self, inner: TransitionOracle | None = None,
                 clock: Clock | None = None, seed: int | None = None):
        self.inner = inner or TransitionOracle()
        self.clock = clock
        self.seed = seed
        self._rng = random.Random(seed)
        self._rate = 0.0
        self._fail_events: dict[str, int | None] = {}
        self._corrupt: set[str] = set()
        self._fail_indices: dict[int, int | None] = {}
        self._latencies: dict[str, float] = {}
        self._attempts: dict[str, int] = {}
        self._step_of: dict[str, int] = {}

    # -- fault plan ----------------------------------------------------------

    def fail_event(self, event: str, attempts: int | None = None,
                   corrupt: bool = False) -> "ChaosOracle":
        """Fail ``event``'s first ``attempts`` tries (``None`` = every try)."""
        self._fail_events[event] = attempts
        if corrupt:
            self._corrupt.add(event)
        return self

    def fail_at(self, index: int, attempts: int | None = None) -> "ChaosOracle":
        """Fail the event at schedule index ``index`` (0-based, ``None`` = always)."""
        self._fail_indices[index] = attempts
        return self

    def fail_rate(self, rate: float) -> "ChaosOracle":
        """Fail any attempt with probability ``rate`` (seeded, deterministic)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self._rate = rate
        return self

    def add_latency(self, event: str, seconds: float) -> "ChaosOracle":
        """Make every attempt of ``event`` consume ``seconds`` of clock time."""
        if self.clock is None:
            raise ValueError("latency injection requires a clock")
        self._latencies[event] = seconds
        return self

    def reset(self) -> None:
        """Forget attempt counters and schedule numbering (not the fault plan)."""
        self._attempts.clear()
        self._step_of.clear()

    def plan(self) -> dict:
        """The fault plan in JSON-serializable form.

        A trace header embeds this, and :meth:`from_plan` rebuilds an
        oracle that injects the identical fault sequence — the determinism
        the flight-recorder replay rests on.
        """
        return {
            "seed": self.seed,
            "rate": self._rate,
            "fail_events": dict(self._fail_events),
            "corrupt": sorted(self._corrupt),
            "fail_indices": {str(i): b for i, b in self._fail_indices.items()},
            "latencies": dict(self._latencies),
        }

    @classmethod
    def from_plan(cls, plan: dict, inner: TransitionOracle | None = None,
                  clock: Clock | None = None) -> "ChaosOracle":
        """Rebuild an oracle from :meth:`plan` output (fresh counters)."""
        oracle = cls(inner=inner, clock=clock, seed=plan.get("seed"))
        if plan.get("rate"):
            oracle.fail_rate(plan["rate"])
        corrupt = set(plan.get("corrupt") or ())
        for event, budget in (plan.get("fail_events") or {}).items():
            oracle.fail_event(event, attempts=budget, corrupt=event in corrupt)
        for index, budget in (plan.get("fail_indices") or {}).items():
            oracle.fail_at(int(index), attempts=budget)
        for event, seconds in (plan.get("latencies") or {}).items():
            oracle.add_latency(event, seconds)
        return oracle

    # -- TransitionOracle interface ------------------------------------------

    def register(self, name, update) -> None:
        self.inner.register(name, update)

    def knows(self, name: str) -> bool:
        return self.inner.knows(name)

    def successors(self, name: str, db: Database):
        return self.inner.successors(name, db)

    def execute(self, name: str, db: Database) -> None:
        attempt = self._attempts.get(name, 0) + 1
        self._attempts[name] = attempt
        step = self._step_of.setdefault(name, len(self._step_of))

        latency = self._latencies.get(name)
        if latency is not None and self.clock is not None:
            self.clock.sleep(latency)

        reason = self._fault_reason(name, step, attempt)
        if reason is not None:
            if name in self._corrupt:
                # Hostile mode: do the real work, then fail anyway.
                self.inner.execute(name, db)
            raise FaultInjected(name, attempt, step, reason)
        self.inner.execute(name, db)

    # -- internals -----------------------------------------------------------

    def _fault_reason(self, name: str, step: int, attempt: int) -> str | None:
        if name in self._fail_events:
            budget = self._fail_events[name]
            if budget is None or attempt <= budget:
                return "by event"
        if step in self._fail_indices:
            budget = self._fail_indices[step]
            if budget is None or attempt <= budget:
                return "by schedule index"
        if self._rate and self._rng.random() < self._rate:
            return "by rate"
        return None
