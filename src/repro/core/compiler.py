"""End-to-end workflow compilation: rules → Apply → Excise.

:func:`compile_workflow` is the main entry point of the library. It takes a
workflow specification — a concurrent-Horn goal (or a control flow graph,
via :mod:`repro.graph.translate`), an optional rule base of sub-workflow
definitions, and a set of CONSTR constraints — and produces a
:class:`CompiledWorkflow`: the "compressed explicit representation of all
allowed executions" of Section 4. From it one can

* test **consistency** (Theorem 5.8): the specification is consistent iff
  compilation did not collapse to ``¬path``;
* obtain a **pro-active scheduler** (:meth:`CompiledWorkflow.scheduler`)
  that knows, at every stage, exactly which events are eligible — no
  run-time constraint checking;
* enumerate allowed executions (each in time linear in the original
  graph).

Compilation is the expensive step (Apply alone is ``O(d^N·|G|)``), and a
workflow specification is a *value*: the same file compiles to the same
result every time. :class:`CompileCache` exploits that with a
content-addressed on-disk cache — the key is a digest of the (rule-expanded
input, constraint set, format version), the value is the serialized
:class:`CompiledWorkflow` — so repeated ``run``/``verify`` invocations of
an unchanged spec skip Apply+Excise entirely. Deserialized goals are
rebuilt through the hash-consing constructors, so a cache hit yields fully
interned, maximally shared goals. Entries are evicted LRU beyond
``max_entries``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..constraints.algebra import Constraint
from ..ctr.formulas import Goal, dag_size, goal_size
from ..ctr.rules import RuleBase
from ..ctr.simplify import is_failure, simplify
from ..ctr.unique import check_unique_events
from ..errors import InconsistentWorkflowError
from .apply import apply_all
from .excise import excise
from .sync import TokenFactory

__all__ = ["CompiledWorkflow", "CompileCache", "compile_workflow"]


@dataclass(frozen=True)
class CompiledWorkflow:
    """The result of compiling ``source ∧ constraints``.

    Attributes
    ----------
    source:
        The original (rule-expanded) goal ``G``.
    constraints:
        The constraint set ``C`` that was compiled in.
    applied:
        ``Apply(C, G)`` before knot removal — kept for size accounting
        (Theorem 5.11 measures this object).
    goal:
        ``Excise(Apply(C, G))`` — the executable compiled goal, or
        ``¬path`` when the specification is inconsistent.
    backend:
        Which engine answers queries over the compiled goal: ``"object"``
        (the original interpreters, the semantic oracle) or ``"kernel"``
        (the flat-table programs of :mod:`repro.ctr.kernel`). A runtime
        preference, not part of the compiled value — excluded from
        equality and never persisted to the cache.
    """

    source: Goal
    constraints: tuple[Constraint, ...]
    applied: Goal
    goal: Goal
    backend: str = field(default="object", compare=False)

    @property
    def consistent(self) -> bool:
        """Theorem 5.8: consistent iff Excise(Apply(C, G)) ≠ ¬path."""
        return not is_failure(self.goal)

    @property
    def applied_size(self) -> int:
        """``|Apply(C, G)|`` — the quantity bounded by Theorem 5.11."""
        return goal_size(self.applied)

    @property
    def compiled_size(self) -> int:
        return goal_size(self.goal)

    @property
    def applied_dag_size(self) -> int:
        """Distinct nodes of ``Apply(C, G)`` — its allocated size under sharing."""
        return dag_size(self.applied)

    @property
    def compiled_dag_size(self) -> int:
        return dag_size(self.goal)

    @property
    def sharing_ratio(self) -> float:
        """``applied_size / applied_dag_size`` — the structural-sharing factor.

        Theorem 5.11's ``d^N`` blow-up lives in the *tree* measure; this
        ratio is how much of it hash-consing absorbed for this compile.
        """
        return self.applied_size / max(self.applied_dag_size, 1)

    def require_consistent(self) -> "CompiledWorkflow":
        """Raise :class:`~repro.errors.InconsistentWorkflowError` if inconsistent."""
        if not self.consistent:
            raise InconsistentWorkflowError(culprit=self.source)
        return self

    def scheduler(self, test_hook=None):
        """A pro-active scheduler over the compiled goal.

        On the ``kernel`` backend this is a
        :class:`~repro.ctr.kernel.KernelScheduler` over the flat tables —
        same eligible sets, same schedules, several times faster. A
        ``test_hook`` (run-time transition conditions) always selects the
        object :class:`~repro.core.scheduler.Scheduler`.
        """
        from .kernel_backend import scheduler_for

        self.require_consistent()
        return scheduler_for(self.goal, backend=self.backend,
                             test_hook=test_hook)

    def schedules(self, limit: int = 200_000):
        """Iterate over all allowed event sequences (linear time per path)."""
        from .kernel_backend import scheduler_for

        if not self.consistent:
            return iter(())
        return scheduler_for(self.goal, backend=self.backend) \
            .enumerate_schedules(limit=limit)


# -- the persistent compile cache ---------------------------------------------

# Bump whenever the compiled representation or the pipeline semantics
# change: stale-format entries then simply miss and get recompiled.
_CACHE_FORMAT = 1


class CompileCache:
    """Content-addressed on-disk cache of :class:`CompiledWorkflow` results.

    The key is a SHA-256 digest of the canonical JSON encoding of the
    *input* — rule-expanded goal, constraint set, and the cache format
    version — so any change to the specification changes the key. The value
    stores the result's goals in the shared (DAG) encoding of
    :func:`~repro.ctr.serialize.goal_to_shared_dict` — O(dag_size) bytes
    even for ``d^N``-tree-sized compiled goals — and re-interns on load
    (deserialization runs through the hash-consed constructors), so a hit
    returns maximally shared goals.

    Eviction is LRU by file mtime, bounded by ``max_entries``; loads touch
    the entry. Corrupt or unreadable entries are treated as misses and
    removed. Specifications containing :class:`~repro.ctr.formulas.Test`
    nodes with attached predicates are *uncacheable* (a callable cannot be
    content-addressed) and silently bypass the cache.

    A cache directory may be shared by many processes at once (the
    parallel verifier of :mod:`repro.core.parallel` hands every worker
    the same directory): entry writes are atomic (``mkstemp`` +
    ``os.replace``), and every stat/unlink tolerates a sibling process
    having evicted or rewritten the entry first — a vanished file is
    simply someone else's eviction, never an error.
    """

    def __init__(self, directory: str | os.PathLike, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------------

    def key(
        self,
        goal: Goal,
        constraints: tuple[Constraint, ...] | list[Constraint] = (),
    ) -> str | None:
        """Digest of the compilation input, or ``None`` if uncacheable."""
        from ..ctr.formulas import Test, walk_unique
        from ..ctr.serialize import constraint_to_dict, goal_to_dict

        for node in walk_unique(goal):
            if isinstance(node, Test) and node.predicate is not None:
                return None
        payload = {
            "format": _CACHE_FORMAT,
            "goal": goal_to_dict(goal),
            "constraints": [constraint_to_dict(c) for c in constraints],
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- load/store -----------------------------------------------------------

    def load(self, key: str) -> CompiledWorkflow | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        from ..ctr.serialize import constraint_from_dict, goals_from_shared_dict

        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            goals = goals_from_shared_dict(data["goals"])
            result = CompiledWorkflow(
                source=goals["source"],
                constraints=tuple(
                    constraint_from_dict(c) for c in data["constraints"]
                ),
                applied=goals["applied"],
                goal=goals["goal"],
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt entry (partial write, foreign file, format drift):
            # drop it and recompile.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        try:
            os.utime(path)  # bump LRU recency
        except OSError:  # pragma: no cover - read-only cache dir
            pass
        self.hits += 1
        return result

    def store(self, key: str, compiled: CompiledWorkflow) -> None:
        """Persist ``compiled`` under ``key`` (atomic write), then evict LRU.

        Goals are written in the shared (DAG) encoding — one node table
        covering source/applied/goal at once — so an entry is O(dag_size)
        on disk even when the compiled tree is ``d^N``-sized, and subterms
        common to the three sections are stored once.
        """
        from ..ctr.serialize import constraint_to_dict, goals_to_shared_dict

        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _CACHE_FORMAT,
            "constraints": [constraint_to_dict(c) for c in compiled.constraints],
            "goals": goals_to_shared_dict({
                "source": compiled.source,
                "applied": compiled.applied,
                "goal": compiled.goal,
            }),
        }
        encoded = json.dumps(payload, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp, self._path(key))
        except BaseException:
            os.unlink(tmp)
            raise
        self._evict()

    def _evict(self) -> None:
        # Concurrent workers race here by design: another process may
        # evict (or rewrite) an entry between our glob, stat, and unlink.
        # Each step tolerates the file vanishing underneath it.
        entries: list[tuple[float, Path]] = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # evicted by a sibling process mid-scan
        entries.sort(key=lambda item: item[0])
        for _, stale in entries[: max(0, len(entries) - self.max_entries)]:
            try:
                stale.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - concurrent unlink race
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    @classmethod
    def coerce(
        cls, cache: "CompileCache | str | os.PathLike | None"
    ) -> "CompileCache | None":
        if cache is None or isinstance(cache, cls):
            return cache
        return cls(cache)


def compile_workflow(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
    obs=None,
    cache: CompileCache | str | os.PathLike | None = None,
    jobs: int | None = 1,
    backend: str | None = None,
) -> CompiledWorkflow:
    """Compile a workflow specification ``G ∧ C`` into executable form.

    ``rules`` (sub-workflow definitions) are inlined first; the expanded
    goal must satisfy the unique-event property (Definition 3.1), which is
    verified here and raises :class:`~repro.errors.UniqueEventError`
    otherwise.

    ``obs`` (an :class:`~repro.obs.config.Observability`) times each phase
    of the pipeline as a span (``compile`` → ``expand``/``apply``/
    ``excise``) and records the size accounting of Theorem 5.11 — goal
    size before and after Apply and Excise (tree *and* DAG measures, plus
    the sharing ratio), knots excised, the constraint count ``N`` and
    arity ``d``, and the measured ``|Apply(C,G)| / (d^N·|G|)`` ratio —
    into the metrics registry on every compile.

    ``cache`` (a :class:`CompileCache` or a directory path) consults the
    persistent compile cache before doing any work; hits skip rule
    expansion, the unique-event check, Apply, and Excise. The cache key is
    computed on the *rule-expanded* goal, so editing a rule invalidates
    dependent specifications too.

    ``jobs`` > 1 delegates to
    :func:`~repro.core.parallel.compile_parallel`: the constraint set's
    DNF branches compile on worker processes and assemble as their ``∨``.
    The assembled workflow is trace-equivalent to (but not structurally
    identical with) the sequential compile; the default ``jobs=1`` is the
    sequential pipeline, bit for bit.

    ``backend`` (``"object"`` | ``"kernel"``, default ``$REPRO_BACKEND``
    then ``"object"``) selects the query engine the returned workflow's
    :meth:`~CompiledWorkflow.scheduler`/:meth:`~CompiledWorkflow.schedules`
    use. ``"kernel"`` additionally lowers the compiled goal to its flat
    tables eagerly, so lowering errors surface here rather than at first
    query and the (memoized) program is warm for every later one. The
    compiled *value* is backend-independent.
    """
    from .kernel_backend import resolve_backend

    backend = resolve_backend(backend)
    if jobs != 1:
        from .parallel import compile_parallel, resolve_jobs

        if resolve_jobs(jobs) > 1:
            result = compile_parallel(goal, constraints, rules=rules,
                                      jobs=jobs, cache=cache, obs=obs)
            return _with_backend(result, backend)
    cache = CompileCache.coerce(cache)
    key = None
    if cache is not None:
        expanded_for_key = rules.expand(goal) if rules is not None else goal
        expanded_for_key = simplify(expanded_for_key)
        key = cache.key(expanded_for_key, tuple(constraints))
        if key is not None:
            hit = cache.load(key)
            if hit is not None:
                if obs is not None and obs.active and obs.metrics is not None:
                    obs.metrics.inc("compile.cache_hits")
                    _record_compile_metrics(obs.metrics, hit, None)
                return _with_backend(hit, backend)
        if obs is not None and obs.active and obs.metrics is not None:
            obs.metrics.inc("compile.cache_misses")

    if obs is not None and obs.active:
        result = _compile_observed(goal, constraints, rules, obs)
    else:
        expanded = rules.expand(goal) if rules is not None else goal
        expanded = simplify(expanded)
        check_unique_events(expanded)
        tokens = TokenFactory()
        applied = apply_all(list(constraints), expanded, tokens)
        compiled = excise(applied)
        result = CompiledWorkflow(
            source=expanded,
            constraints=tuple(constraints),
            applied=applied,
            goal=compiled,
        )
    if cache is not None and key is not None:
        cache.store(key, result)
    return _with_backend(result, backend)


def _with_backend(result: CompiledWorkflow, backend: str) -> CompiledWorkflow:
    """Stamp the resolved backend, pre-lowering the goal for ``kernel``."""
    if backend == "kernel" and result.consistent:
        from .kernel_backend import kernel_for

        kernel_for(result.goal)
    if result.backend == backend:
        return result
    return replace(result, backend=backend)


def _compile_observed(goal, constraints, rules, obs) -> CompiledWorkflow:
    """The instrumented pipeline (identical semantics, plus accounting)."""
    from ..obs.config import Observability  # noqa: F401 - documents the contract
    from .excise import ExciseStats

    tracer = obs.tracer
    metrics = obs.metrics
    stats = ExciseStats() if metrics is not None else None
    with tracer.span("compile", constraints=len(constraints)):
        with tracer.span("expand"):
            expanded = rules.expand(goal) if rules is not None else goal
            expanded = simplify(expanded)
            check_unique_events(expanded)
        tokens = TokenFactory()
        with tracer.span("apply") as apply_span:
            applied = apply_all(list(constraints), expanded, tokens,
                                tracer=tracer if tracer.enabled else None)
            apply_span.annotate(size=goal_size(applied))
        with tracer.span("excise") as excise_span:
            compiled = excise(applied, stats=stats)
            excise_span.annotate(size=goal_size(compiled))
    result = CompiledWorkflow(
        source=expanded,
        constraints=tuple(constraints),
        applied=applied,
        goal=compiled,
    )
    if metrics is not None:
        _record_compile_metrics(metrics, result, stats)
    return result


def _record_compile_metrics(metrics, compiled: CompiledWorkflow, stats) -> None:
    """Record the Theorem 5.11 accounting for one compilation."""
    from ..analysis.metrics import goal_stats
    from ..constraints.normalize import to_dnf

    source_size = goal_size(compiled.source)
    n = len(compiled.constraints)
    d = max((to_dnf(c).width for c in compiled.constraints), default=1)
    bound = (d ** n) * max(source_size, 1)
    metrics.set_gauge("compile.source_size", source_size)
    metrics.set_gauge("compile.applied_size", compiled.applied_size)
    metrics.set_gauge("compile.compiled_size", compiled.compiled_size)
    # DAG-aware accounting: what hash-consing actually allocated, and how
    # much of the d^N tree blow-up it absorbed.
    metrics.set_gauge("compile.applied_dag_size", compiled.applied_dag_size)
    metrics.set_gauge("compile.compiled_dag_size", compiled.compiled_dag_size)
    metrics.set_gauge("compile.sharing_ratio", compiled.sharing_ratio)
    metrics.set_gauge("compile.constraints_N", n)
    metrics.set_gauge("compile.arity_d", d)
    metrics.set_gauge("compile.bound_dN_G", bound)
    # The empirical side of Theorem 5.11: how much of the worst-case
    # O(d^N·|G|) budget this compilation actually used.
    metrics.set_gauge("compile.thm511_ratio", compiled.applied_size / bound)
    metrics.set_gauge("compile.consistent", int(compiled.consistent))
    if stats is not None:
        metrics.set_gauge("excise.knots", stats.knots)
        metrics.set_gauge("excise.local_choices", stats.local_choices)
        metrics.set_gauge("excise.entangled_choices", stats.entangled_choices)
        metrics.set_gauge("excise.combos_tried", stats.combos_tried)
        metrics.set_gauge("excise.combos_viable", stats.combos_viable)
    structure = goal_stats(compiled.goal)
    metrics.set_gauge("compiled.events", structure.events)
    metrics.set_gauge("compiled.choices", structure.choices)
    metrics.set_gauge("compiled.tokens", structure.tokens)
    metrics.set_gauge("compiled.parallel_width", structure.max_parallel_width)
