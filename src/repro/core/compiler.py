"""End-to-end workflow compilation: rules → Apply → Excise.

:func:`compile_workflow` is the main entry point of the library. It takes a
workflow specification — a concurrent-Horn goal (or a control flow graph,
via :mod:`repro.graph.translate`), an optional rule base of sub-workflow
definitions, and a set of CONSTR constraints — and produces a
:class:`CompiledWorkflow`: the "compressed explicit representation of all
allowed executions" of Section 4. From it one can

* test **consistency** (Theorem 5.8): the specification is consistent iff
  compilation did not collapse to ``¬path``;
* obtain a **pro-active scheduler** (:meth:`CompiledWorkflow.scheduler`)
  that knows, at every stage, exactly which events are eligible — no
  run-time constraint checking;
* enumerate allowed executions (each in time linear in the original
  graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint
from ..ctr.formulas import Goal, goal_size
from ..ctr.rules import RuleBase
from ..ctr.simplify import is_failure, simplify
from ..ctr.unique import check_unique_events
from ..errors import InconsistentWorkflowError
from .apply import apply_all
from .excise import excise
from .sync import TokenFactory

__all__ = ["CompiledWorkflow", "compile_workflow"]


@dataclass(frozen=True)
class CompiledWorkflow:
    """The result of compiling ``source ∧ constraints``.

    Attributes
    ----------
    source:
        The original (rule-expanded) goal ``G``.
    constraints:
        The constraint set ``C`` that was compiled in.
    applied:
        ``Apply(C, G)`` before knot removal — kept for size accounting
        (Theorem 5.11 measures this object).
    goal:
        ``Excise(Apply(C, G))`` — the executable compiled goal, or
        ``¬path`` when the specification is inconsistent.
    """

    source: Goal
    constraints: tuple[Constraint, ...]
    applied: Goal
    goal: Goal

    @property
    def consistent(self) -> bool:
        """Theorem 5.8: consistent iff Excise(Apply(C, G)) ≠ ¬path."""
        return not is_failure(self.goal)

    @property
    def applied_size(self) -> int:
        """``|Apply(C, G)|`` — the quantity bounded by Theorem 5.11."""
        return goal_size(self.applied)

    @property
    def compiled_size(self) -> int:
        return goal_size(self.goal)

    def require_consistent(self) -> "CompiledWorkflow":
        """Raise :class:`~repro.errors.InconsistentWorkflowError` if inconsistent."""
        if not self.consistent:
            raise InconsistentWorkflowError(culprit=self.source)
        return self

    def scheduler(self, test_hook=None):
        """A pro-active :class:`~repro.core.scheduler.Scheduler` over the compiled goal."""
        from .scheduler import Scheduler

        self.require_consistent()
        return Scheduler(self.goal, test_hook=test_hook)

    def schedules(self, limit: int = 200_000):
        """Iterate over all allowed event sequences (linear time per path)."""
        from .scheduler import Scheduler

        if not self.consistent:
            return iter(())
        return Scheduler(self.goal).enumerate_schedules(limit=limit)


def compile_workflow(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
) -> CompiledWorkflow:
    """Compile a workflow specification ``G ∧ C`` into executable form.

    ``rules`` (sub-workflow definitions) are inlined first; the expanded
    goal must satisfy the unique-event property (Definition 3.1), which is
    verified here and raises :class:`~repro.errors.UniqueEventError`
    otherwise.
    """
    expanded = rules.expand(goal) if rules is not None else goal
    expanded = simplify(expanded)
    check_unique_events(expanded)
    tokens = TokenFactory()
    applied = apply_all(list(constraints), expanded, tokens)
    compiled = excise(applied)
    return CompiledWorkflow(
        source=expanded,
        constraints=tuple(constraints),
        applied=applied,
        goal=compiled,
    )
