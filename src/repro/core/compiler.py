"""End-to-end workflow compilation: rules → Apply → Excise.

:func:`compile_workflow` is the main entry point of the library. It takes a
workflow specification — a concurrent-Horn goal (or a control flow graph,
via :mod:`repro.graph.translate`), an optional rule base of sub-workflow
definitions, and a set of CONSTR constraints — and produces a
:class:`CompiledWorkflow`: the "compressed explicit representation of all
allowed executions" of Section 4. From it one can

* test **consistency** (Theorem 5.8): the specification is consistent iff
  compilation did not collapse to ``¬path``;
* obtain a **pro-active scheduler** (:meth:`CompiledWorkflow.scheduler`)
  that knows, at every stage, exactly which events are eligible — no
  run-time constraint checking;
* enumerate allowed executions (each in time linear in the original
  graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint
from ..ctr.formulas import Goal, goal_size
from ..ctr.rules import RuleBase
from ..ctr.simplify import is_failure, simplify
from ..ctr.unique import check_unique_events
from ..errors import InconsistentWorkflowError
from .apply import apply_all
from .excise import excise
from .sync import TokenFactory

__all__ = ["CompiledWorkflow", "compile_workflow"]


@dataclass(frozen=True)
class CompiledWorkflow:
    """The result of compiling ``source ∧ constraints``.

    Attributes
    ----------
    source:
        The original (rule-expanded) goal ``G``.
    constraints:
        The constraint set ``C`` that was compiled in.
    applied:
        ``Apply(C, G)`` before knot removal — kept for size accounting
        (Theorem 5.11 measures this object).
    goal:
        ``Excise(Apply(C, G))`` — the executable compiled goal, or
        ``¬path`` when the specification is inconsistent.
    """

    source: Goal
    constraints: tuple[Constraint, ...]
    applied: Goal
    goal: Goal

    @property
    def consistent(self) -> bool:
        """Theorem 5.8: consistent iff Excise(Apply(C, G)) ≠ ¬path."""
        return not is_failure(self.goal)

    @property
    def applied_size(self) -> int:
        """``|Apply(C, G)|`` — the quantity bounded by Theorem 5.11."""
        return goal_size(self.applied)

    @property
    def compiled_size(self) -> int:
        return goal_size(self.goal)

    def require_consistent(self) -> "CompiledWorkflow":
        """Raise :class:`~repro.errors.InconsistentWorkflowError` if inconsistent."""
        if not self.consistent:
            raise InconsistentWorkflowError(culprit=self.source)
        return self

    def scheduler(self, test_hook=None):
        """A pro-active :class:`~repro.core.scheduler.Scheduler` over the compiled goal."""
        from .scheduler import Scheduler

        self.require_consistent()
        return Scheduler(self.goal, test_hook=test_hook)

    def schedules(self, limit: int = 200_000):
        """Iterate over all allowed event sequences (linear time per path)."""
        from .scheduler import Scheduler

        if not self.consistent:
            return iter(())
        return Scheduler(self.goal).enumerate_schedules(limit=limit)


def compile_workflow(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
    obs=None,
) -> CompiledWorkflow:
    """Compile a workflow specification ``G ∧ C`` into executable form.

    ``rules`` (sub-workflow definitions) are inlined first; the expanded
    goal must satisfy the unique-event property (Definition 3.1), which is
    verified here and raises :class:`~repro.errors.UniqueEventError`
    otherwise.

    ``obs`` (an :class:`~repro.obs.config.Observability`) times each phase
    of the pipeline as a span (``compile`` → ``expand``/``apply``/
    ``excise``) and records the size accounting of Theorem 5.11 — goal
    size before and after Apply and Excise, knots excised, the constraint
    count ``N`` and arity ``d``, and the measured ``|Apply(C,G)| /
    (d^N·|G|)`` ratio — into the metrics registry on every compile.
    """
    if obs is not None and obs.active:
        return _compile_observed(goal, constraints, rules, obs)
    expanded = rules.expand(goal) if rules is not None else goal
    expanded = simplify(expanded)
    check_unique_events(expanded)
    tokens = TokenFactory()
    applied = apply_all(list(constraints), expanded, tokens)
    compiled = excise(applied)
    return CompiledWorkflow(
        source=expanded,
        constraints=tuple(constraints),
        applied=applied,
        goal=compiled,
    )


def _compile_observed(goal, constraints, rules, obs) -> CompiledWorkflow:
    """The instrumented pipeline (identical semantics, plus accounting)."""
    from ..obs.config import Observability  # noqa: F401 - documents the contract
    from .excise import ExciseStats

    tracer = obs.tracer
    metrics = obs.metrics
    stats = ExciseStats() if metrics is not None else None
    with tracer.span("compile", constraints=len(constraints)):
        with tracer.span("expand"):
            expanded = rules.expand(goal) if rules is not None else goal
            expanded = simplify(expanded)
            check_unique_events(expanded)
        tokens = TokenFactory()
        with tracer.span("apply") as apply_span:
            applied = apply_all(list(constraints), expanded, tokens,
                                tracer=tracer if tracer.enabled else None)
            apply_span.annotate(size=goal_size(applied))
        with tracer.span("excise") as excise_span:
            compiled = excise(applied, stats=stats)
            excise_span.annotate(size=goal_size(compiled))
    result = CompiledWorkflow(
        source=expanded,
        constraints=tuple(constraints),
        applied=applied,
        goal=compiled,
    )
    if metrics is not None:
        _record_compile_metrics(metrics, result, stats)
    return result


def _record_compile_metrics(metrics, compiled: CompiledWorkflow, stats) -> None:
    """Record the Theorem 5.11 accounting for one compilation."""
    from ..analysis.metrics import goal_stats
    from ..constraints.normalize import to_dnf

    source_size = goal_size(compiled.source)
    n = len(compiled.constraints)
    d = max((to_dnf(c).width for c in compiled.constraints), default=1)
    bound = (d ** n) * max(source_size, 1)
    metrics.set_gauge("compile.source_size", source_size)
    metrics.set_gauge("compile.applied_size", compiled.applied_size)
    metrics.set_gauge("compile.compiled_size", compiled.compiled_size)
    metrics.set_gauge("compile.constraints_N", n)
    metrics.set_gauge("compile.arity_d", d)
    metrics.set_gauge("compile.bound_dN_G", bound)
    # The empirical side of Theorem 5.11: how much of the worst-case
    # O(d^N·|G|) budget this compilation actually used.
    metrics.set_gauge("compile.thm511_ratio", compiled.applied_size / bound)
    metrics.set_gauge("compile.consistent", int(compiled.consistent))
    if stats is not None:
        metrics.set_gauge("excise.knots", stats.knots)
        metrics.set_gauge("excise.local_choices", stats.local_choices)
        metrics.set_gauge("excise.entangled_choices", stats.entangled_choices)
        metrics.set_gauge("excise.combos_tried", stats.combos_tried)
        metrics.set_gauge("excise.combos_viable", stats.combos_viable)
    structure = goal_stats(compiled.goal)
    metrics.set_gauge("compiled.events", structure.events)
    metrics.set_gauge("compiled.choices", structure.choices)
    metrics.set_gauge("compiled.tokens", structure.tokens)
    metrics.set_gauge("compiled.parallel_width", structure.max_parallel_width)
