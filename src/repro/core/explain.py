"""Diagnostics: explain why an execution is not allowed.

The compiled goal silently excludes illegal behaviour — which is the
point — but when an operator asks "why can't the workflow do X?", the
specification should answer. :func:`explain_rejection` decomposes a
rejected event sequence into the reasons:

* events that do not belong to the workflow at all;
* a prefix that falls outside the control flow graph (with the exact
  position where it diverges and what was eligible instead);
* the specific constraints the sequence violates (by name of their
  textual rendering), even when the control flow would allow it.

This reuses the paper's machinery — the uncompiled goal's step semantics
for control-flow conformance and polynomial trace checking for the
constraints — so the explanation is sound by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constraints.algebra import Constraint
from ..constraints.satisfy import satisfies
from ..ctr.formulas import event_names
from .compiler import CompiledWorkflow
from .scheduler import Scheduler

__all__ = ["Rejection", "explain_rejection", "is_allowed"]


@dataclass(frozen=True)
class Rejection:
    """Structured explanation for a rejected event sequence."""

    sequence: tuple[str, ...]
    allowed: bool
    unknown_events: tuple[str, ...] = ()
    diverges_at: int | None = None
    eligible_instead: frozenset[str] = frozenset()
    incomplete: bool = False
    violated_constraints: tuple[Constraint, ...] = ()
    notes: tuple[str, ...] = field(default=())

    def __bool__(self) -> bool:
        return self.allowed

    def describe(self) -> str:
        """A readable multi-line explanation."""
        if self.allowed:
            return "the sequence is an allowed execution"
        lines = [f"sequence rejected: {' -> '.join(self.sequence) or '<empty>'}"]
        if self.unknown_events:
            lines.append("  unknown events: " + ", ".join(self.unknown_events))
        if self.diverges_at is not None:
            offending = self.sequence[self.diverges_at]
            options = ", ".join(sorted(self.eligible_instead)) or "<none - finished>"
            lines.append(
                f"  control flow diverges at step {self.diverges_at + 1} "
                f"({offending!r}); eligible instead: {options}"
            )
        if self.incomplete:
            lines.append("  the sequence stops before the workflow can finish")
        for constraint in self.violated_constraints:
            lines.append(f"  violates constraint: {constraint}")
        lines.extend("  " + note for note in self.notes)
        return "\n".join(lines)


def is_allowed(compiled: CompiledWorkflow, sequence: tuple[str, ...]) -> bool:
    """Is ``sequence`` a complete allowed execution of the compiled workflow?"""
    scheduler = Scheduler(compiled.goal)
    try:
        for event in sequence:
            scheduler.fire(event)
    except Exception:
        return False
    return scheduler.can_finish()


def explain_rejection(
    compiled: CompiledWorkflow, sequence: tuple[str, ...]
) -> Rejection:
    """Explain why ``sequence`` is (or is not) an allowed execution."""
    sequence = tuple(sequence)
    if is_allowed(compiled, sequence):
        return Rejection(sequence=sequence, allowed=True)

    vocabulary = event_names(compiled.source)
    unknown = tuple(e for e in sequence if e not in vocabulary)

    # Control-flow conformance against the *uncompiled* goal.
    diverges_at: int | None = None
    eligible_instead: frozenset[str] = frozenset()
    incomplete = False
    flow = Scheduler(compiled.source)
    for index, event in enumerate(sequence):
        eligible = flow.eligible()
        if event not in eligible:
            diverges_at = index
            eligible_instead = eligible
            break
        flow.fire(event)
    else:
        incomplete = not flow.can_finish()

    # Constraint conformance (meaningful when the flow itself accepts).
    violated: tuple[Constraint, ...] = ()
    if diverges_at is None and not incomplete:
        violated = tuple(
            c for c in compiled.constraints if not satisfies(sequence, c)
        )

    notes: tuple[str, ...] = ()
    if diverges_at is None and not incomplete and not violated and not unknown:
        notes = (
            "every declared constraint holds and the control flow accepts "
            "the sequence; it is excluded by the interaction of several "
            "constraints with the remaining choices (compile-time pruning)",
        )

    return Rejection(
        sequence=sequence,
        allowed=False,
        unknown_events=unknown,
        diverges_at=diverges_at,
        eligible_instead=eligible_instead,
        incomplete=incomplete,
        violated_constraints=violated,
        notes=notes,
    )
