"""The workflow run-time engine: compiled goal + transition oracle + database.

The engine closes the loop the paper's title promises — *specifying,
analyzing, and executing* workflows in one formalism. It drives a
:class:`~repro.core.scheduler.Scheduler` over the compiled goal, and for
each fired event asks the :class:`~repro.db.oracle.TransitionOracle` to
perform the corresponding elementary update against a
:class:`~repro.db.state.Database`. Transition conditions
(:class:`~repro.ctr.formulas.Test` nodes) are evaluated against the live
database, and failure atomicity — which "is built into CTR semantics" — is
provided by rolling the database back to its initial snapshot when an
activity fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..ctr.formulas import Test
from ..db.oracle import TransitionOracle
from ..db.state import Database
from ..errors import ExecutionError, SchedulingError
from .compiler import CompiledWorkflow

__all__ = ["WorkflowEngine", "ExecutionReport", "first_strategy", "random_strategy"]

Strategy = Callable[[frozenset[str], Database], str]


def first_strategy(eligible: frozenset[str], db: Database) -> str:
    """Deterministic strategy: fire the lexicographically smallest event."""
    return min(eligible)


def random_strategy(seed: int | None = None) -> Strategy:
    """A seeded random strategy (useful to explore different interleavings)."""
    rng = random.Random(seed)

    def pick(eligible: frozenset[str], db: Database) -> str:
        return rng.choice(sorted(eligible))

    return pick


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one engine run."""

    schedule: tuple[str, ...]
    database: Database
    completed: bool

    def __bool__(self) -> bool:
        return self.completed


class WorkflowEngine:
    """Executes a compiled workflow against a database.

    Parameters
    ----------
    compiled:
        A consistent :class:`~repro.core.compiler.CompiledWorkflow`.
    oracle:
        Maps event names to elementary updates; unregistered events just
        log themselves (assumption (2)).
    db:
        The initial database state (fresh and empty by default).
    strategy:
        Chooses among eligible events; :func:`first_strategy` by default.
    """

    def __init__(
        self,
        compiled: CompiledWorkflow,
        oracle: TransitionOracle | None = None,
        db: Database | None = None,
        strategy: Strategy | None = None,
    ):
        compiled.require_consistent()
        self.compiled = compiled
        self.oracle = oracle or TransitionOracle()
        self.db = db or Database()
        self.strategy = strategy or first_strategy
        self._scheduler = compiled.scheduler(test_hook=self._evaluate_test)

    # -- transition conditions -------------------------------------------------

    def _evaluate_test(self, test: Test) -> bool:
        if test.predicate is None:
            return True
        return bool(test.predicate(self.db))

    # -- stepping ----------------------------------------------------------------

    def eligible(self) -> frozenset[str]:
        """Events that may start now, under the current database state."""
        return self._scheduler.eligible()

    def fire(self, event: str) -> None:
        """Fire one event: advance the schedule and apply the update."""
        self._scheduler.fire(event)
        try:
            self.oracle.execute(event, self.db)
        except Exception as exc:  # noqa: BLE001 - any activity failure aborts
            raise ExecutionError(event, exc) from exc

    def run(self, max_steps: int = 100_000) -> ExecutionReport:
        """Drive the workflow to completion with failure atomicity.

        On activity failure the database (including its event log) is
        rolled back to the pre-run state and the error is re-raised.
        """
        checkpoint = self.db.snapshot()
        try:
            for _ in range(max_steps):
                events = self.eligible()
                if not events:
                    if self._scheduler.can_finish():
                        return ExecutionReport(
                            schedule=self._scheduler.history,
                            database=self.db,
                            completed=True,
                        )
                    raise SchedulingError(
                        "workflow is stuck: no eligible event and cannot finish"
                    )
                self.fire(self.strategy(events, self.db))
            raise SchedulingError(f"workflow did not finish within {max_steps} steps")
        except ExecutionError:
            self.db.restore(checkpoint)
            raise
