"""The workflow run-time engine: compiled goal + transition oracle + database.

The engine closes the loop the paper's title promises — *specifying,
analyzing, and executing* workflows in one formalism. It drives a
:class:`~repro.core.scheduler.Scheduler` over the compiled goal, and for
each fired event asks the :class:`~repro.db.oracle.TransitionOracle` to
perform the corresponding elementary update against a
:class:`~repro.db.state.Database`. Transition conditions
(:class:`~repro.ctr.formulas.Test` nodes) are evaluated against the live
database.

Failure handling is layered (policies live in
:mod:`repro.core.resilience`):

1. **retry** — each activity runs under its
   :class:`~repro.core.resilience.RetryPolicy`: failed (or timed-out)
   attempts are rolled back and retried with fixed/exponential backoff on
   the engine's injectable clock;
2. **failover** — when an activity fails permanently, the engine consults
   the compiled goal for a ``∨``-alternative path that avoids the dead
   event (:meth:`~repro.core.scheduler.Scheduler.viable_events` — the
   compiled goal encodes *all* legal continuations, including the ones
   needed when the happy path dies), rolls the database back to the
   nearest viable choice-point snapshot, and reroutes.  Saga goals
   (:mod:`repro.core.saga`) compensate through exactly this mechanism:
   the ``abort`` branch is the alternative;
3. **atomic abort** — when no alternative exists anywhere, the database
   (including its event log) is restored to the pre-run snapshot and the
   error is re-raised: the paper's "failure atomicity is built into CTR
   semantics".

Restore points are journaled only at *choice points* (steps with more than
one eligible event): between choice points every step is forced, so no
alternative can open up there — which keeps the happy-path overhead of the
resilience layer near zero (benchmarked in
``benchmarks/bench_resilience.py``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..ctr.formulas import Test
from ..db.oracle import TransitionOracle
from ..db.state import Database
from ..errors import ActivityTimeoutError, RetryExhaustedError, SchedulingError
from ..obs.config import OBS_DISABLED, Observability
from .compiler import CompiledWorkflow
from .resilience import (
    Clock,
    FailureRecord,
    RerouteRecord,
    ResiliencePolicy,
    VirtualClock,
)
from .scheduler import SchedulerMark

__all__ = ["WorkflowEngine", "ExecutionReport", "first_strategy", "random_strategy"]

Strategy = Callable[[frozenset[str], Database], str]

Snapshot = dict
_RestorePoint = tuple[SchedulerMark, Snapshot]


def first_strategy(eligible: frozenset[str], db: Database) -> str:
    """Deterministic strategy: fire the lexicographically smallest event."""
    return min(eligible)


def random_strategy(seed: int | None = None) -> Strategy:
    """A seeded random strategy (useful to explore different interleavings)."""
    rng = random.Random(seed)

    def pick(eligible: frozenset[str], db: Database) -> str:
        return rng.choice(sorted(eligible))

    return pick


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one engine run, with structured resilience accounting.

    ``attempts`` maps each executed event to how many times its update ran
    (replays after a reroute count too); ``failures`` records every failed
    attempt that the run survived; ``reroutes`` every choice-branch
    failover taken; ``elapsed`` the run's duration on the engine clock
    (virtual seconds under the default
    :class:`~repro.core.resilience.VirtualClock`, which advances only on
    backoff sleeps and injected latency); ``backoff`` how much of that was
    spent sleeping between retry attempts.
    """

    schedule: tuple[str, ...]
    database: Database
    completed: bool
    attempts: Mapping[str, int] = field(default_factory=dict)
    failures: tuple[FailureRecord, ...] = ()
    reroutes: tuple[RerouteRecord, ...] = ()
    elapsed: float = 0.0
    backoff: float = 0.0

    def __bool__(self) -> bool:
        return self.completed

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    @property
    def retries(self) -> int:
        """Attempts beyond the first, summed over events."""
        return sum(n - 1 for n in self.attempts.values() if n > 1)

    @property
    def failures_survived(self) -> int:
        return len(self.failures)

    def summary(self) -> str:
        """A human-readable resilience summary; empty for untroubled runs."""
        if not self.failures and not self.reroutes and not self.retries:
            return ""
        lines = [
            f"resilience: {self.total_attempts} attempts over "
            f"{len(self.attempts)} events, {self.failures_survived} failure(s) "
            f"survived, {len(self.reroutes)} reroute(s), "
            f"{self.elapsed:g}s on the engine clock"
        ]
        if self.backoff:
            lines.append(f"  backoff: {self.backoff:g}s slept between retries")
        retried = {e: n for e, n in sorted(self.attempts.items()) if n > 1}
        if retried:
            lines.append(
                "  retried: " + ", ".join(f"{e} x{n}" for e, n in retried.items())
            )
        for reroute in self.reroutes:
            dropped = (
                " discarding " + ", ".join(reroute.discarded)
                if reroute.discarded
                else ""
            )
            target = f" via {reroute.target!r}" if reroute.target else ""
            lines.append(
                f"  reroute: {reroute.failed_event!r} died; resumed from "
                f"schedule position {reroute.resumed_depth}{target}{dropped}"
            )
        return "\n".join(lines)


class WorkflowEngine:
    """Executes a compiled workflow against a database.

    Parameters
    ----------
    compiled:
        A consistent :class:`~repro.core.compiler.CompiledWorkflow`.
    oracle:
        Maps event names to elementary updates; unregistered events just
        log themselves (assumption (2)). A
        :class:`~repro.core.resilience.ChaosOracle` drops in here.
    db:
        The initial database state (fresh and empty by default).
    strategy:
        Chooses among eligible events; :func:`first_strategy` by default.
    policies:
        Per-activity :class:`~repro.core.resilience.RetryPolicy` registry;
        the default registry retries nothing (seed-engine semantics).
    clock:
        Time source for backoff and timeouts; a deterministic
        :class:`~repro.core.resilience.VirtualClock` by default (pass
        :class:`~repro.core.resilience.SystemClock` for wall-clock).
    obs:
        An :class:`~repro.obs.config.Observability` bundle — tracer,
        metrics registry, and flight recorder. The default is the disabled
        singleton, under which every hook short-circuits to nothing
        (benchmarked in ``benchmarks/bench_observability.py``).
    """

    def __init__(
        self,
        compiled: CompiledWorkflow,
        oracle: TransitionOracle | None = None,
        db: Database | None = None,
        strategy: Strategy | None = None,
        policies: ResiliencePolicy | None = None,
        clock: Clock | None = None,
        obs: Observability | None = None,
    ):
        compiled.require_consistent()
        self.compiled = compiled
        self.oracle = oracle or TransitionOracle()
        self.db = db or Database()
        self.strategy = strategy or first_strategy
        # Not `or`: an empty registry is falsy but may carry a default policy.
        self.policies = policies if policies is not None else ResiliencePolicy()
        self.clock: Clock = clock or VirtualClock()
        self.obs = obs if obs is not None else OBS_DISABLED
        self._scheduler = compiled.scheduler(test_hook=self._evaluate_test)
        self._dead: set[str] = set()
        self._attempts: dict[str, int] = {}
        self._failures: list[FailureRecord] = []
        self._reroutes: list[RerouteRecord] = []
        self._journal: list[_RestorePoint] = []
        self._backoff = 0.0
        self._untargeted = 0  # trailing reroute records awaiting their target

    # -- transition conditions -------------------------------------------------

    def _evaluate_test(self, test: Test) -> bool:
        if test.predicate is None:
            return True
        return bool(test.predicate(self.db))

    # -- stepping ----------------------------------------------------------------

    @property
    def dead_events(self) -> frozenset[str]:
        """Events that failed permanently and were routed around."""
        return frozenset(self._dead)

    def eligible(self) -> frozenset[str]:
        """Events that may start now, under the current database state.

        Once an event has died permanently, branches that cannot complete
        without it are filtered out, so callers are only ever offered
        events that keep the run viable.
        """
        if self._dead:
            return self._scheduler.viable_events(frozenset(self._dead))
        return self._scheduler.eligible()

    def fire(self, event: str) -> None:
        """Fire one event: advance the schedule and apply the update.

        The event's retry policy applies; on permanent failure the
        scheduler is rewound (the event did not happen) and
        :class:`~repro.errors.RetryExhaustedError` is raised — no failover
        is attempted on this manual path, use :meth:`run` for that.
        """
        eligible = self._scheduler.eligible()
        mark = self._scheduler.mark()
        self._scheduler.fire(event)
        try:
            self._attempt(event, eligible)
        except RetryExhaustedError:
            self._scheduler.rewind(mark)
            raise

    def run(self, max_steps: int = 100_000) -> ExecutionReport:
        """Drive the workflow to completion with retry, failover, and atomicity.

        On any abnormal exit — a permanent activity failure with no viable
        alternative, a stuck scheduler, or the step limit — the database
        (including its event log) is rolled back to the pre-run state and
        the error is re-raised.
        """
        started = self.clock.now()
        self._journal.clear()  # restore points from an earlier run are stale
        checkpoint = self.db.snapshot()
        origin = self._scheduler.mark()
        obs = self.obs
        try:
            if obs.active and obs.tracer.enabled:
                with obs.tracer.span("engine.run") as span:
                    self._drive(max_steps, checkpoint, origin)
                    span.annotate(steps=len(self._scheduler.history))
            else:
                self._drive(max_steps, checkpoint, origin)
        except Exception:
            self.db.restore(checkpoint)
            if obs.active and obs.metrics is not None:
                self._flush_metrics(aborted=True)
            raise
        if obs.active and obs.metrics is not None:
            self._flush_metrics(aborted=False)
        return ExecutionReport(
            schedule=self._scheduler.history,
            database=self.db,
            completed=True,
            attempts=dict(self._attempts),
            failures=tuple(self._failures),
            reroutes=tuple(self._reroutes),
            elapsed=self.clock.now() - started,
            backoff=self._backoff,
        )

    def _flush_metrics(self, aborted: bool) -> None:
        """Record end-of-run gauges (scheduler work, backoff, abort flag)."""
        metrics = self.obs.metrics
        stats = self._scheduler.stats
        metrics.set_gauge("scheduler.steps", stats.steps)
        metrics.set_gauge("scheduler.eligible_calls", stats.eligible_calls)
        metrics.set_gauge("scheduler.configs_expanded", stats.configs_expanded)
        metrics.set_gauge("scheduler.rewinds", stats.rewinds)
        metrics.set_gauge("scheduler.viability_checks", stats.viability_checks)
        metrics.set_gauge("scheduler.viability_nodes", stats.viability_nodes)
        metrics.set_gauge("engine.backoff_seconds", self._backoff)
        metrics.set_gauge("engine.aborted", int(aborted))

    # -- the drive loop ----------------------------------------------------------

    def _drive(self, max_steps: int, checkpoint: Snapshot,
               origin: SchedulerMark) -> None:
        scheduler = self._scheduler
        strategy = self.strategy
        # Resolve the observability sinks once: on the disabled singleton all
        # three locals are None and the loop body below reduces to the
        # uninstrumented seed engine (the ≤3% budget of
        # benchmarks/bench_observability.py rides on this).
        obs = self.obs
        tracer = obs.tracer if obs.active and obs.tracer.enabled else None
        recorder = obs.recorder if obs.active else None
        metrics = obs.metrics if obs.active else None
        step = 0
        for _ in range(max_steps):
            if self._dead:
                events = scheduler.viable_events(frozenset(self._dead))
            else:
                events = scheduler.eligible()
            if not events:
                if scheduler.can_finish():
                    return
                raise SchedulingError(
                    "workflow is stuck: no eligible event and cannot finish"
                )
            event = strategy(events, self.db)
            if len(events) > 1:
                # A choice point: journal a restore target for failover.
                self._journal.append((scheduler.mark(), self.db.snapshot()))
                if metrics is not None:
                    metrics.inc("engine.choice_points")
                    metrics.inc("engine.snapshots")
            scheduler.fire(event)
            try:
                if tracer is not None:
                    with tracer.span("engine.step", event=event,
                                     eligible=len(events)):
                        self._attempt(event, events)
                else:
                    self._attempt(event, events)
            except RetryExhaustedError as exc:
                if recorder is not None:
                    cause = exc.cause if exc.cause is not None else exc
                    recorder.record(step, events, event,
                                    f"dead:{type(cause).__name__}",
                                    self.db.digest())
                step += 1
                self._failover(exc, checkpoint, origin)
                if recorder is not None:
                    last = self._reroutes[-1]
                    recorder.record_reroute(last.failed_event,
                                            last.resumed_depth, last.discarded)
                continue
            if recorder is not None:
                recorder.record(step, events, event, "ok", self.db.digest())
            step += 1
            if self._untargeted:
                # The first event fired after a failover names the branch
                # the reroute actually took; backfill the pending records.
                start = len(self._reroutes) - self._untargeted
                for i in range(start, len(self._reroutes)):
                    self._reroutes[i] = replace(self._reroutes[i], target=event)
                self._untargeted = 0
        raise SchedulingError(f"workflow did not finish within {max_steps} steps")

    def _attempt(self, event: str, eligible: frozenset[str]) -> None:
        """Run ``event``'s update under its retry policy (per-attempt atomic)."""
        policy = self.policies.policy_for(event)
        attempts = self._attempts
        attempts[event] = attempts.get(event, 0) + 1
        obs = self.obs
        metrics = obs.metrics if obs.active else None
        tracer = obs.tracer if obs.active and obs.tracer.enabled else None
        if not policy.needs_attempt_snapshot:
            # Single attempt, no timeout: no snapshot, no clock, no loop —
            # this keeps the fault-free happy path within the overhead
            # budget (see benchmarks/bench_resilience.py R1).
            try:
                if metrics is None and tracer is None:
                    self.oracle.execute(event, self.db)
                else:
                    self._observed_execute(event, 1, tracer, metrics)
                return
            except Exception as exc:  # noqa: BLE001 - any activity failure counts
                self._failures.append(
                    FailureRecord(event, 1, type(exc).__name__, str(exc))
                )
                if metrics is not None:
                    metrics.inc("engine.failures")
                    metrics.inc("engine.retries_exhausted")
                raise RetryExhaustedError(
                    event, 1, exc,
                    schedule=self._scheduler.history,
                    eligible=eligible,
                ) from exc
        snapshot = self.db.snapshot()
        if metrics is not None:
            metrics.inc("engine.snapshots")
        last: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                attempts[event] = attempts.get(event, 0) + 1
            begin = self.clock.now()
            try:
                if metrics is None and tracer is None:
                    self.oracle.execute(event, self.db)
                else:
                    self._observed_execute(event, attempt, tracer, metrics)
                elapsed = self.clock.now() - begin
                if policy.timeout is not None and elapsed > policy.timeout:
                    raise ActivityTimeoutError(event, elapsed, policy.timeout, attempt)
                return
            except Exception as exc:  # noqa: BLE001 - any activity failure counts
                last = exc
                self._failures.append(
                    FailureRecord(event, attempt, type(exc).__name__, str(exc))
                )
                self.db.restore(snapshot)
                if metrics is not None:
                    metrics.inc("engine.failures")
                    metrics.inc("engine.rollbacks")
                if attempt < policy.max_attempts:
                    delay = policy.delay(attempt)
                    self._backoff += delay
                    self.clock.sleep(delay)
        if metrics is not None:
            metrics.inc("engine.retries_exhausted")
        raise RetryExhaustedError(
            event,
            policy.max_attempts,
            last,
            schedule=self._scheduler.history,
            eligible=eligible,
        )

    def _observed_execute(self, event: str, attempt: int, tracer, metrics) -> None:
        """One oracle call under a span and/or a per-activity latency histogram."""
        if tracer is not None:
            with tracer.span("engine.attempt", event=event, attempt=attempt):
                self._timed_execute(event, metrics)
        else:
            self._timed_execute(event, metrics)

    def _timed_execute(self, event: str, metrics) -> None:
        if metrics is None:
            self.oracle.execute(event, self.db)
            return
        metrics.inc("engine.attempts")
        begin = time.perf_counter()
        try:
            self.oracle.execute(event, self.db)
        finally:
            metrics.observe(f"latency.{event}", time.perf_counter() - begin)

    def _failover(self, exc: RetryExhaustedError, checkpoint: Snapshot,
                  origin: SchedulerMark) -> None:
        """Reroute around a permanently-failed event, or abort atomically.

        Walks the journaled choice points from newest to oldest (then the
        run origin), looking for the latest state from which the compiled
        goal can still complete without any dead event. Found: restore the
        database to that snapshot, rewind the scheduler, record the
        reroute, and let :meth:`_drive` continue — the viability-filtered
        eligible set now steers it down the surviving ``∨``-branch. Not
        found: re-raise with the reroute diagnostics attached (the caller
        restores the pre-run checkpoint).
        """
        failed = exc.activity
        self._dead.add(failed)
        avoid = frozenset(self._dead)
        failed_history = self._scheduler.history  # ends with the failed event
        for index in range(len(self._journal) - 1, -2, -1):
            mark, snapshot = self._journal[index] if index >= 0 else (origin, checkpoint)
            self._scheduler.rewind(mark)
            if self._scheduler.viable(avoid):
                self.db.restore(snapshot)
                del self._journal[max(index, 0):]
                self._reroutes.append(
                    RerouteRecord(
                        failed_event=failed,
                        discarded=failed_history[mark.depth:-1],
                        resumed_depth=mark.depth,
                    )
                )
                self._untargeted += 1
                if self.obs.active and self.obs.metrics is not None:
                    self.obs.metrics.inc("engine.reroutes")
                    self.obs.metrics.inc("engine.rollbacks")
                return
        self._scheduler.rewind(origin)
        raise RetryExhaustedError(
            failed,
            exc.attempts,
            exc.cause,
            schedule=failed_history,
            eligible=exc.eligible,
            dead=avoid,
        ) from exc.cause
