"""The paper's primary contribution: the Apply/Excise compiler and what it enables.

* :mod:`~repro.core.apply` / :mod:`~repro.core.sync` — compiling CONSTR
  constraints into control flow graphs (Section 5);
* :mod:`~repro.core.excise` — knot removal;
* :mod:`~repro.core.compiler` — the end-to-end pipeline;
* :mod:`~repro.core.verify` — consistency / verification / redundancy
  (Theorems 5.8–5.10);
* :mod:`~repro.core.scheduler` — pro-active scheduling (Section 4);
* :mod:`~repro.core.engine` — run-time execution against database states.
"""

from .apply import apply_all, apply_constraint
from .audit import AuditResult, audit_execution
from .modular import ScopedConstraints, compile_modular
from .saga import SagaStep, saga_goal, saga_invariants
from .static import (
    WorkflowReport,
    analyze,
    dead_activities,
    guaranteed_orderings,
    mandatory_events,
    possible_events,
)
from .compiler import CompileCache, CompiledWorkflow, compile_workflow
from .engine import ExecutionReport, WorkflowEngine, first_strategy, random_strategy
from .excise import ExciseStats, excise, flat_executable, has_knot
from .explain import Rejection, explain_rejection, is_allowed
from .incremental import add_constraint, add_constraints
from .parallel import (
    ConsistencyOutcome,
    FanoutStats,
    check_consistency,
    compile_parallel,
    resolve_jobs,
    shutdown_pool,
)
from .resilience import (
    ChaosOracle,
    FailureRecord,
    FaultInjected,
    RerouteRecord,
    ResiliencePolicy,
    RetryPolicy,
    SystemClock,
    VirtualClock,
)
from .scheduler import Scheduler, SchedulerMark, SchedulerStats, seeded_strategy
from .sync import TokenFactory, sync_order
from .verify import (
    VerificationResult,
    is_consistent,
    is_redundant,
    redundant_constraints,
    verify_properties,
    verify_property,
)

__all__ = [
    "apply_constraint",
    "apply_all",
    "sync_order",
    "TokenFactory",
    "excise",
    "ExciseStats",
    "has_knot",
    "flat_executable",
    "compile_workflow",
    "CompiledWorkflow",
    "CompileCache",
    "Scheduler",
    "SchedulerMark",
    "SchedulerStats",
    "WorkflowEngine",
    "ExecutionReport",
    "first_strategy",
    "random_strategy",
    "ResiliencePolicy",
    "RetryPolicy",
    "ChaosOracle",
    "FaultInjected",
    "FailureRecord",
    "RerouteRecord",
    "VirtualClock",
    "SystemClock",
    "is_consistent",
    "verify_property",
    "verify_properties",
    "VerificationResult",
    "is_redundant",
    "redundant_constraints",
    "check_consistency",
    "compile_parallel",
    "ConsistencyOutcome",
    "FanoutStats",
    "resolve_jobs",
    "shutdown_pool",
    "seeded_strategy",
    "compile_modular",
    "ScopedConstraints",
    "SagaStep",
    "saga_goal",
    "saga_invariants",
    "analyze",
    "WorkflowReport",
    "possible_events",
    "mandatory_events",
    "dead_activities",
    "guaranteed_orderings",
    "explain_rejection",
    "Rejection",
    "is_allowed",
    "add_constraint",
    "add_constraints",
    "audit_execution",
    "AuditResult",
]
