"""Parallel verification: DNF disjunct fan-out across a process pool.

Proposition 4.1 makes consistency/verification NP-complete *in the
constraint set*, and Theorem 5.11's ``O(d^N·|G|)`` blow-up lives entirely
in the ``C₁ ∨ C₂`` case of Apply. That disjunct space is embarrassingly
parallel: with ``C = δ₁ ∧ … ∧ δN`` split into ``∏dᵢ`` pure-conjunctive
branches (:func:`repro.constraints.normalize.split_disjuncts`),

    ``Excise(Apply(C, G)) ≠ ¬path``  iff  some single branch ``b`` has
    ``Excise(Apply(b, G)) ≠ ¬path``,

so each branch compiles and excises independently, with early exit on the
first surviving branch (consistency) or first counterexample branch
(verification). This module is the fan-out layer:

* :func:`check_consistency` — chunked work-stealing probe of the branch
  space over a :class:`~concurrent.futures.ProcessPoolExecutor`, with
  first-success cancellation (pending futures cancelled, running chunks
  drained);
* :func:`verify_properties` — the batch API: each property's full
  sequential :func:`~repro.core.verify.verify_property` runs on its own
  worker, so results are bit-for-bit identical to ``jobs=1`` by
  construction (same code, same seed, same cache keys);
* :func:`redundant_constraints` — Theorem 5.10 for every constraint at
  once; today a sequential loop of N independent checks, here one worker
  per constraint;
* :func:`compile_parallel` — whole-workflow compilation assembled as the
  ``∨`` of per-branch compiles. Trace-equivalent to the sequential
  compile (same execution set, Props 5.2/5.4/5.6) but *not* structurally
  identical — branch token names differ — so it is never stored under the
  sequential result's cache key.

Workers share the persistent :class:`~repro.core.compiler.CompileCache`
by directory: each branch's compile is content-addressed under its own
``(goal, branch)`` key, so warm re-verification is a per-disjunct disk
hit in every process. Goals and constraints cross the process boundary by
pickle and re-intern on arrival (hash-consed constructors), so workers
receive maximally shared DAGs.

Determinism contract: ``jobs=1`` is exactly the sequential code path.
``jobs=N`` returns identical booleans (consistency) and identical
:class:`~repro.core.verify.VerificationResult`s — when a property fails,
the early-exit probe only decides *that* it fails; the canonical most
general counterexample is then materialized by one sequential compile
(cache-assisted), so ``holds``/``counterexample``/``witness`` match
``jobs=1`` bit for bit.

The pool is a lazily created, reused singleton (one fork per worker per
process lifetime, not per call); ``REPRO_JOBS`` supplies the default
degree when a caller passes ``jobs=None``.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..constraints.algebra import Constraint
from ..constraints.normalize import ConstraintSplit, negate, split_disjuncts
from ..ctr.formulas import NEG_PATH, Goal, alt
from ..ctr.rules import RuleBase
from ..ctr.simplify import simplify
from ..ctr.unique import check_unique_events
from .compiler import CompileCache, CompiledWorkflow, compile_workflow

__all__ = [
    "FanoutStats",
    "ConsistencyOutcome",
    "resolve_jobs",
    "check_consistency",
    "verify_properties",
    "redundant_constraints",
    "compile_parallel",
    "shutdown_pool",
]


# Warn about a malformed $REPRO_JOBS only once per process: the knob is
# consulted on every entry-point call, and a daemon serving thousands of
# requests must not emit thousands of identical warnings.
_warned_jobs_values: set[str] = set()


def _warn_jobs_once(raw: str, reason: str) -> None:
    if raw in _warned_jobs_values:
        return
    _warned_jobs_values.add(raw)
    warnings.warn(
        f"ignoring REPRO_JOBS={raw!r}: {reason}; running sequentially (jobs=1)",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob to a concrete worker count.

    ``None`` consults ``$REPRO_JOBS``: whitespace is tolerated around an
    integer (``" 4 "`` is 4), an unset/empty variable means 1 (the
    sequential default), ``0`` means "all cores" (``os.cpu_count()``), and
    a malformed value — non-integer like ``"all"``, or a negative count —
    is clamped to 1 with a once-per-process :class:`RuntimeWarning`
    (never a silent degrade *or* a surprise fork-bomb). An explicit
    ``jobs=0`` likewise means all cores; explicit negatives clamp to 1.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "")
        stripped = raw.strip()
        if not stripped:
            jobs = 1
        else:
            try:
                jobs = int(stripped)
            except ValueError:
                _warn_jobs_once(raw, "not an integer")
                jobs = 1
            else:
                if jobs < 0:
                    _warn_jobs_once(raw, "negative worker count")
                    jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


# -- the shared worker pool ----------------------------------------------------

_pool: ProcessPoolExecutor | None = None
_pool_jobs = 0


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """The reused executor, resized (drain + recreate) when ``jobs`` changes."""
    global _pool, _pool_jobs
    if _pool is not None and _pool_jobs != jobs:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=jobs)
        _pool_jobs = jobs
    return _pool


def _reset_pool() -> None:
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None


def shutdown_pool(wait_for_workers: bool = True) -> None:
    """Tear down the shared worker pool (registered via :mod:`atexit`)."""
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=wait_for_workers, cancel_futures=True)
        _pool = None


atexit.register(shutdown_pool)


def _cache_spec(
    cache: CompileCache | str | os.PathLike | None,
) -> tuple[str, int] | None:
    """A pickle-light handle workers rebuild their own :class:`CompileCache` from."""
    cache = CompileCache.coerce(cache)
    if cache is None:
        return None
    return (str(cache.directory), cache.max_entries)


def _worker_cache(spec: tuple[str, int] | None) -> CompileCache | None:
    if spec is None:
        return None
    directory, max_entries = spec
    return CompileCache(directory, max_entries=max_entries)


# -- accounting ----------------------------------------------------------------


@dataclass
class FanoutStats:
    """What one fan-out did: how wide, how much was pruned, how busy.

    ``disjuncts_total`` is the full branch-space size ``∏dᵢ``;
    ``examined`` counts branches actually compiled (across all workers);
    ``pruned`` is their difference — work early exit avoided. ``busy_s``
    sums per-worker compute seconds, so ``busy_s / wall_s`` is the
    effective parallel speedup of the fan-out (the ``parallel.speedup``
    gauge).
    """

    jobs: int = 1
    disjuncts_total: int = 0
    examined: int = 0
    chunks: int = 0
    early_exit: bool = False
    wall_s: float = 0.0
    busy_s: float = 0.0
    workers: tuple[int, ...] = ()

    @property
    def pruned(self) -> int:
        return max(0, self.disjuncts_total - self.examined)

    @property
    def speedup(self) -> float:
        return self.busy_s / self.wall_s if self.wall_s > 0 else 1.0


@dataclass(frozen=True)
class ConsistencyOutcome:
    """Result of a branch-space consistency probe.

    ``branch_index`` is a surviving branch's mixed-radix index when
    ``consistent`` (with ``jobs>1`` it is whichever witness a worker
    found first, not necessarily the lowest), ``None`` otherwise.
    """

    consistent: bool
    branch_index: int | None
    stats: FanoutStats = field(compare=False, default_factory=FanoutStats)


# -- worker entry points (module-level: they cross the pickle boundary) --------
#
# Each accepts the goal either directly (pickle fallback) or as a
# SharedGoalHandle into the parent's shared-memory segment; resolve_shared_goal
# attaches and decodes once per worker process, so a fan-out of N tasks ships
# the goal DAG zero times per task instead of N.


def _probe_chunk(goal, items, cache_spec):
    """Compile each ``(index, branch)``; stop at the first consistent one."""
    from .kernel_backend import resolve_shared_goal

    started = time.perf_counter()
    goal = resolve_shared_goal(goal)
    cache = _worker_cache(cache_spec)
    examined = 0
    hit = None
    for index, branch in items:
        examined += 1
        if compile_workflow(goal, list(branch), cache=cache).consistent:
            hit = index
            break
    return {
        "hit": hit,
        "examined": examined,
        "elapsed": time.perf_counter() - started,
        "pid": os.getpid(),
    }


def _verify_one(goal, constraints, prop, cache_spec, seed, backend="object"):
    """One property's full sequential verification (bit-identical to jobs=1)."""
    from .kernel_backend import resolve_shared_goal
    from .verify import verify_property

    started = time.perf_counter()
    result = verify_property(
        resolve_shared_goal(goal), list(constraints), prop,
        cache=_worker_cache(cache_spec), seed=seed, backend=backend,
    )
    return result, time.perf_counter() - started, os.getpid()


def _redundant_one(goal, constraints, position, cache_spec, seed):
    """Theorem 5.10 for the constraint at ``position`` (sequential semantics)."""
    from .kernel_backend import resolve_shared_goal
    from .verify import is_redundant

    started = time.perf_counter()
    phi = constraints[position]
    flag = is_redundant(
        resolve_shared_goal(goal), list(constraints), phi,
        cache=_worker_cache(cache_spec), seed=seed,
    )
    return flag, time.perf_counter() - started, os.getpid()


def _compile_chunk(goal, items, cache_spec):
    """Fully compile each ``(index, branch)`` (no early exit — all needed)."""
    from .kernel_backend import resolve_shared_goal

    started = time.perf_counter()
    goal = resolve_shared_goal(goal)
    cache = _worker_cache(cache_spec)
    out = [
        (index, compile_workflow(goal, list(branch), cache=cache))
        for index, branch in items
    ]
    return out, time.perf_counter() - started, os.getpid()


# -- fan-out plumbing ----------------------------------------------------------


def _chunk_size(total: int, jobs: int, requested: int | None) -> int:
    """Default chunking: ~4 chunks per worker so the pool work-steals,
    but early exit never waits on more than one chunk per busy worker."""
    if requested is not None:
        if requested < 1:
            raise ValueError("chunk_size must be >= 1")
        return requested
    return max(1, -(-total // (jobs * 4)))


def _expand(goal: Goal, rules: RuleBase | None) -> Goal:
    expanded = rules.expand(goal) if rules is not None else goal
    expanded = simplify(expanded)
    check_unique_events(expanded)
    return expanded


def _record_fanout(obs, what: str, stats: FanoutStats) -> None:
    """Feed one fan-out's accounting into the observability sinks."""
    if obs is None or not obs.active:
        return
    metrics = obs.metrics
    if metrics is not None:
        metrics.inc("parallel.disjuncts_total", stats.disjuncts_total)
        metrics.inc("parallel.disjuncts_examined", stats.examined)
        metrics.inc("parallel.disjuncts_pruned", stats.pruned)
        if stats.early_exit:
            metrics.inc("parallel.early_exit")
        metrics.set_gauge("parallel.jobs", stats.jobs)
        metrics.set_gauge("parallel.speedup", round(stats.speedup, 3))
    tracer = obs.tracer
    if tracer.enabled:
        # Adopt the thread's active trace context (installed by the
        # batcher around its executor call) so this fan-out hangs under
        # the batch span in the distributed tree. None outside a trace.
        from ..obs.context import current_trace_context

        with tracer.span(f"parallel.{what}", ctx=current_trace_context(),
                         jobs=stats.jobs,
                         disjuncts=stats.disjuncts_total,
                         chunks=stats.chunks) as span:
            span.annotate(examined=stats.examined, pruned=stats.pruned,
                          early_exit=stats.early_exit,
                          wall_s=round(stats.wall_s, 6),
                          busy_s=round(stats.busy_s, 6),
                          speedup=round(stats.speedup, 3))
            for pid in stats.workers:
                with tracer.span("parallel.worker", pid=pid):
                    pass


def _drain_after_hit(futures: list[Future], consumed: set[Future],
                     stats: FanoutStats) -> None:
    """First-success cancellation: cancel what hasn't started, drain the rest.

    Queued futures are cancelled outright; chunks already running finish
    (a chunk is the cancellation granularity) and their accounting is
    still harvested so ``examined``/``busy_s`` stay truthful.
    """
    pending = [f for f in futures if f not in consumed]
    for future in pending:
        future.cancel()
    wait(pending)
    for future in pending:
        if future.cancelled() or future.exception() is not None:
            continue
        result = future.result()
        stats.examined += result["examined"]
        stats.busy_s += result["elapsed"]


# -- the public fan-out API ----------------------------------------------------


def check_consistency(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache: CompileCache | str | os.PathLike | None = None,
    obs=None,
    chunk_size: int | None = None,
) -> ConsistencyOutcome:
    """Theorem 5.8 by branch fan-out: is some DNF branch of ``C`` consistent?

    ``jobs=1`` probes branches sequentially in index order (still early
    exits on the first survivor — on consistent specifications that is
    already much cheaper than compiling the full ``d^N`` conjunction);
    ``jobs>1`` fans chunks out across the worker pool and cancels the
    remainder on the first success. The boolean answer equals
    ``compile_workflow(goal, constraints).consistent`` either way.
    """
    jobs = resolve_jobs(jobs)
    expanded = _expand(goal, rules)
    split = split_disjuncts(list(constraints))
    stats = FanoutStats(jobs=jobs, disjuncts_total=split.total)
    started = time.perf_counter()
    if jobs == 1 or split.total == 1:
        outcome = _probe_sequential(expanded, split, cache, stats)
    else:
        try:
            outcome = _probe_parallel(expanded, split, jobs, cache, stats,
                                      chunk_size)
        except BrokenProcessPool:
            _reset_pool()
            stats = FanoutStats(jobs=1, disjuncts_total=split.total)
            outcome = _probe_sequential(expanded, split, cache, stats)
    stats.wall_s = time.perf_counter() - started
    if stats.busy_s == 0.0:
        stats.busy_s = stats.wall_s
    _record_fanout(obs, "consistency", stats)
    return outcome


def _probe_sequential(
    expanded: Goal, split: ConstraintSplit, cache, stats: FanoutStats
) -> ConsistencyOutcome:
    cache = CompileCache.coerce(cache)
    for index, branch in split.indexed():
        stats.examined += 1
        if compile_workflow(expanded, list(branch), cache=cache).consistent:
            stats.early_exit = index + 1 < split.total
            return ConsistencyOutcome(True, index, stats)
    return ConsistencyOutcome(False, None, stats)


def _share_goal(expanded: Goal):
    """Publish ``expanded`` for a fan-out: ``(task payload, owned handle)``.

    The payload is a :class:`~repro.core.kernel_backend.SharedGoalHandle`
    when shared memory is available (workers attach; the goal is pickled
    into zero tasks) and the goal itself otherwise (the pickle fallback).
    The caller must ``release_goal(handle)`` when the fan-out is over.
    """
    from .kernel_backend import export_goal

    handle = export_goal(expanded)
    return (expanded if handle is None else handle), handle


def _probe_parallel(
    expanded: Goal,
    split: ConstraintSplit,
    jobs: int,
    cache,
    stats: FanoutStats,
    chunk_size: int | None,
) -> ConsistencyOutcome:
    from .kernel_backend import release_goal

    pool = _get_pool(jobs)
    spec = _cache_spec(cache)
    size = _chunk_size(split.total, jobs, chunk_size)
    payload, handle = _share_goal(expanded)
    try:
        futures = [
            pool.submit(_probe_chunk, payload, chunk, spec)
            for chunk in split.chunks(size)
        ]
        stats.chunks = len(futures)
        consumed: set[Future] = set()
        workers: set[int] = set()
        hit: int | None = None
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                consumed.add(future)
                result = future.result()
                stats.examined += result["examined"]
                stats.busy_s += result["elapsed"]
                workers.add(result["pid"])
                if result["hit"] is not None:
                    hit = result["hit"] if hit is None else min(hit, result["hit"])
            if hit is not None:
                break
        stats.workers = tuple(sorted(workers))
        if hit is not None:
            stats.early_exit = stats.examined < split.total
            _drain_after_hit(futures, consumed, stats)
            return ConsistencyOutcome(True, hit, stats)
        return ConsistencyOutcome(False, None, stats)
    finally:
        # Unconditional: a broken pool or a worker crash must not leak the
        # segment (unlink-while-attached is safe for still-running tasks).
        release_goal(handle)


def verify_properties(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    props: list[Constraint] | tuple[Constraint, ...],
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache: CompileCache | str | os.PathLike | None = None,
    seed: int | None = None,
    obs=None,
    backend: str | None = None,
) -> list:
    """Theorem 5.9 for a batch of properties, one worker per property.

    Returns :class:`~repro.core.verify.VerificationResult`s in ``props``
    order. Each worker runs the *full sequential* ``verify_property`` —
    same code, same ``seed``, same cache keys — so the results are
    bit-for-bit identical to ``jobs=1``, including counterexample goals
    (re-interned on the way back) and witness schedules. The goal crosses
    the process boundary once, via shared memory, not once per property.
    """
    from .kernel_backend import release_goal, resolve_backend
    from .verify import verify_property

    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend)
    props = list(props)
    if jobs == 1 or len(props) <= 1:
        return [
            verify_property(goal, list(constraints), prop, rules=rules,
                            cache=cache, seed=seed, backend=backend)
            for prop in props
        ]
    expanded = _expand(goal, rules)
    spec = _cache_spec(cache)
    stats = FanoutStats(jobs=jobs, disjuncts_total=len(props),
                        chunks=len(props))
    started = time.perf_counter()
    pool = _get_pool(jobs)
    payload, handle = _share_goal(expanded)
    try:
        futures = [
            pool.submit(_verify_one, payload, tuple(constraints), prop, spec,
                        seed, backend)
            for prop in props
        ]
        harvested = [future.result() for future in futures]
    except BrokenProcessPool:
        _reset_pool()
        return [
            verify_property(goal, list(constraints), prop, rules=rules,
                            cache=cache, seed=seed, backend=backend)
            for prop in props
        ]
    finally:
        release_goal(handle)
    results = []
    workers: set[int] = set()
    for result, elapsed, pid in harvested:
        results.append(result)
        stats.examined += 1
        stats.busy_s += elapsed
        workers.add(pid)
    stats.workers = tuple(sorted(workers))
    stats.wall_s = time.perf_counter() - started
    _record_fanout(obs, "verify_batch", stats)
    return results


def redundant_constraints(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache: CompileCache | str | os.PathLike | None = None,
    seed: int | None = None,
    obs=None,
) -> list[Constraint]:
    """Theorem 5.10 for every constraint, fanned out one worker per check.

    Semantically the same N independent questions the sequential loop in
    :func:`repro.core.verify.redundant_constraints` asks; each worker runs
    that exact sequential check, so the returned list is identical.
    """
    from .verify import is_redundant

    jobs = resolve_jobs(jobs)
    constraints = list(constraints)
    if jobs == 1 or len(constraints) <= 1:
        return [
            phi for phi in constraints
            if is_redundant(goal, constraints, phi, rules=rules, cache=cache,
                            seed=seed)
        ]
    expanded = _expand(goal, rules)
    spec = _cache_spec(cache)
    stats = FanoutStats(jobs=jobs, disjuncts_total=len(constraints),
                        chunks=len(constraints))
    started = time.perf_counter()
    pool = _get_pool(jobs)
    payload, handle = _share_goal(expanded)
    try:
        futures = [
            pool.submit(_redundant_one, payload, tuple(constraints), position,
                        spec, seed)
            for position in range(len(constraints))
        ]
        harvested = [future.result() for future in futures]
    except BrokenProcessPool:
        _reset_pool()
        return [
            phi for phi in constraints
            if is_redundant(goal, constraints, phi, rules=rules, cache=cache,
                            seed=seed)
        ]
    finally:
        from .kernel_backend import release_goal

        release_goal(handle)
    flags = []
    workers: set[int] = set()
    for flag, elapsed, pid in harvested:
        flags.append(flag)
        stats.examined += 1
        stats.busy_s += elapsed
        workers.add(pid)
    stats.workers = tuple(sorted(workers))
    stats.wall_s = time.perf_counter() - started
    _record_fanout(obs, "redundancy", stats)
    return [phi for phi, flag in zip(constraints, flags) if flag]


def compile_parallel(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache: CompileCache | str | os.PathLike | None = None,
    obs=None,
    chunk_size: int | None = None,
) -> CompiledWorkflow:
    """Compile ``G ∧ C`` as the ``∨``-assembly of per-branch compiles.

    Every DNF branch of the constraint set compiles on its own worker;
    the results are assembled *in branch-index order* (deterministic for
    a fixed constraint set) as ``alt(...)`` over the branch goals, with
    inconsistent branches absorbed. The assembled workflow has exactly
    the execution set of the sequential compile (Props 5.2/5.4/5.6) but
    is *not* structurally identical — each branch mints its own
    synchronization tokens — so it is cached only at branch granularity,
    never under the sequential result's key.
    """
    jobs = resolve_jobs(jobs)
    expanded = _expand(goal, rules)
    split = split_disjuncts(list(constraints))
    if jobs == 1 or split.total == 1:
        return compile_workflow(goal, list(constraints), rules=rules,
                                cache=cache, obs=obs)
    stats = FanoutStats(jobs=jobs, disjuncts_total=split.total)
    started = time.perf_counter()
    pool = _get_pool(jobs)
    spec = _cache_spec(cache)
    size = _chunk_size(split.total, jobs, chunk_size)
    payload, handle = _share_goal(expanded)
    try:
        futures = [
            pool.submit(_compile_chunk, payload, chunk, spec)
            for chunk in split.chunks(size)
        ]
        stats.chunks = len(futures)
        harvested = [future.result() for future in futures]
    except BrokenProcessPool:
        _reset_pool()
        return compile_workflow(goal, list(constraints), rules=rules,
                                cache=cache, obs=obs)
    finally:
        from .kernel_backend import release_goal

        release_goal(handle)
    compiled: list[tuple[int, CompiledWorkflow]] = []
    workers: set[int] = set()
    for chunk_result, elapsed, pid in harvested:
        compiled.extend(chunk_result)
        stats.examined += len(chunk_result)
        stats.busy_s += elapsed
        workers.add(pid)
    compiled.sort(key=lambda item: item[0])
    stats.workers = tuple(sorted(workers))
    stats.wall_s = time.perf_counter() - started
    _record_fanout(obs, "compile", stats)
    applied = alt(*(branch.applied for _, branch in compiled)) \
        if compiled else NEG_PATH
    assembled = alt(*(branch.goal for _, branch in compiled
                      if branch.consistent)) \
        if any(branch.consistent for _, branch in compiled) else NEG_PATH
    return CompiledWorkflow(
        source=expanded,
        constraints=tuple(constraints),
        applied=applied,
        goal=assembled,
    )


def verify_property_parallel(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    prop: Constraint,
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache: CompileCache | str | os.PathLike | None = None,
    seed: int | None = None,
    obs=None,
    backend: str | None = None,
):
    """Theorem 5.9 for one property, deciding ``holds`` by disjunct fan-out.

    The branch space of ``C ∧ ¬Φ`` is probed in parallel with
    first-failure early exit: any surviving branch proves the property
    violated. When it *holds* the result is immediate and identical to
    ``jobs=1``; when it fails, one canonical sequential compile
    (cache-assisted — its branch probes have already warmed nothing it
    needs, but re-verification will hit) materializes the same most
    general counterexample and witness the sequential path reports.
    """
    from .verify import VerificationResult, verify_property

    negated = negate(prop)
    outcome = check_consistency(
        goal, list(constraints) + [negated], rules=rules, jobs=jobs,
        cache=cache, obs=obs,
    )
    if not outcome.consistent:
        return VerificationResult(property=prop, holds=True)
    return verify_property(goal, list(constraints), prop, rules=rules,
                           cache=cache, seed=seed, backend=backend)
