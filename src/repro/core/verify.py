"""Consistency, property verification, and redundancy (Theorems 5.8–5.10).

All three decision procedures are *constructive* reductions to the
Apply/Excise pipeline:

* **Consistency** (Thm 5.8): ``G ∧ C`` is consistent iff
  ``Excise(Apply(C, G)) ≠ ¬path``.
* **Verification** (Thm 5.9): every legal execution of ``G ∧ C`` satisfies
  ``Φ`` iff ``Excise(Apply(¬Φ ∧ C, G)) = ¬path``; otherwise the non-failed
  result is the *most general counterexample* — the sub-workflow whose
  executions are exactly the violating ones. We additionally extract one
  concrete violating schedule for error reporting.
* **Redundancy** (Thm 5.10): ``Φ ∈ C`` is redundant iff every execution of
  ``G ∧ (C − {Φ})`` satisfies ``Φ``.

As Proposition 4.1 shows, these problems are NP-complete in the size of
the constraint set (never in the size of the graph — Apply is linear in
``|G|``); for order-constraint-only specifications ``d = 1`` and the whole
pipeline runs in polynomial time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint
from ..constraints.normalize import negate
from ..ctr.formulas import Goal
from ..ctr.rules import RuleBase
from .compiler import CompiledWorkflow, compile_workflow

__all__ = [
    "is_consistent",
    "VerificationResult",
    "verify_property",
    "is_redundant",
    "redundant_constraints",
]


def is_consistent(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
) -> bool:
    """Theorem 5.8: does ``goal ∧ constraints`` have a legal execution?"""
    return compile_workflow(goal, constraints, rules=rules).consistent


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of :func:`verify_property`.

    ``holds`` is True when every legal execution satisfies the property.
    Otherwise ``counterexample`` is the most general counterexample — a
    concurrent-Horn goal whose executions are exactly the legal executions
    violating the property — and ``witness`` is one concrete violating
    schedule extracted from it.
    """

    property: Constraint
    holds: bool
    counterexample: Goal | None = None
    witness: tuple[str, ...] | None = None

    def __bool__(self) -> bool:
        return self.holds


def verify_property(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    prop: Constraint,
    rules: RuleBase | None = None,
    cache=None,
) -> VerificationResult:
    """Theorem 5.9: check that every legal execution satisfies ``prop``.

    ``cache`` (a :class:`~repro.core.compiler.CompileCache` or directory
    path) persists the ``G ∧ C ∧ ¬Φ`` compilation; re-verifying an
    unchanged specification is then a cache hit per property.
    """
    negated = negate(prop)
    violating: CompiledWorkflow = compile_workflow(
        goal, list(constraints) + [negated], rules=rules, cache=cache
    )
    if violating.consistent:
        witness = violating.scheduler().run()
        return VerificationResult(
            property=prop,
            holds=False,
            counterexample=violating.goal,
            witness=witness,
        )
    return VerificationResult(property=prop, holds=True)


def is_redundant(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    phi: Constraint,
    rules: RuleBase | None = None,
) -> bool:
    """Theorem 5.10: is ``phi`` implied by the remaining specification?

    ``phi`` must be a member of ``constraints``.
    """
    remaining = [c for c in constraints if c != phi]
    if len(remaining) == len(constraints):
        raise ValueError("phi is not one of the given constraints")
    return verify_property(goal, remaining, phi, rules=rules).holds


def redundant_constraints(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    rules: RuleBase | None = None,
) -> list[Constraint]:
    """Every constraint implied by the rest of the specification.

    Note that redundancy is not monotone under removal (two constraints can
    each be redundant given the other); this reports each constraint's
    redundancy with respect to all the others, as in Theorem 5.10.
    """
    return [
        phi for phi in constraints if is_redundant(goal, constraints, phi, rules=rules)
    ]
