"""Consistency, property verification, and redundancy (Theorems 5.8–5.10).

All three decision procedures are *constructive* reductions to the
Apply/Excise pipeline:

* **Consistency** (Thm 5.8): ``G ∧ C`` is consistent iff
  ``Excise(Apply(C, G)) ≠ ¬path``.
* **Verification** (Thm 5.9): every legal execution of ``G ∧ C`` satisfies
  ``Φ`` iff ``Excise(Apply(¬Φ ∧ C, G)) = ¬path``; otherwise the non-failed
  result is the *most general counterexample* — the sub-workflow whose
  executions are exactly the violating ones. We additionally extract one
  concrete violating schedule for error reporting.
* **Redundancy** (Thm 5.10): ``Φ ∈ C`` is redundant iff every execution of
  ``G ∧ (C − {Φ})`` satisfies ``Φ``.

As Proposition 4.1 shows, these problems are NP-complete in the size of
the constraint set (never in the size of the graph — Apply is linear in
``|G|``); for order-constraint-only specifications ``d = 1`` and the whole
pipeline runs in polynomial time.

That NP-hard disjunct space is also embarrassingly parallel: every entry
point here takes a ``jobs=`` knob that fans the work out across the
process pool of :mod:`repro.core.parallel` — per DNF branch for a single
consistency/verification question, per property or per constraint for the
batch forms. ``jobs=1`` (the default) is exactly the sequential code
path, and ``jobs=N`` is guaranteed to return identical results (booleans,
counterexample goals, witness schedules) — see the determinism contract
in :mod:`repro.core.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint
from ..constraints.normalize import negate
from ..ctr.formulas import Goal
from ..ctr.rules import RuleBase
from .compiler import CompiledWorkflow, compile_workflow

__all__ = [
    "is_consistent",
    "VerificationResult",
    "verify_property",
    "verify_properties",
    "is_redundant",
    "redundant_constraints",
]


def is_consistent(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache=None,
) -> bool:
    """Theorem 5.8: does ``goal ∧ constraints`` have a legal execution?

    ``jobs>1`` decides the question by parallel DNF-branch fan-out with
    first-success early exit instead of one monolithic compile; the
    boolean is the same either way.
    """
    if jobs != 1:
        from .parallel import check_consistency, resolve_jobs

        if resolve_jobs(jobs) > 1:
            return check_consistency(
                goal, constraints, rules=rules, jobs=jobs, cache=cache
            ).consistent
    return compile_workflow(goal, constraints, rules=rules, cache=cache).consistent


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of :func:`verify_property`.

    ``holds`` is True when every legal execution satisfies the property.
    Otherwise ``counterexample`` is the most general counterexample — a
    concurrent-Horn goal whose executions are exactly the legal executions
    violating the property — and ``witness`` is one concrete violating
    schedule extracted from it.
    """

    property: Constraint
    holds: bool
    counterexample: Goal | None = None
    witness: tuple[str, ...] | None = None

    def __bool__(self) -> bool:
        return self.holds


def verify_property(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    prop: Constraint,
    rules: RuleBase | None = None,
    cache=None,
    jobs: int | None = 1,
    seed: int | None = None,
    backend: str | None = None,
) -> VerificationResult:
    """Theorem 5.9: check that every legal execution satisfies ``prop``.

    ``cache`` (a :class:`~repro.core.compiler.CompileCache` or directory
    path) persists the ``G ∧ C ∧ ¬Φ`` compilation; re-verifying an
    unchanged specification is then a cache hit per property.

    ``seed`` pins the witness schedule extracted from a failing property:
    ``None`` (the default) keeps the deterministic lexicographic-minimum
    strategy, an integer draws via
    :func:`~repro.core.scheduler.seeded_strategy` — both reproduce the
    identical witness across reruns, processes, and ``jobs`` settings.

    ``jobs>1`` decides ``holds`` by parallel disjunct fan-out of
    ``C ∧ ¬Φ`` with first-counterexample early exit; a failing property
    then materializes the canonical counterexample sequentially so the
    returned result is bit-for-bit the ``jobs=1`` one.

    ``backend`` selects the witness-extraction engine (``"object"`` |
    ``"kernel"``, default ``$REPRO_BACKEND``); the kernel scheduler walks
    the same eligible sets, so the witness is identical either way.
    """
    if jobs != 1:
        from .parallel import resolve_jobs, verify_property_parallel

        if resolve_jobs(jobs) > 1:
            return verify_property_parallel(
                goal, constraints, prop, rules=rules, jobs=jobs, cache=cache,
                seed=seed, backend=backend,
            )
    negated = negate(prop)
    violating: CompiledWorkflow = compile_workflow(
        goal, list(constraints) + [negated], rules=rules, cache=cache,
        backend=backend,
    )
    if violating.consistent:
        strategy = None
        if seed is not None:
            from .scheduler import seeded_strategy

            strategy = seeded_strategy(seed)
        witness = violating.scheduler().run(strategy=strategy)
        return VerificationResult(
            property=prop,
            holds=False,
            counterexample=violating.goal,
            witness=witness,
        )
    return VerificationResult(property=prop, holds=True)


def verify_properties(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    props: list[Constraint] | tuple[Constraint, ...],
    rules: RuleBase | None = None,
    cache=None,
    jobs: int | None = 1,
    seed: int | None = None,
    obs=None,
    backend: str | None = None,
) -> list[VerificationResult]:
    """Theorem 5.9 for a batch of properties (results in ``props`` order).

    With ``jobs>1`` each property verifies on its own worker process (the
    batch analogue of ``verify --jobs N``); every worker runs the exact
    sequential :func:`verify_property`, so the batch is bit-for-bit the
    sequential list at any ``jobs`` and any ``backend``.
    """
    from .parallel import verify_properties as fanout

    return fanout(goal, constraints, props, rules=rules, jobs=jobs,
                  cache=cache, seed=seed, obs=obs, backend=backend)


def is_redundant(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    phi: Constraint,
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache=None,
    seed: int | None = None,
) -> bool:
    """Theorem 5.10: is ``phi`` implied by the remaining specification?

    ``phi`` must be a member of ``constraints``. Exactly *one* occurrence
    is removed: with hash-consed constraints a specification can list the
    same constraint twice, and dropping every copy would silently change
    the question from "is this occurrence implied by the rest?" (trivially
    yes — the duplicate remains) to "is it implied by the others?".
    """
    remaining = list(constraints)
    try:
        remaining.remove(phi)
    except ValueError:
        raise ValueError("phi is not one of the given constraints") from None
    return verify_property(
        goal, remaining, phi, rules=rules, jobs=jobs, cache=cache, seed=seed
    ).holds


def redundant_constraints(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...],
    rules: RuleBase | None = None,
    jobs: int | None = 1,
    cache=None,
    seed: int | None = None,
) -> list[Constraint]:
    """Every constraint implied by the rest of the specification.

    Note that redundancy is not monotone under removal (two constraints can
    each be redundant given the other); this reports each constraint's
    redundancy with respect to all the others, as in Theorem 5.10.

    The N checks are independent compilations; ``jobs>1`` runs one per
    worker process and returns the identical list.
    """
    if jobs != 1:
        from .parallel import redundant_constraints as fanout
        from .parallel import resolve_jobs

        if resolve_jobs(jobs) > 1:
            return fanout(goal, constraints, rules=rules, jobs=jobs,
                          cache=cache, seed=seed)
    return [
        phi
        for phi in constraints
        if is_redundant(goal, constraints, phi, rules=rules, cache=cache,
                        seed=seed)
    ]
