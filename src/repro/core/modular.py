"""Sub-workflow-scoped compilation (Section 7, "Sub-workflows").

The paper notes: *"when global dependencies do not span sub-workflow
boundaries, the complexity reported in Theorem 5.11 can be reduced.
Indeed, it can be shown that, if M is the largest number of dependencies
in a sub-workflow, then the size of Apply(C, G) is O(d^M × |G|)."*

:func:`compile_modular` implements that optimisation. Constraints are
declared per scope — either the name of a sub-workflow (a rule head) or
the top level — and each sub-workflow's bodies are compiled (Apply +
Excise) *before* being inlined into the parent. The d^N blow-up is then
confined to each scope: with k sub-workflows of M constraints each, the
compiled size is O(k · d^M · |body|) instead of O(d^{k·M} · |G|). The
ablation benchmark ``benchmarks/bench_modular.py`` measures exactly this
contrast.

Scoped constraints must only mention events of their own sub-workflow;
this is validated and violations raise
:class:`~repro.errors.ConstraintError` (a constraint spanning scopes
belongs at the top level, where the general bound applies).
"""

from __future__ import annotations

from ..constraints.algebra import Constraint, constraint_events
from ..ctr.formulas import Goal, alt
from ..ctr.rules import Rule, RuleBase
from ..ctr.simplify import is_failure
from ..ctr.unique import occurring_events
from ..errors import ConstraintError, InconsistentWorkflowError
from .apply import apply_all
from .compiler import CompiledWorkflow, compile_workflow
from .excise import excise
from .sync import TokenFactory

__all__ = ["ScopedConstraints", "compile_modular"]

TOP_LEVEL = ""  # scope key for constraints on the top-level workflow

ScopedConstraints = dict[str, list[Constraint]]


def compile_modular(
    goal: Goal,
    rules: RuleBase,
    scoped: ScopedConstraints,
    top_level: list[Constraint] | tuple[Constraint, ...] = (),
) -> CompiledWorkflow:
    """Compile with per-sub-workflow constraint scoping.

    Parameters
    ----------
    goal:
        The top-level workflow (may mention rule heads as activities).
    rules:
        Sub-workflow definitions.
    scoped:
        Maps a sub-workflow head to the constraints local to it. Every
        constraint must only mention events occurring in that
        sub-workflow's bodies.
    top_level:
        Constraints applied to the fully-inlined goal afterwards (these
        may span scopes and pay the general d^N price).

    Raises
    ------
    ConstraintError
        If a scoped constraint mentions an event outside its scope, or
        names an undefined sub-workflow.
    InconsistentWorkflowError
        If some sub-workflow becomes unexecutable under its local
        constraints (the paper's design-time feedback: the inconsistent
        scope is reported in the message).
    """
    tokens = TokenFactory()
    compiled_rules = RuleBase()
    # Children before parents, so a parent scope inlines already-compiled
    # (locally constrained) child definitions.
    for head in _topological_heads(rules):
        constraints = scoped.get(head, [])
        _check_scope(head, rules, constraints)
        compiled_body = _compile_scope(head, rules, compiled_rules, constraints, tokens)
        compiled_rules.add(Rule(head, compiled_body))

    unknown = set(scoped) - set(rules.heads) - {TOP_LEVEL}
    if unknown:
        raise ConstraintError(
            f"scoped constraints name undefined sub-workflows: {sorted(unknown)}"
        )

    all_top = list(scoped.get(TOP_LEVEL, [])) + list(top_level)
    return compile_workflow(goal, all_top, rules=compiled_rules)


def _topological_heads(rules: RuleBase) -> list[str]:
    """Rule heads ordered children-first (the base is non-recursive)."""
    order: list[str] = []
    visited: set[str] = set()

    def visit(head: str) -> None:
        if head in visited:
            return
        visited.add(head)
        for body in rules.bodies(head):
            for dep in sorted(_heads_in(body, rules)):
                if dep != head:
                    visit(dep)
        order.append(head)

    for head in sorted(rules.heads):
        visit(head)
    return order


def _heads_in(body: Goal, rules: RuleBase) -> set[str]:
    from ..ctr.formulas import Atom, walk

    return {n.name for n in walk(body) if isinstance(n, Atom) and n.name in rules.heads}


def _check_scope(head: str, rules: RuleBase, constraints: list[Constraint]) -> None:
    scope_events: set[str] = set()
    for body in rules.bodies(head):
        scope_events |= occurring_events(rules.expand(body))
    for constraint in constraints:
        outside = constraint_events(constraint) - scope_events
        if outside:
            raise ConstraintError(
                f"constraint {constraint} on sub-workflow {head!r} mentions "
                f"events outside its scope: {sorted(outside)}"
            )


def _compile_scope(
    head: str,
    rules: RuleBase,
    compiled_rules: RuleBase,
    constraints: list[Constraint],
    tokens: TokenFactory,
) -> Goal:
    """Apply+Excise the scope's constraints over the choice of its bodies.

    The constraints see the *whole* definition — the disjunction of the
    bodies, with nested sub-workflows inlined *in their already-compiled
    form* — so that a constraint may legitimately prune one body in
    favour of another, and child scopes keep their local compilation.
    """
    definition = alt(*(compiled_rules.expand(body) for body in rules.bodies(head)))
    if not constraints:
        return definition
    compiled = excise(apply_all(constraints, definition, tokens))
    if is_failure(compiled):
        raise InconsistentWorkflowError(
            f"sub-workflow {head!r} is inconsistent with its local constraints",
            culprit=definition,
        )
    return compiled
