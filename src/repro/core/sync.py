"""The ``sync`` transformation (Definition 5.3): token-based event ordering.

``sync(α < β, T)`` rewrites the goal ``T`` so that every occurrence of
event ``α`` is followed by ``send(ξ)`` and every occurrence of ``β`` is
preceded by ``receive(ξ)``, for a fresh token ``ξ``. Because ``receive(ξ)``
only succeeds after ``send(ξ)`` has executed, ``β`` can no longer start
before ``α`` is done — even when the two events live in different
concurrent branches.

Occurrences inside a ``◇`` (possibility) body are *not* rewritten: those
executions are hypothetical and must not emit or consume real
synchronization tokens (see DESIGN.md, "Semantic choices").
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Receive,
    Send,
    Serial,
    alt,
    par,
    seq,
)

__all__ = ["TokenFactory", "sync_order"]


class TokenFactory:
    """Mints fresh synchronization tokens (``xi1``, ``xi2``, …).

    One factory is threaded through a whole compilation so tokens never
    collide across constraints. ``start`` seeds the counter (incremental
    recompilation continues past the tokens already embedded in a compiled
    goal) and ``avoid`` is a set of token names that must never be minted —
    the belt-and-braces guarantee for goals whose existing tokens do not
    follow the ``prefix + number`` shape.
    """

    def __init__(self, prefix: str = "xi", start: int = 1,
                 avoid: Iterable[str] = ()):
        self._prefix = prefix
        self._counter = itertools.count(start)
        self._avoid = frozenset(avoid)

    def fresh(self) -> str:
        while True:
            token = f"{self._prefix}{next(self._counter)}"
            if token not in self._avoid:
                return token


def sync_order(alpha: str, beta: str, goal: Goal, token: str) -> Goal:
    """Serialise ``alpha`` before ``beta`` in ``goal`` using ``token``.

    Every occurrence of ``alpha`` becomes ``alpha ⊗ send(token)``; every
    occurrence of ``beta`` becomes ``receive(token) ⊗ beta``.

    The rewrite is memoised per shared node: hash-consed goals are DAGs,
    and each distinct subterm needs rewriting exactly once regardless of
    how many ``∨`` branches reference it.
    """
    memo: dict[Goal, Goal] = {}

    def rewrite(node: Goal) -> Goal:
        if isinstance(node, Atom):
            if node.name == alpha:
                return seq(node, Send(token))
            if node.name == beta:
                return seq(Receive(token), node)
            return node
        cached = memo.get(node)
        if cached is not None:
            return cached
        if isinstance(node, Serial):
            result: Goal = seq(*(rewrite(p) for p in node.parts))
        elif isinstance(node, Concurrent):
            result = par(*(rewrite(p) for p in node.parts))
        elif isinstance(node, Choice):
            result = alt(*(rewrite(p) for p in node.parts))
        elif isinstance(node, Isolated):
            result = Isolated(rewrite(node.body))
        elif isinstance(node, Possibility):
            result = node  # hypothetical executions exchange no real tokens
        else:
            result = node
        memo[node] = result
        return result

    return rewrite(goal)
