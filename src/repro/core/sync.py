"""The ``sync`` transformation (Definition 5.3): token-based event ordering.

``sync(α < β, T)`` rewrites the goal ``T`` so that every occurrence of
event ``α`` is followed by ``send(ξ)`` and every occurrence of ``β`` is
preceded by ``receive(ξ)``, for a fresh token ``ξ``. Because ``receive(ξ)``
only succeeds after ``send(ξ)`` has executed, ``β`` can no longer start
before ``α`` is done — even when the two events live in different
concurrent branches.

Occurrences inside a ``◇`` (possibility) body are *not* rewritten: those
executions are hypothetical and must not emit or consume real
synchronization tokens (see DESIGN.md, "Semantic choices").
"""

from __future__ import annotations

import itertools

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Receive,
    Send,
    Serial,
    alt,
    par,
    seq,
)

__all__ = ["TokenFactory", "sync_order"]


class TokenFactory:
    """Mints fresh synchronization tokens (``xi1``, ``xi2``, …).

    One factory is threaded through a whole compilation so tokens never
    collide across constraints.
    """

    def __init__(self, prefix: str = "xi"):
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self) -> str:
        return f"{self._prefix}{next(self._counter)}"


def sync_order(alpha: str, beta: str, goal: Goal, token: str) -> Goal:
    """Serialise ``alpha`` before ``beta`` in ``goal`` using ``token``.

    Every occurrence of ``alpha`` becomes ``alpha ⊗ send(token)``; every
    occurrence of ``beta`` becomes ``receive(token) ⊗ beta``.
    """

    def rewrite(node: Goal) -> Goal:
        if isinstance(node, Atom):
            if node.name == alpha:
                return seq(node, Send(token))
            if node.name == beta:
                return seq(Receive(token), node)
            return node
        if isinstance(node, Serial):
            return seq(*(rewrite(p) for p in node.parts))
        if isinstance(node, Concurrent):
            return par(*(rewrite(p) for p in node.parts))
        if isinstance(node, Choice):
            return alt(*(rewrite(p) for p in node.parts))
        if isinstance(node, Isolated):
            return Isolated(rewrite(node.body))
        if isinstance(node, Possibility):
            return node  # hypothetical executions exchange no real tokens
        return node

    return rewrite(goal)
