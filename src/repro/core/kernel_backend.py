"""Backend selection and shared-memory table plumbing for the flat kernel.

Two concerns live here, both downstream of :mod:`repro.ctr.kernel`:

**Backend resolution.** Every query a compiled workflow answers — trace
enumeration, executability, counting, scheduling, witness extraction — has
two implementations: the *object* backend (the original interpreters over
hash-consed goal objects, the semantic oracle) and the *kernel* backend
(the flat-table programs of :class:`~repro.ctr.kernel.KernelProgram`).
:func:`resolve_backend` normalizes the ``backend=`` knob threaded through
:func:`~repro.core.compiler.compile_workflow` /
:func:`~repro.core.verify.verify_property` / the CLI, consulting
``$REPRO_BACKEND`` when unset; the dispatch helpers below route one query
to the chosen implementation. The two backends are differentially tested
to be bit-identical, so switching is a pure performance decision.

**Shared-memory dispatch.** The parallel fan-outs used to pickle the
expanded goal into *every* task submitted to the worker pool — for a batch
of N properties, N copies of the same DAG crossing the process boundary.
Here the parent exports the goal (its shared-DAG encoding, the same node
tables :mod:`repro.ctr.serialize` writes to disk) into one
``multiprocessing.shared_memory`` segment and submits a
:class:`SharedGoalHandle` — three small strings — instead. Workers attach,
decode once, and cache per process. Segments are refcounted in the
creating process (:func:`export_goal` / :func:`release_goal`): concurrent
fan-outs over the same goal share one segment, and the last release
unlinks it. Unlink-while-attached is safe on POSIX (the mapping survives;
the name disappears), so in-flight workers never race the cleanup, and a
crashed worker cannot leak the segment — the parent owns it.
:class:`~repro.ctr.kernel.KernelProgram` tables ship the same way
(:func:`export_program` / :func:`attach_program`) and rebuild zero-copy —
the worker's arrays are ``memoryview``\\ s into the shared pages.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass
from weakref import WeakKeyDictionary

from ..ctr.formulas import Goal
from ..ctr.kernel import KernelProgram, KernelScheduler, lower_goal
from ..ctr.traces import TraceCount
from ..errors import SpecificationError

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "kernel_for",
    "traces_of",
    "is_executable_of",
    "count_traces_of",
    "scheduler_for",
    "SharedGoalHandle",
    "export_goal",
    "attach_goal",
    "release_goal",
    "export_program",
    "attach_program",
    "live_segments",
    "release_all_segments",
]

BACKENDS = ("object", "kernel")

_warned_backend_values: set[str] = set()


def resolve_backend(backend: str | None = None) -> str:
    """Normalize the ``backend`` knob to ``"object"`` or ``"kernel"``.

    ``None`` consults ``$REPRO_BACKEND`` (unset/empty means ``object``,
    the oracle default); a malformed environment value degrades to
    ``object`` with a once-per-process :class:`RuntimeWarning`, while a
    malformed *explicit* argument is a caller bug and raises.
    """
    if backend is None:
        raw = os.environ.get("REPRO_BACKEND", "")
        stripped = raw.strip().lower()
        if not stripped:
            return "object"
        if stripped in BACKENDS:
            return stripped
        if raw not in _warned_backend_values:
            _warned_backend_values.add(raw)
            warnings.warn(
                f"ignoring REPRO_BACKEND={raw!r}: expected one of {BACKENDS}; "
                "using the object backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return "object"
    if backend not in BACKENDS:
        raise SpecificationError(
            f"unknown backend {backend!r}: expected one of {BACKENDS}"
        )
    return backend


# One lowering per goal object: goals are hash-consed (interned), so the
# weak-key memo both deduplicates across callers and dies with the goal.
_programs: "WeakKeyDictionary[Goal, KernelProgram]" = WeakKeyDictionary()


def kernel_for(goal: Goal) -> KernelProgram:
    """The (memoized) flat kernel program for ``goal``."""
    program = _programs.get(goal)
    if program is None:
        program = lower_goal(goal)
        _programs[goal] = program
    return program


# -- per-query dispatch --------------------------------------------------------


def traces_of(goal: Goal, backend: str | None = None,
              max_traces: int = 200_000) -> frozenset[tuple[str, ...]]:
    """All valid event sequences of ``goal`` on the chosen backend."""
    if resolve_backend(backend) == "kernel":
        return kernel_for(goal).traces(max_traces=max_traces)
    from ..ctr.traces import traces

    return traces(goal, max_traces=max_traces)


def is_executable_of(goal: Goal, backend: str | None = None,
                     max_traces: int = 200_000) -> bool:
    """Does ``goal`` have at least one valid execution?"""
    if resolve_backend(backend) == "kernel":
        return kernel_for(goal).is_executable(max_traces=max_traces)
    from ..ctr.traces import is_executable

    return is_executable(goal, max_traces=max_traces)


def count_traces_of(goal: Goal, backend: str | None = None,
                    max_traces: int = 200_000) -> TraceCount:
    """Distinct valid event sequences of ``goal``, saturating at budget."""
    if resolve_backend(backend) == "kernel":
        return kernel_for(goal).count_traces(max_traces=max_traces)
    from ..ctr.traces import count_traces

    return count_traces(goal, max_traces=max_traces)


def scheduler_for(goal: Goal, backend: str | None = None, test_hook=None):
    """A scheduler over ``goal`` on the chosen backend.

    Run-time transition conditions (``test_hook``) need live goal objects,
    so a hook always selects the object scheduler regardless of backend —
    the kernel lowering treats every :class:`~repro.ctr.formulas.Test` as
    statically passable.
    """
    if test_hook is None and resolve_backend(backend) == "kernel":
        return KernelScheduler(kernel_for(goal))
    from .scheduler import Scheduler

    return Scheduler(goal, test_hook=test_hook)


# -- shared-memory segments ----------------------------------------------------


@dataclass(frozen=True)
class SharedGoalHandle:
    """A pickle-light reference to a shared-memory payload.

    ``kind`` distinguishes goal blobs (shared-DAG JSON) from kernel
    program tables (the :meth:`~repro.ctr.kernel.KernelProgram.to_bytes`
    layout); ``size`` is the payload length (segments round up to page
    multiples, so the true length must travel with the name).
    """

    name: str
    size: int
    kind: str = "goal"


# Creator-side registry: segment name -> [shm, refcount]. The *creating*
# process owns unlinking; workers only ever attach and close.
_segments: dict[str, list] = {}
_segments_lock = threading.Lock()


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def _create_segment(payload: bytes, kind: str) -> SharedGoalHandle:
    shm = _shared_memory().SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    with _segments_lock:
        _segments[shm.name] = [shm, 1]
    return SharedGoalHandle(name=shm.name, size=len(payload), kind=kind)


def _attach_segment(name: str):
    """Attach to an existing segment without adopting ownership.

    ``SharedMemory(name=...)`` on Python < 3.13 registers the attachment
    with this process's ``resource_tracker``, which would unlink the
    creator's segment when *this* process exits and warn about a leak it
    does not own. 3.13 grew ``track=False`` for exactly this; older
    interpreters suppress the registration instead. (Suppressing beats
    attach-then-``unregister``: workers share the creator's tracker
    process, so an explicit unregister would erase the creator's own
    registration and make its eventual unlink double-unregister.)
    """
    shared_memory = _shared_memory()
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name, rtype):  # pragma: no cover - 3.13+ never here
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def export_goal(goal: Goal) -> SharedGoalHandle | None:
    """Publish ``goal``'s shared-DAG encoding to a shared-memory segment.

    Re-exporting a goal whose segment is still live bumps its refcount and
    returns the same handle, so overlapping fan-outs share one segment.
    Returns ``None`` when shared memory is unavailable (no ``/dev/shm``,
    permissions) — callers fall back to pickling the goal itself.
    """
    with _segments_lock:
        for name, entry in _segments.items():
            handle = entry[2] if len(entry) > 2 else None
            if handle is not None and entry[3] is goal:
                entry[1] += 1
                return handle
    try:
        from ..ctr.serialize import goal_to_shared_dict

        payload = json.dumps(
            goal_to_shared_dict(goal), separators=(",", ":")
        ).encode("utf-8")
        handle = _create_segment(payload, "goal")
    except (OSError, ValueError):
        return None
    with _segments_lock:
        entry = _segments.get(handle.name)
        if entry is not None:
            entry.extend([handle, goal])
    return handle


def export_program(program: KernelProgram) -> SharedGoalHandle | None:
    """Publish a kernel program's flat tables to a shared-memory segment."""
    try:
        return _create_segment(program.to_bytes(), "program")
    except (OSError, ValueError):
        return None


def release_goal(handle: SharedGoalHandle | None) -> None:
    """Drop one reference; the last release closes *and unlinks* the segment.

    Idempotent past zero and silent on unknown names, so cleanup paths can
    release unconditionally (including after a worker crash — the parent
    still owns the segment and this is what reclaims it).
    """
    if handle is None:
        return
    with _segments_lock:
        entry = _segments.get(handle.name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] > 0:
            return
        del _segments[handle.name]
        shm = entry[0]
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


def live_segments() -> tuple[str, ...]:
    """Names of segments this process currently owns (for leak tests)."""
    with _segments_lock:
        return tuple(_segments)


def release_all_segments() -> None:
    """Unconditionally reclaim every owned segment (atexit safety net)."""
    with _segments_lock:
        entries = list(_segments.values())
        _segments.clear()
    for entry in entries:
        try:
            entry[0].close()
            entry[0].unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


import atexit  # noqa: E402  (registered after the functions it needs)

atexit.register(release_all_segments)


# Worker-side attach caches: a fan-out submits many tasks against one
# segment; decode/map the payload once per process, not once per task.
# Bounded because segment names are single-use (never reused after unlink).
_attached_goals: dict[str, Goal] = {}
_ATTACH_CACHE_MAX = 64


def attach_goal(handle: SharedGoalHandle) -> Goal:
    """Rebuild (and re-intern) the goal published under ``handle``.

    The goal is decoded from a snapshot of the payload and the segment
    closed immediately — goal objects must outlive the creator's unlink.
    """
    cached = _attached_goals.get(handle.name)
    if cached is not None:
        return cached
    shm = _attach_segment(handle.name)
    try:
        payload = bytes(shm.buf[: handle.size])
    finally:
        shm.close()
    from ..ctr.serialize import goal_from_shared_dict

    goal = goal_from_shared_dict(json.loads(payload.decode("utf-8")))
    if len(_attached_goals) >= _ATTACH_CACHE_MAX:
        _attached_goals.clear()
    _attached_goals[handle.name] = goal
    return goal


# Programs are the zero-copy case: their arrays are memoryviews into the
# mapping, so the SharedMemory object is cached alongside the program and
# the mapping stays open for the worker's lifetime (closing it would
# invalidate the views; the pages are reclaimed when the process exits,
# and the *name* was already unlinked by the creator).
_attached_programs: dict[str, tuple] = {}


def attach_program(handle: SharedGoalHandle) -> KernelProgram:
    """Map the kernel program published under ``handle``, zero-copy.

    The returned program's tables are ``memoryview``\\ s into the shared
    pages — nothing is copied but the header — so every worker executes
    the creator's single set of frozen tables.
    """
    cached = _attached_programs.get(handle.name)
    if cached is not None:
        return cached[1]
    shm = _attach_segment(handle.name)
    program = KernelProgram.from_buffer(shm.buf[: handle.size])
    _attached_programs[handle.name] = (shm, program)
    return program


def _close_attached_programs() -> None:
    """Release mapped-table views, then the mappings (interpreter exit only).

    Without this, ``SharedMemory.__del__`` hits ``BufferError: cannot
    close exported pointers exist`` during teardown — the program's table
    views still point into the mapping.
    """
    for shm, program in _attached_programs.values():
        for name in ("kinds", "args", "lens", "children"):
            table = getattr(program, name, None)
            if isinstance(table, memoryview):
                table.release()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
    _attached_programs.clear()


atexit.register(_close_attached_programs)


def resolve_shared_goal(goal_or_handle) -> Goal:
    """Worker-side coercion: a handle attaches, a goal passes through.

    This is what lets every pool entry point accept either form — the
    shared-memory fast path and the pickle fallback share one signature.
    """
    if isinstance(goal_or_handle, SharedGoalHandle):
        return attach_goal(goal_or_handle)
    return goal_or_handle
