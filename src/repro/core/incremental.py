"""Incremental recompilation: evolving a compiled workflow in place.

Because Apply is defined constraint-by-constraint —
``Apply(C ∪ {δ}, G) = Apply(δ, Apply(C, G))`` (Definition 5.5) — a compiled
workflow can absorb a *new* constraint without recompiling from the
original graph: apply the new constraint to the already-compiled goal and
re-excise. For a specification that has already paid the ``d^N`` price,
adding one more constraint costs only ``d`` times the *current* size
rather than a full ``d^{N+1}`` recompilation, and in the common case where
the new constraint prunes branches the compiled goal *shrinks*.

This is the workflow-evolution story: policies arrive one at a time over
the lifetime of a deployed process, and each arrival is a cheap
incremental step with an immediate consistency verdict.

The token factory is re-seeded past the tokens already embedded in the
compiled goal so fresh ``send``/``receive`` pairs never collide.
"""

from __future__ import annotations

from ..constraints.algebra import Constraint
from ..ctr.formulas import Goal, Receive, Send, walk_unique
from .apply import apply_all
from .compiler import CompiledWorkflow
from .excise import excise
from .sync import TokenFactory

__all__ = ["used_tokens", "add_constraints", "add_constraint"]


def used_tokens(goal: Goal) -> frozenset[str]:
    """Every token named by a ``send``/``receive`` node of ``goal``."""
    return frozenset(
        node.token for node in walk_unique(goal)
        if isinstance(node, (Send, Receive))
    )


def _next_free_token_factory(goal: Goal) -> TokenFactory:
    """A factory whose fresh tokens avoid every token already in ``goal``.

    The embedded tokens are collected from the actual ``send``/``receive``
    nodes, not inferred from a naming convention — tokens that do not look
    like ``xi<number>`` (hand-written specs, foreign serializations) are
    avoided all the same.
    """
    return TokenFactory(avoid=used_tokens(goal))


def add_constraints(
    compiled: CompiledWorkflow, constraints: list[Constraint]
) -> CompiledWorkflow:
    """Compile additional constraints into an already-compiled workflow.

    The result is equivalent to recompiling the source with the combined
    constraint set (property-tested), but the work done is proportional to
    the *compiled* goal.
    """
    if not constraints:
        return compiled
    if not compiled.consistent:
        return CompiledWorkflow(
            source=compiled.source,
            constraints=compiled.constraints + tuple(constraints),
            applied=compiled.applied,
            goal=compiled.goal,
        )
    tokens = _next_free_token_factory(compiled.goal)
    applied = apply_all(list(constraints), compiled.goal, tokens)
    return CompiledWorkflow(
        source=compiled.source,
        constraints=compiled.constraints + tuple(constraints),
        applied=applied,
        goal=excise(applied),
    )


def add_constraint(compiled: CompiledWorkflow, constraint: Constraint) -> CompiledWorkflow:
    """Single-constraint convenience wrapper around :func:`add_constraints`."""
    return add_constraints(compiled, [constraint])
