"""The Apply transformation (Definitions 5.1, 5.3, 5.5).

``Apply(C, G)`` compiles a CONSTR constraint ``C`` into a unique-event
concurrent-Horn goal ``G``, producing a goal whose executions are precisely
the executions of ``G`` that satisfy ``C`` — i.e. ``Apply(C, G) ≡ G ∧ C``
(Propositions 5.2/5.4/5.6) — without using the constrained-execution
connective ``∧`` at run time.

The case analysis follows the paper:

* **positive primitive** ``∇α``: keep exactly the parts of the goal where
  ``α`` occurs; a serial/concurrent composition turns into the disjunction
  over which component provides ``α``; components that cannot provide it
  become ``¬path`` and are absorbed on the spot;
* **negative primitive** ``¬∇α``: delete every execution in which ``α``
  occurs (each occurrence of ``α`` becomes ``¬path``);
* **order** ``∇α ⊗ ∇β``: first force both events to occur, then serialise
  them with a fresh ``send``/``receive`` token (:func:`~repro.core.sync.sync_order`);
* ``C₁ ∧ C₂``: apply sequentially; ``C₁ ∨ C₂``: duplicate the goal — this
  duplication is the source of the ``d^N`` factor in Theorem 5.11.

Serial conjunctions and concurrent conjunctions are handled n-ary: for the
binary case this coincides with Definition 5.1, and for longer compositions
it produces the same goal the binary fold would after ``¬path`` absorption,
just without building the intermediate garbage.

Because the smart constructors ``seq``/``par``/``alt`` absorb ``¬path``
eagerly (the tautologies of Section 5), the result of :func:`apply_constraint`
is always either a concurrent-Horn goal or the literal ``NEG_PATH``.

Sharing-awareness: goals are hash-consed, so the ``C₁ ∨ C₂`` duplication
produces branches that *share* every untouched subterm. One
:class:`_ApplyMemo` per ``apply_all``/``apply_constraint`` invocation
memoises the primitive cases per ``(event, node)`` and whole token-free
subproblems per ``(constraint, node)``, so each shared node is transformed
once no matter how many of the ``d^N`` branches contain it. Subproblems
that mint synchronization tokens (any constraint containing a serial/order
part) are **never** cached: every application must draw a fresh token from
the :class:`~repro.core.sync.TokenFactory`, and replaying a cached result
would duplicate a token and break send/receive freshness.
"""

from __future__ import annotations

from ..constraints.algebra import And, Constraint, Or, Primitive, SerialConstraint
from ..constraints.normalize import normalize
from ..ctr.formulas import (
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    NegPath,
    Possibility,
    Serial,
    alt,
    par,
    seq,
)
from .sync import TokenFactory, sync_order

__all__ = ["apply_constraint", "apply_all"]


class _ApplyMemo:
    """Per-run memo tables: one instance per top-level Apply invocation.

    ``must``/``never`` map ``(event, node) -> transformed node`` for the
    primitive cases (always pure). ``subproblem`` maps
    ``(constraint, node) -> transformed node`` for token-free constraint
    applications. ``token_free`` caches, per constraint object, whether it
    is safe to memoise at all.
    """

    __slots__ = ("must", "never", "subproblem", "token_free")

    def __init__(self) -> None:
        self.must: dict[tuple[str, Goal], Goal] = {}
        self.never: dict[tuple[str, Goal], Goal] = {}
        self.subproblem: dict[tuple[Constraint, Goal], Goal] = {}
        self.token_free: dict[Constraint, bool] = {}

    def is_token_free(self, constraint: Constraint) -> bool:
        cached = self.token_free.get(constraint)
        if cached is None:
            if isinstance(constraint, SerialConstraint):
                cached = False
            elif isinstance(constraint, (And, Or)):
                cached = all(self.is_token_free(p) for p in constraint.parts)
            else:
                cached = True
            self.token_free[constraint] = cached
        return cached


def apply_constraint(
    constraint: Constraint, goal: Goal, tokens: TokenFactory | None = None
) -> Goal:
    """Compile ``constraint`` into ``goal``: the executable form of ``goal ∧ constraint``.

    ``goal`` must have the unique-event property (Definition 3.1); the
    caller is responsible for checking it (the end-to-end compiler in
    :mod:`repro.core.compiler` does). The result preserves that property.
    """
    if tokens is None:
        tokens = TokenFactory()
    from ..ctr.simplify import simplify

    return simplify(_apply(normalize(constraint), goal, tokens, _ApplyMemo()))


def apply_all(
    constraints: list[Constraint],
    goal: Goal,
    tokens: TokenFactory | None = None,
    tracer=None,
) -> Goal:
    """Compile a whole constraint set ``C = {δ₁, …, δₙ}`` (Definition 5.5).

    The set is read as the conjunction ``δ₁ ∧ … ∧ δₙ`` and applied
    sequentially. ``tracer`` (a :class:`repro.obs.tracer.Tracer`) times
    each constraint's application as a child span, annotated with the
    intermediate goal size — the quantity Theorem 5.11 bounds.
    """
    if tokens is None:
        tokens = TokenFactory()
    from ..ctr.formulas import goal_size
    from ..ctr.simplify import simplify

    memo = _ApplyMemo()
    result = goal
    for index, constraint in enumerate(constraints):
        if tracer is None:
            result = _apply(normalize(constraint), result, tokens, memo)
        else:
            with tracer.span("apply.constraint", index=index,
                             constraint=str(constraint)) as span:
                result = _apply(normalize(constraint), result, tokens, memo)
                span.annotate(size_after=goal_size(result))
        if isinstance(result, NegPath):
            return NEG_PATH
    return simplify(result)


def _apply(
    constraint: Constraint, goal: Goal, tokens: TokenFactory, memo: _ApplyMemo
) -> Goal:
    if isinstance(goal, NegPath):
        return NEG_PATH

    if isinstance(constraint, Primitive):
        if constraint.positive:
            return _apply_must(constraint.event, goal, memo)
        return _apply_never(constraint.event, goal, memo)

    if isinstance(constraint, SerialConstraint):
        # normalize() guarantees exactly two events here.
        alpha, beta = constraint.events
        forced = _apply_must(alpha, _apply_must(beta, goal, memo), memo)
        if isinstance(forced, NegPath):
            return NEG_PATH
        return sync_order(alpha, beta, forced, tokens.fresh())

    cacheable = memo.is_token_free(constraint)
    if cacheable:
        key = (constraint, goal)
        cached = memo.subproblem.get(key)
        if cached is not None:
            return cached

    if isinstance(constraint, And):
        result: Goal = goal
        for part in constraint.parts:
            result = _apply(part, result, tokens, memo)
            if isinstance(result, NegPath):
                result = NEG_PATH
                break
    elif isinstance(constraint, Or):
        result = alt(*(_apply(part, goal, tokens, memo) for part in constraint.parts))
    else:
        raise TypeError(f"cannot apply {type(constraint).__name__}")  # pragma: no cover

    if cacheable:
        memo.subproblem[key] = result
    return result


def _apply_must(alpha: str, goal: Goal, memo: _ApplyMemo) -> Goal:
    """``Apply(∇α, T)``: keep exactly the executions of ``T`` where ``α`` occurs."""
    if isinstance(goal, Atom):
        return goal if goal.name == alpha else NEG_PATH

    key = (alpha, goal)
    cached = memo.must.get(key)
    if cached is not None:
        return cached
    result = _apply_must_uncached(alpha, goal, memo)
    memo.must[key] = result
    return result


def _apply_must_uncached(alpha: str, goal: Goal, memo: _ApplyMemo) -> Goal:
    if isinstance(goal, Serial):
        parts = goal.parts
        branches = []
        for i, part in enumerate(parts):
            transformed = _apply_must(alpha, part, memo)
            if isinstance(transformed, NegPath):
                continue
            branches.append(seq(*parts[:i], transformed, *parts[i + 1:]))
        return alt(*branches) if branches else NEG_PATH

    if isinstance(goal, Concurrent):
        parts = goal.parts
        branches = []
        for i, part in enumerate(parts):
            transformed = _apply_must(alpha, part, memo)
            if isinstance(transformed, NegPath):
                continue
            branches.append(par(*parts[:i], transformed, *parts[i + 1:]))
        return alt(*branches) if branches else NEG_PATH

    if isinstance(goal, Choice):
        return alt(*(_apply_must(alpha, part, memo) for part in goal.parts))

    if isinstance(goal, Isolated):
        body = _apply_must(alpha, goal.body, memo)
        return NEG_PATH if isinstance(body, NegPath) else Isolated(body)

    if isinstance(goal, Possibility):
        # Events inside a ◇ test never actually occur, so they cannot
        # discharge a positive primitive constraint.
        return NEG_PATH

    # Send / Receive / Test / Empty / NegPath: α cannot occur here.
    return NEG_PATH


def _apply_never(alpha: str, goal: Goal, memo: _ApplyMemo) -> Goal:
    """``Apply(¬∇α, T)``: delete the executions of ``T`` where ``α`` occurs."""
    if isinstance(goal, Atom):
        return NEG_PATH if goal.name == alpha else goal

    key = (alpha, goal)
    cached = memo.never.get(key)
    if cached is not None:
        return cached

    if isinstance(goal, Serial):
        result: Goal = seq(*(_apply_never(alpha, part, memo) for part in goal.parts))
    elif isinstance(goal, Concurrent):
        result = par(*(_apply_never(alpha, part, memo) for part in goal.parts))
    elif isinstance(goal, Choice):
        result = alt(*(_apply_never(alpha, part, memo) for part in goal.parts))
    elif isinstance(goal, Isolated):
        body = _apply_never(alpha, goal.body, memo)
        result = NEG_PATH if isinstance(body, NegPath) else Isolated(body)
    elif isinstance(goal, Possibility):
        # Hypothetical occurrences of α are not occurrences; keep the test.
        result = goal
    else:
        result = goal

    memo.never[key] = result
    return result
