"""The Excise transformation: knot detection and removal (Section 5).

After Apply, a goal may contain ``send``/``receive`` pairs that can never
fire in any order — *knots* — e.g. ``receive(ξ) ⊗ β ⊗ α ⊗ send(ξ)``, where
the receive waits for a send that is scheduled after it. A knotted
sub-formula is CTR-equivalent to ``¬path``. Excise rewrites a goal into an
equivalent knot-free concurrent-Horn goal, or ``¬path`` if no execution
survives.

Algorithm
---------
For a **choice-free** goal, executability is a reachability question on a
*precedence graph*: one node per elementary step, edges

* from the series-parallel structure (each last step of a serial part
  precedes each first step of the next part),
* from each ``send(ξ)`` to its matching ``receive(ξ)``,
* rerouted through virtual entry/exit nodes of ``⊙`` blocks (a token that
  crosses an isolation boundary must be produced before the block starts,
  or consumed after it ends — an isolated block cannot pause mid-way to
  wait for a concurrent sender).

The goal is executable iff every ``receive`` has a matching ``send`` and
the graph is acyclic; this check is linear in the goal size (Theorem
5.11's Excise bound).

Choices distribute: ``Excise(G₁ ∨ G₂) = Excise(G₁) ∨ Excise(G₂)``. A choice
*nested* inside a serial/concurrent context is handled in one of two ways:

* if no synchronization token crosses the choice's boundary (the common
  case — in particular every choice Apply itself introduces is either at
  the top level or token-free), its alternatives are excised
  independently and in place, preserving near-linear total time;
* otherwise the choice is *entangled* with its context and Excise
  enumerates the joint resolutions of the entangled choices, pruning the
  alternatives that are executable under no resolution. If viability is
  not rectangular across entangled choices, the surviving combinations
  are hoisted into an explicit top-level disjunction so that the result
  represents *exactly* the allowed executions. This is the only
  potentially super-linear path; it is exponential only in the number of
  mutually entangled choices (see DESIGN.md, "Semantic choices").
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field

from ..ctr.formulas import (
    EMPTY,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
)
from ..ctr.simplify import simplify

__all__ = ["ExciseStats", "excise", "has_knot", "flat_executable"]


@dataclass
class ExciseStats:
    """Accounting of one Excise pass (for the observability metrics).

    ``knots`` counts choice-free (sub-)goals found non-executable — each
    is a knot the transformation removed; the choice counters expose which
    of the two nesting regimes ran, and the combo counters size the
    entangled enumeration, Excise's only potentially super-linear path.
    """

    knots: int = 0
    local_choices: int = 0
    entangled_choices: int = 0
    combos_tried: int = 0
    combos_viable: int = 0


# The stats sink of the excise pass in flight, if any. A module global
# rather than a threaded parameter: the recursion fans out through many
# helpers (including the `excise` re-entry for ◇ bodies), and the library
# is single-threaded per pass.
_stats: ExciseStats | None = None

# Per-run memo of flat_executable verdicts, keyed by (shared) node. Set up
# by the outermost `excise` call and inherited by re-entrant calls (◇
# bodies, entangled-combo resolution), so one pass never rebuilds the
# precedence graph of the same shared subgoal twice.
_flat_memo: dict[Goal, bool] | None = None


def excise(goal: Goal, stats: ExciseStats | None = None) -> Goal:
    """Remove every knotted sub-formula; return the pruned goal or ``¬path``.

    Pass an :class:`ExciseStats` to collect how much pruning the pass did;
    the default collects nothing and adds no work.
    """
    global _stats, _flat_memo
    previous_stats, previous_memo = _stats, _flat_memo
    if stats is not None:
        _stats = stats
    if _flat_memo is None:
        _flat_memo = {}
    try:
        return _excise(goal)
    finally:
        _stats, _flat_memo = previous_stats, previous_memo


def has_knot(goal: Goal) -> bool:
    """True iff excising ``goal`` changes it (some alternative is knotted)."""
    return excise(goal) != simplify(goal)


def _excise(goal: Goal) -> Goal:
    goal = simplify(goal)
    if isinstance(goal, (NegPath, Empty)):
        return goal

    if isinstance(goal, Choice):
        # Top-level alternatives are independent executions.
        return alt(*(_excise(part) for part in goal.parts))

    paths = _topmost_choices(goal)
    if not paths:
        if flat_executable(goal):
            return goal
        if _stats is not None:
            _stats.knots += 1
        return NEG_PATH

    local_paths: list[tuple[int, ...]] = []
    entangled_paths: list[tuple[int, ...]] = []
    for path in paths:
        if _tokens_crossing(goal, path):
            entangled_paths.append(path)
        else:
            local_paths.append(path)
    if _stats is not None:
        _stats.local_choices += len(local_paths)
        _stats.entangled_choices += len(entangled_paths)

    # Local choices: no token crosses their boundary, so each alternative's
    # viability is intrinsic — prune them in place (recursion on strict
    # subtrees, so this is well-founded).
    replacements: list[tuple[tuple[int, ...], Goal]] = []
    for path in local_paths:
        subtree = _at(goal, path)
        pruned = alt(*(_excise(part) for part in subtree.parts))
        if isinstance(pruned, NegPath):
            return NEG_PATH  # a mandatory sub-goal with no viable branch
        replacements.append((path, pruned))
    pruned_goal = _replace_many(goal, replacements)

    if entangled_paths:
        return _excise_entangled(pruned_goal, entangled_paths)

    # Context executability is independent of how the (token-free) local
    # choices resolve: check the skeleton with them blanked out.
    skeleton = simplify(_replace_many(pruned_goal, [(p, EMPTY) for p in local_paths]))
    if isinstance(skeleton, Empty) or flat_executable(skeleton):
        return simplify(pruned_goal)
    if _stats is not None:
        _stats.knots += 1
    return NEG_PATH


def _excise_entangled(goal: Goal, paths: list[tuple[int, ...]]) -> Goal:
    """Jointly resolve the entangled choices and prune or hoist the result.

    Each substituted resolution removes those choice nodes entirely, so the
    recursive ``_excise`` call operates on a goal with strictly fewer
    choices — the recursion is well-founded.
    """
    alternative_counts = [len(_at(goal, p).parts) for p in paths]
    viable_combos: list[tuple[int, ...]] = []
    resolved_by_combo: dict[tuple[int, ...], Goal] = {}
    for combo in itertools.product(*(range(n) for n in alternative_counts)):
        if _stats is not None:
            _stats.combos_tried += 1
        resolution = [
            (path, _at(goal, path).parts[index]) for path, index in zip(paths, combo)
        ]
        resolved = _excise(_replace_many(goal, resolution))
        if not isinstance(resolved, NegPath):
            viable_combos.append(combo)
            resolved_by_combo[combo] = resolved
            if _stats is not None:
                _stats.combos_viable += 1

    if not viable_combos:
        return NEG_PATH
    if len(viable_combos) == 1:
        return resolved_by_combo[viable_combos[0]]

    # Rectangularity: if the viable combinations form the full product of
    # per-choice viable alternatives, prune each choice in place; otherwise
    # correctness demands hoisting the surviving combinations.
    per_choice = [sorted({combo[i] for combo in viable_combos}) for i in range(len(paths))]
    full_product = 1
    for options in per_choice:
        full_product *= len(options)
    if full_product == len(viable_combos):
        replacements = []
        for path, options in zip(paths, per_choice):
            subtree = _at(goal, path)
            replacements.append((path, alt(*(subtree.parts[i] for i in options))))
        return simplify(_replace_many(goal, replacements))

    return alt(*(resolved_by_combo[combo] for combo in viable_combos))


# -- path-addressed tree surgery ----------------------------------------------
#
# Replacements use *raw* node constructors so the tree shape (and hence all
# other paths) stays stable; callers simplify afterwards.


def _children(goal: Goal) -> tuple[Goal, ...]:
    if isinstance(goal, (Serial, Concurrent, Choice)):
        return goal.parts
    if isinstance(goal, Isolated):
        return (goal.body,)
    return ()


def _rebuild_raw(goal: Goal, children: tuple[Goal, ...]) -> Goal:
    if isinstance(goal, Serial):
        return Serial(children)
    if isinstance(goal, Concurrent):
        return Concurrent(children)
    if isinstance(goal, Choice):
        return Choice(children)
    if isinstance(goal, Isolated):
        return Isolated(children[0])
    raise TypeError(f"{type(goal).__name__} has no children")  # pragma: no cover


def _at(goal: Goal, path: tuple[int, ...]) -> Goal:
    node = goal
    for index in path:
        node = _children(node)[index]
    return node


def _replace(goal: Goal, path: tuple[int, ...], replacement: Goal) -> Goal:
    if not path:
        return replacement
    children = list(_children(goal))
    children[path[0]] = _replace(children[path[0]], path[1:], replacement)
    return _rebuild_raw(goal, tuple(children))


def _replace_many(goal: Goal, replacements: list[tuple[tuple[int, ...], Goal]]) -> Goal:
    for path, replacement in replacements:
        goal = _replace(goal, path, replacement)
    return goal


def _topmost_choices(goal: Goal) -> list[tuple[int, ...]]:
    """Paths to the outermost Choice nodes (◇ bodies are handled separately)."""
    found: list[tuple[int, ...]] = []

    def visit(node: Goal, path: tuple[int, ...]) -> None:
        if isinstance(node, Choice):
            found.append(path)
            return
        if isinstance(node, Possibility):
            return
        for index, child in enumerate(_children(node)):
            visit(child, path + (index,))

    visit(goal, ())
    return found


# -- token bookkeeping ---------------------------------------------------------


# token-uses is a pure function of structure; a weak cache keyed by the
# (hash-consed) node makes the repeated entanglement checks DAG-sized:
# `_tokens_crossing` re-walks the goal once per topmost choice, but every
# shared subterm's answer is computed once and reused across walks, runs,
# and incremental recompilations.
_TOKEN_USES_CACHE: "weakref.WeakKeyDictionary[Goal, tuple[frozenset[str], frozenset[str]]]" = (
    weakref.WeakKeyDictionary()
)


def _token_uses(goal: Goal) -> tuple[frozenset[str], frozenset[str]]:
    """(tokens sent, tokens received) anywhere inside ``goal``."""
    cached = _TOKEN_USES_CACHE.get(goal)
    if cached is not None:
        return cached
    sends: set[str] = set()
    receives: set[str] = set()
    seen: set[int] = set()
    stack = [goal]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node is not goal:
            sub = _TOKEN_USES_CACHE.get(node)
            if sub is not None:
                sends |= sub[0]
                receives |= sub[1]
                continue
        if isinstance(node, Send):
            sends.add(node.token)
        elif isinstance(node, Receive):
            receives.add(node.token)
        elif isinstance(node, Possibility):
            continue  # hypothetical: no real tokens
        else:
            stack.extend(_children(node))
    result = (frozenset(sends), frozenset(receives))
    try:
        _TOKEN_USES_CACHE[goal] = result
    except TypeError:  # pragma: no cover - non-weakrefable future node
        pass
    return result


def _tokens_crossing(goal: Goal, path: tuple[int, ...]) -> bool:
    """Does any token have one endpoint inside ``goal[path]`` and one outside?"""
    subtree = _at(goal, path)
    inner_sends, inner_receives = _token_uses(subtree)
    if not inner_sends and not inner_receives:
        return False
    outer = _replace(goal, path, EMPTY)
    outer_sends, outer_receives = _token_uses(outer)
    return bool(inner_sends & outer_receives) or bool(inner_receives & outer_sends)


# -- choice-free executability --------------------------------------------------


@dataclass
class _GraphBuilder:
    """Builds the precedence graph of a choice-free goal."""

    edges: dict[int, set[int]] = field(default_factory=dict)
    sends: dict[str, int] = field(default_factory=dict)
    receives: dict[str, int] = field(default_factory=dict)
    # Per-node chain of enclosing ⊙ blocks, outermost first, as
    # (entry, exit) node pairs; used to reroute crossing token edges.
    blocks_of: dict[int, tuple[tuple[int, int], ...]] = field(default_factory=dict)
    _counter: int = 0

    def node(self, enclosing: tuple[tuple[int, int], ...]) -> int:
        self._counter += 1
        self.edges[self._counter] = set()
        self.blocks_of[self._counter] = enclosing
        return self._counter

    def edge(self, src: int, dst: int) -> None:
        self.edges[src].add(dst)

    def build(
        self, goal: Goal, enclosing: tuple[tuple[int, int], ...]
    ) -> tuple[set[int], set[int]]:
        """Returns (source nodes, sink nodes) of ``goal``'s subgraph."""
        if isinstance(goal, (Atom, Test, Possibility, Empty)):
            n = self.node(enclosing)
            return {n}, {n}
        if isinstance(goal, Send):
            n = self.node(enclosing)
            if goal.token in self.sends:
                raise _MultiTokenError(goal.token)
            self.sends[goal.token] = n
            return {n}, {n}
        if isinstance(goal, Receive):
            n = self.node(enclosing)
            if goal.token in self.receives:
                raise _MultiTokenError(goal.token)
            self.receives[goal.token] = n
            return {n}, {n}
        if isinstance(goal, Serial):
            sources: set[int] = set()
            previous_sinks: set[int] = set()
            for index, part in enumerate(goal.parts):
                part_sources, part_sinks = self.build(part, enclosing)
                if index == 0:
                    sources = part_sources
                else:
                    for s in previous_sinks:
                        for t in part_sources:
                            self.edge(s, t)
                previous_sinks = part_sinks
            return sources, previous_sinks
        if isinstance(goal, Concurrent):
            sources, sinks = set(), set()
            for part in goal.parts:
                part_sources, part_sinks = self.build(part, enclosing)
                sources |= part_sources
                sinks |= part_sinks
            return sources, sinks
        if isinstance(goal, Isolated):
            entry = self.node(enclosing)
            exit_ = self.node(enclosing)
            inner = enclosing + ((entry, exit_),)
            body_sources, body_sinks = self.build(goal.body, inner)
            for t in body_sources:
                self.edge(entry, t)
            for s in body_sinks:
                self.edge(s, exit_)
            return {entry}, {exit_}
        raise TypeError(f"unexpected node {type(goal).__name__} in flat goal")

    def add_token_edges(self) -> bool:
        """Wire send → receive edges; False if some receive can never fire."""
        for token, receive_node in self.receives.items():
            send_node = self.sends.get(token)
            if send_node is None:
                return False
            send_blocks = self.blocks_of[send_node]
            recv_blocks = self.blocks_of[receive_node]
            shared = 0
            for a, b in zip(send_blocks, recv_blocks):
                if a != b:
                    break
                shared += 1
            # The send must complete before the outermost receiver-only ⊙
            # block starts (an isolated block cannot wait mid-way), and the
            # receive must wait until the outermost sender-only block ends.
            src = send_blocks[shared][1] if len(send_blocks) > shared else send_node
            dst = recv_blocks[shared][0] if len(recv_blocks) > shared else receive_node
            self.edge(src, dst)
        return True

    def acyclic(self) -> bool:
        indegree = {n: 0 for n in self.edges}
        for targets in self.edges.values():
            for t in targets:
                indegree[t] += 1
        queue = [n for n, d in indegree.items() if d == 0]
        visited = 0
        while queue:
            n = queue.pop()
            visited += 1
            for t in self.edges[n]:
                indegree[t] -= 1
                if indegree[t] == 0:
                    queue.append(t)
        return visited == len(self.edges)


class _MultiTokenError(Exception):
    def __init__(self, token: str):
        self.token = token
        super().__init__(f"token {token!r} occurs more than once in a resolved goal")


def flat_executable(goal: Goal) -> bool:
    """Executability of a choice-free goal: linear precedence-graph check.

    Also validates every ``◇`` body (a possibility test over an
    inconsistent goal can never pass, making the enclosing execution dead).

    Within one :func:`excise` run, verdicts are memoised per shared node —
    the entangled-combo enumeration asks about the same resolved subgoals
    over and over, and hash-consing makes those subgoals *the same object*.
    """
    if isinstance(goal, NegPath):
        return False
    if isinstance(goal, Empty):
        return True
    memo = _flat_memo
    if memo is not None and goal in memo:
        return memo[goal]
    result = _flat_executable(goal)
    if memo is not None:
        memo[goal] = result
    return result


def _flat_executable(goal: Goal) -> bool:
    for body in _possibility_bodies(goal):
        if isinstance(excise(body), NegPath):
            return False
    builder = _GraphBuilder()
    try:
        builder.build(goal, ())
    except _MultiTokenError:
        # Degenerate hand-written goals may reuse a token; fall back to the
        # exhaustive machine search, which is always correct.
        from ..ctr.machine import can_complete

        return can_complete(goal)
    if not builder.add_token_edges():
        return False
    return builder.acyclic()


def _possibility_bodies(goal: Goal):
    stack = [goal]
    while stack:
        node = stack.pop()
        if isinstance(node, Possibility):
            yield node.body
            continue
        stack.extend(_children(node))
