"""The pro-active workflow scheduler (Section 4).

Because compilation "compiles the constraints into" the goal, the scheduler
never evaluates a temporal constraint at run time: it simply walks the
compiled goal. At every stage it exposes the set of events *eligible to
start* (:meth:`Scheduler.eligible`); firing one (:meth:`Scheduler.fire`)
advances the residual goal. Every sequence the scheduler can produce is an
allowed execution, and every allowed execution can be produced — soundness
and completeness are property-tested against the trace semantics.

Implementation: a lazy subset construction over the non-deterministic
:class:`~repro.ctr.machine.Machine`. The scheduler state is the set of
machine configurations compatible with the events fired so far; silent
``send``/``receive``/``◇`` steps are closed over on demand. On compiled
(excised) goals, whose choices are token-free or already hoisted, the
configuration set stays small and a full path costs time linear in the
original graph — the paper's scheduling bound.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..ctr.formulas import Goal
from ..ctr.machine import Config, Machine
from ..errors import IneligibleEventError, SchedulingError
from ..ctr.traces import TooManyTracesError

__all__ = ["Scheduler"]


def _externalize(goal: Goal) -> Goal:
    """Rewrite machine-internal residual nodes into plain CTR structure.

    ``Tail`` suffixes become explicit serial goals and ``Running`` markers
    become ``Isolated`` regions (re-entering isolation on resume only
    *narrows* interleaving back to what the original goal allowed).
    """
    from ..ctr.formulas import Choice, Concurrent, Isolated, Serial, alt, par, seq
    from ..ctr.machine import Running, Tail

    if isinstance(goal, Tail):
        return seq(*(_externalize(p) for p in goal.parts[goal.start:]))
    if isinstance(goal, Running):
        # Keep the marker: the remaining region must still complete
        # without interleaving (serialized natively by ctr.serialize).
        return Running(_externalize(goal.body))
    if isinstance(goal, Serial):
        return seq(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Concurrent):
        return par(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Choice):
        return alt(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Isolated):
        return Isolated(_externalize(goal.body))
    return goal


class Scheduler:
    """Step-by-step executor of a compiled workflow goal.

    >>> from repro.ctr.formulas import atoms
    >>> a, b = atoms("a b")
    >>> s = Scheduler(a >> b)
    >>> sorted(s.eligible())
    ['a']
    >>> s.fire("a"); sorted(s.eligible())
    ['b']
    """

    def __init__(self, goal: Goal, test_hook=None):
        self._machine = Machine(goal, test_hook=test_hook)
        self._initial: frozenset[Config] = frozenset((self._machine.initial(),))
        self._state = self._initial
        self._history: list[str] = []

    # -- introspection -------------------------------------------------------

    @property
    def history(self) -> tuple[str, ...]:
        """The events fired so far, in order."""
        return tuple(self._history)

    def eligible(self) -> frozenset[str]:
        """Events that may start now (the paper's "events eligible to start")."""
        events: set[str] = set()
        for config in self._state:
            events.update(self._machine.successors(config))
        return frozenset(events)

    def can_finish(self) -> bool:
        """May the workflow terminate successfully right now?"""
        return any(self._machine.is_final(config) for config in self._state)

    @property
    def finished(self) -> bool:
        """No event is eligible any more (the run is over)."""
        return not self.eligible()

    def is_stuck(self) -> bool:
        """True if the run can neither continue nor finish (should never
        happen on an excised goal — asserted by the test-suite)."""
        return not self.eligible() and not self.can_finish()

    # -- driving -------------------------------------------------------------

    def fire(self, event: str) -> None:
        """Record that ``event`` has started/occurred, advancing the state."""
        next_state: set[Config] = set()
        for config in self._state:
            next_state.update(self._machine.successors(config).get(event, ()))
        if not next_state:
            raise IneligibleEventError(event, self.eligible())
        self._state = frozenset(next_state)
        self._history.append(event)

    def reset(self) -> None:
        """Return to the initial state."""
        self._state = self._initial
        self._history = []

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable checkpoint of the run (for crash recovery).

        Captures the residual goals, sent tokens, and event history. The
        machine's internal suffix sharing is flattened on save, so a
        restored scheduler is behaviourally identical though its residual
        goals may be structurally rebuilt.
        """
        from ..ctr.serialize import goal_to_dict

        return {
            "history": list(self._history),
            "configs": [
                {"goal": goal_to_dict(_externalize(c.goal)), "tokens": sorted(c.tokens)}
                for c in sorted(self._state, key=repr)
            ],
        }

    def restore(self, snapshot: dict) -> None:
        """Resume from a :meth:`snapshot` taken on an equivalent scheduler."""
        from ..ctr.serialize import goal_from_dict

        self._history = list(snapshot["history"])
        self._state = frozenset(
            Config(goal_from_dict(entry["goal"]), frozenset(entry["tokens"]))
            for entry in snapshot["configs"]
        )

    def run(
        self,
        strategy: Callable[[frozenset[str]], str] | None = None,
        max_steps: int = 100_000,
    ) -> tuple[str, ...]:
        """Drive the workflow to completion, returning the schedule.

        ``strategy`` picks the next event among the eligible set; the
        default picks the lexicographically smallest, which is
        deterministic and always safe on a compiled goal.
        """
        pick = strategy or (lambda events: min(events))
        for _ in range(max_steps):
            events = self.eligible()
            if not events:
                if self.can_finish():
                    return self.history
                raise SchedulingError(
                    "workflow is stuck: no eligible event and cannot finish "
                    "(was the goal excised?)"
                )
            self.fire(pick(events))
        raise SchedulingError(f"workflow did not finish within {max_steps} steps")

    # -- exhaustive enumeration ------------------------------------------------

    def enumerate_schedules(self, limit: int = 200_000) -> Iterator[tuple[str, ...]]:
        """Yield every allowed complete event sequence (depth-first).

        Enumeration is linear in the path length per schedule; the *number*
        of schedules can of course be exponential, hence ``limit``.
        """
        produced = 0
        seen_outputs: set[tuple[str, ...]] = set()

        def dfs(state: frozenset[Config], prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
            nonlocal produced
            if any(self._machine.is_final(config) for config in state):
                if prefix not in seen_outputs:
                    seen_outputs.add(prefix)
                    produced += 1
                    if produced > limit:
                        raise TooManyTracesError(limit)
                    yield prefix
            events: dict[str, set[Config]] = {}
            for config in state:
                for event, targets in self._machine.successors(config).items():
                    events.setdefault(event, set()).update(targets)
            for event in sorted(events):
                yield from dfs(frozenset(events[event]), prefix + (event,))

        yield from dfs(self._state, tuple(self._history))
