"""The pro-active workflow scheduler (Section 4).

Because compilation "compiles the constraints into" the goal, the scheduler
never evaluates a temporal constraint at run time: it simply walks the
compiled goal. At every stage it exposes the set of events *eligible to
start* (:meth:`Scheduler.eligible`); firing one (:meth:`Scheduler.fire`)
advances the residual goal. Every sequence the scheduler can produce is an
allowed execution, and every allowed execution can be produced — soundness
and completeness are property-tested against the trace semantics.

Implementation: a lazy subset construction over the non-deterministic
:class:`~repro.ctr.machine.Machine`. The scheduler state is the set of
machine configurations compatible with the events fired so far; silent
``send``/``receive``/``◇`` steps are closed over on demand. On compiled
(excised) goals, whose choices are token-free or already hoisted, the
configuration set stays small and a full path costs time linear in the
original graph — the paper's scheduling bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..ctr.formulas import Goal
from ..ctr.machine import Config, Machine
from ..errors import IneligibleEventError, SchedulingError
from ..ctr.traces import TooManyTracesError

__all__ = ["Scheduler", "SchedulerMark", "SchedulerStats", "seeded_strategy"]


def seeded_strategy(seed: int) -> Callable[[frozenset[str]], str]:
    """A deterministic pseudo-random pick for :meth:`Scheduler.run`.

    Draws from a :class:`random.Random` seeded with ``seed`` over the
    *sorted* eligible set, so the same seed replays the same schedule on
    any machine and in any process — the witness-determinism contract of
    :func:`repro.core.verify.verify_property`'s ``seed`` parameter.
    """
    import random

    rng = random.Random(seed)
    return lambda events: rng.choice(sorted(events))


@dataclass
class SchedulerStats:
    """Run-time accounting of one scheduler's work, fed to the metrics
    registry by the engine at the end of a run.

    ``configs_expanded`` counts machine configurations whose successors
    were computed in :meth:`Scheduler.eligible` — the quantity the paper's
    linear-scheduling bound is about; ``viability_nodes`` counts memo
    entries decided by the failover query, the price of each reroute.
    """

    steps: int = 0
    eligible_calls: int = 0
    configs_expanded: int = 0
    rewinds: int = 0
    viability_checks: int = 0
    viability_nodes: int = 0


@dataclass(frozen=True, slots=True)
class SchedulerMark:
    """An O(1) mid-run checkpoint of a :class:`Scheduler`.

    Captures the (immutable) configuration set by reference plus the
    history depth; :meth:`Scheduler.rewind` restores both. Unlike
    :meth:`Scheduler.snapshot` this is not serializable — it is the cheap
    in-memory restore point the engine journals at every choice point for
    choice-branch failover.
    """

    state: frozenset[Config]
    depth: int


def _externalize(goal: Goal) -> Goal:
    """Rewrite machine-internal residual nodes into plain CTR structure.

    ``Tail`` suffixes become explicit serial goals and ``Running`` markers
    become ``Isolated`` regions (re-entering isolation on resume only
    *narrows* interleaving back to what the original goal allowed).
    """
    from ..ctr.formulas import Choice, Concurrent, Isolated, Serial, alt, par, seq
    from ..ctr.machine import Running, Tail

    if isinstance(goal, Tail):
        return seq(*(_externalize(p) for p in goal.parts[goal.start:]))
    if isinstance(goal, Running):
        # Keep the marker: the remaining region must still complete
        # without interleaving (serialized natively by ctr.serialize).
        return Running(_externalize(goal.body))
    if isinstance(goal, Serial):
        return seq(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Concurrent):
        return par(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Choice):
        return alt(*(_externalize(p) for p in goal.parts))
    if isinstance(goal, Isolated):
        return Isolated(_externalize(goal.body))
    return goal


class Scheduler:
    """Step-by-step executor of a compiled workflow goal.

    >>> from repro.ctr.formulas import atoms
    >>> a, b = atoms("a b")
    >>> s = Scheduler(a >> b)
    >>> sorted(s.eligible())
    ['a']
    >>> s.fire("a"); sorted(s.eligible())
    ['b']
    """

    def __init__(self, goal: Goal, test_hook=None):
        self._machine = Machine(goal, test_hook=test_hook)
        self._initial: frozenset[Config] = frozenset((self._machine.initial(),))
        self._state = self._initial
        self._history: list[str] = []
        self._viability_key: frozenset[str] | None = None
        self._viability_memo: dict[Config, bool] = {}
        self.stats = SchedulerStats()

    # -- introspection -------------------------------------------------------

    @property
    def history(self) -> tuple[str, ...]:
        """The events fired so far, in order."""
        return tuple(self._history)

    def eligible(self) -> frozenset[str]:
        """Events that may start now (the paper's "events eligible to start")."""
        stats = self.stats
        stats.eligible_calls += 1
        stats.configs_expanded += len(self._state)
        events: set[str] = set()
        for config in self._state:
            events.update(self._machine.successors(config))
        return frozenset(events)

    def can_finish(self) -> bool:
        """May the workflow terminate successfully right now?"""
        return any(self._machine.is_final(config) for config in self._state)

    @property
    def finished(self) -> bool:
        """No event is eligible any more (the run is over)."""
        return not self.eligible()

    def is_stuck(self) -> bool:
        """True if the run can neither continue nor finish (should never
        happen on an excised goal — asserted by the test-suite)."""
        return not self.eligible() and not self.can_finish()

    # -- driving -------------------------------------------------------------

    def fire(self, event: str) -> None:
        """Record that ``event`` has started/occurred, advancing the state."""
        next_state: set[Config] = set()
        for config in self._state:
            next_state.update(self._machine.successors(config).get(event, ()))
        if not next_state:
            raise IneligibleEventError(event, self.eligible())
        self._state = frozenset(next_state)
        self._history.append(event)
        self.stats.steps += 1

    def reset(self) -> None:
        """Return to the initial state."""
        self._state = self._initial
        self._history = []

    # -- marks (cheap mid-run restore points) ----------------------------------

    def mark(self) -> SchedulerMark:
        """An O(1) restore point for :meth:`rewind` (state ref + history depth)."""
        return SchedulerMark(self._state, len(self._history))

    def rewind(self, mark: SchedulerMark) -> None:
        """Return to a mark taken earlier on this run, truncating the history."""
        self._state = mark.state
        del self._history[mark.depth:]
        self.stats.rewinds += 1

    # -- branch viability ------------------------------------------------------

    def viable(self, avoid: frozenset[str] = frozenset()) -> bool:
        """Can the workflow still complete without ever firing ``avoid``?

        This is the failover query: when an activity dies permanently, the
        engine asks — from successively earlier restore points — whether the
        compiled goal keeps a ``∨``-alternative path around the dead events.
        With transition conditions (:class:`~repro.ctr.formulas.Test`
        nodes) the answer is evaluated against the *current* database, so
        it is exact for static goals and a sound approximation otherwise.
        """
        memo = self._viability(avoid)
        return any(self._config_viable(c, avoid, memo) for c in self._state)

    def viable_events(self, avoid: frozenset[str] = frozenset()) -> frozenset[str]:
        """Eligible events that keep completion possible while avoiding ``avoid``.

        A subset of :meth:`eligible`: events in ``avoid`` are excluded, and
        so is any event all of whose successor configurations dead-end
        against the avoided set. Firing only returned events can therefore
        never strand the run on a branch that needs a dead activity.
        """
        memo = self._viability(avoid)
        out: set[str] = set()
        for config in self._state:
            for event, targets in self._machine.successors(config).items():
                if event in avoid or event in out:
                    continue
                if any(self._config_viable(t, avoid, memo) for t in targets):
                    out.add(event)
        return frozenset(out)

    def _viability(self, avoid: frozenset[str]) -> dict[Config, bool]:
        """The memo table for ``avoid`` (reset whenever the avoided set changes)."""
        self.stats.viability_checks += 1
        if self._viability_key != avoid:
            self._viability_key = avoid
            self._viability_memo = {}
        return self._viability_memo

    def _config_viable(self, config: Config, avoid: frozenset[str],
                       memo: dict[Config, bool]) -> bool:
        cached = memo.get(config)
        if cached is not None:
            return cached
        # Iterative memoized post-order DFS: schedules can be thousands of
        # events deep, well past the recursion limit.
        children: dict[Config, list[Config]] = {}
        expanding: set[Config] = set()
        stack: list[Config] = [config]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            if current not in expanding:
                expanding.add(current)
                if self._machine.is_final(current):
                    memo[current] = True
                    stack.pop()
                    continue
                kids = [
                    target
                    for event, targets in self._machine.successors(current).items()
                    if event not in avoid
                    for target in targets
                ]
                children[current] = kids
                pending = [k for k in kids if k not in memo and k not in expanding]
                if pending:
                    stack.extend(pending)
                    continue
            # Post-order visit: every decidable child is decided; children
            # still expanding are on a cycle and count as non-viable.
            memo[current] = any(memo.get(k, False) for k in children[current])
            self.stats.viability_nodes += 1
            stack.pop()
        return memo[config]

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable checkpoint of the run (for crash recovery).

        Captures the residual goals, sent tokens, and event history. The
        machine's internal suffix sharing is flattened on save, so a
        restored scheduler is behaviourally identical though its residual
        goals may be structurally rebuilt.
        """
        from ..ctr.serialize import goal_to_dict

        return {
            "history": list(self._history),
            "configs": [
                {"goal": goal_to_dict(_externalize(c.goal)), "tokens": sorted(c.tokens)}
                for c in sorted(self._state, key=repr)
            ],
        }

    def restore(self, snapshot: dict) -> None:
        """Resume from a :meth:`snapshot` taken on an equivalent scheduler."""
        from ..ctr.serialize import goal_from_dict

        self._history = list(snapshot["history"])
        self._state = frozenset(
            Config(goal_from_dict(entry["goal"]), frozenset(entry["tokens"]))
            for entry in snapshot["configs"]
        )

    def run(
        self,
        strategy: Callable[[frozenset[str]], str] | None = None,
        max_steps: int = 100_000,
    ) -> tuple[str, ...]:
        """Drive the workflow to completion, returning the schedule.

        ``strategy`` picks the next event among the eligible set; the
        default picks the lexicographically smallest, which is
        deterministic and always safe on a compiled goal.
        """
        pick = strategy or (lambda events: min(events))
        for _ in range(max_steps):
            events = self.eligible()
            if not events:
                if self.can_finish():
                    return self.history
                raise SchedulingError(
                    "workflow is stuck: no eligible event and cannot finish "
                    "(was the goal excised?)"
                )
            self.fire(pick(events))
        raise SchedulingError(f"workflow did not finish within {max_steps} steps")

    # -- exhaustive enumeration ------------------------------------------------

    def enumerate_schedules(self, limit: int = 200_000) -> Iterator[tuple[str, ...]]:
        """Yield every allowed complete event sequence (depth-first).

        Enumeration is linear in the path length per schedule; the *number*
        of schedules can of course be exponential, hence ``limit``.
        """
        produced = 0
        seen_outputs: set[tuple[str, ...]] = set()

        def dfs(state: frozenset[Config], prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
            nonlocal produced
            if any(self._machine.is_final(config) for config in state):
                if prefix not in seen_outputs:
                    seen_outputs.add(prefix)
                    produced += 1
                    if produced > limit:
                        raise TooManyTracesError(limit)
                    yield prefix
            events: dict[str, set[Config]] = {}
            for config in state:
                for event, targets in self._machine.successors(config).items():
                    events.setdefault(event, set()).update(targets)
            for event in sorted(events):
                yield from dfs(frozenset(events[event]), prefix + (event,))

        yield from dfs(self._state, tuple(self._history))
