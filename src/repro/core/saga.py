"""Compensation-based failure semantics (Section 7, "Failure semantics").

The paper: *"Failure atomicity is built into CTR semantics. However, more
complex workflows require more advanced failure semantics, such as
compensation [Garcia-Molina & Salem's Sagas]."* This module expresses the
saga pattern directly in the concurrent-Horn fragment, so the Apply/Excise
machinery can *verify* compensation policies rather than trusting them.

A saga is a sequence of steps, each with a compensating activity. Every
step either commits (and the saga proceeds) or aborts — in which case the
already-committed steps are compensated in reverse order. The encoding
uses only ``⊗`` and ``∨`` and is unique-event (each compensation event
appears on several *mutually exclusive* abort branches, which Definition
3.1 permits), so sagas compose freely with other workflow fragments and
global CONSTR constraints.

:func:`saga_invariants` returns the correctness properties of the pattern
as CONSTR constraints — e.g. "a compensation only runs if its step
committed", "compensations run in reverse commit order" — all of which
:func:`repro.core.verify.verify_property` proves for the generated goal
(see ``tests/core/test_saga.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.algebra import Constraint, absent, disj, order
from ..constraints.klein import klein_existence, requires_prior
from ..ctr.formulas import EMPTY, Atom, Goal, alt, seq

__all__ = ["SagaStep", "saga_goal", "saga_invariants"]


@dataclass(frozen=True, slots=True)
class SagaStep:
    """One saga step: a named action with its compensating activity."""

    name: str

    @property
    def start(self) -> str:
        return f"start_{self.name}"

    @property
    def commit(self) -> str:
        return f"commit_{self.name}"

    @property
    def abort(self) -> str:
        return f"abort_{self.name}"

    @property
    def compensate(self) -> str:
        return f"undo_{self.name}"


def saga_goal(steps: list[SagaStep], on_success: Goal = EMPTY,
              on_failure: Goal = EMPTY) -> Goal:
    """The saga over ``steps`` as a concurrent-Horn goal.

    Each step runs ``start ⊗ (commit ∨ abort)``; a commit proceeds to the
    next step, an abort triggers the compensations of all previously
    committed steps in reverse order, followed by ``on_failure``. Full
    completion runs ``on_success``.

    >>> from repro.ctr.traces import traces
    >>> g = saga_goal([SagaStep("pay"), SagaStep("ship")])
    >>> ('start_pay', 'commit_pay', 'start_ship', 'abort_ship', 'undo_pay') in traces(g)
    True
    """
    if not steps:
        return on_success

    def compensation(committed: list[SagaStep]) -> Goal:
        return seq(*(Atom(step.compensate) for step in reversed(committed)), on_failure)

    def build(index: int, committed: list[SagaStep]) -> Goal:
        if index == len(steps):
            return on_success
        step = steps[index]
        commit_branch = seq(Atom(step.commit), build(index + 1, committed + [step]))
        abort_branch = seq(Atom(step.abort), compensation(committed))
        return seq(Atom(step.start), alt(commit_branch, abort_branch))

    return build(0, [])


def saga_invariants(steps: list[SagaStep]) -> list[tuple[str, Constraint]]:
    """The named correctness properties of the saga pattern.

    Every returned constraint holds on every execution of
    ``saga_goal(steps)`` (the test-suite verifies this via Theorem 5.9):

    * *compensation needs a commit*: ``undo_i`` only occurs after
      ``commit_i``;
    * *no compensation on success*: if the last step commits, nothing is
      undone;
    * *abort compensates everything committed*: if step ``i`` committed
      and any later step aborted, ``undo_i`` runs;
    * *reverse order*: ``undo_j`` precedes ``undo_i`` for ``i < j`` when
      both occur;
    * *at most one abort*.
    """
    invariants: list[tuple[str, Constraint]] = []
    last = steps[-1]
    for i, step in enumerate(steps):
        invariants.append(
            (
                f"undo_{step.name} only after commit_{step.name}",
                requires_prior(step.compensate, step.commit),
            )
        )
        invariants.append(
            (
                f"success leaves {step.name} alone",
                disj(absent(last.commit), absent(step.compensate)),
            )
        )
        for later in steps[i + 1:]:
            invariants.append(
                (
                    f"abort of {later.name} undoes committed {step.name}",
                    _abort_implies_undo(later, step),
                )
            )
            invariants.append(
                (
                    f"undo_{later.name} before undo_{step.name}",
                    disj(
                        absent(later.compensate),
                        absent(step.compensate),
                        order(later.compensate, step.compensate),
                    ),
                )
            )
    for i, a in enumerate(steps):
        for b in steps[i + 1:]:
            invariants.append(
                (
                    f"at most one abort ({a.name}/{b.name})",
                    disj(absent(a.abort), absent(b.abort)),
                )
            )
    return invariants


def _abort_implies_undo(aborted: SagaStep, committed: SagaStep) -> Constraint:
    """If ``aborted`` aborts while ``committed`` had committed, undo it."""
    return disj(
        absent(aborted.abort),
        absent(committed.commit),
        klein_existence(aborted.abort, committed.compensate),
    )
