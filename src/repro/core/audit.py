"""Post-hoc auditing of recorded executions.

Workflow engines are audited after the fact: given the event log a run
left behind, did the run conform to the specification, and does the
database state match what those events should have produced? This module
replays a recorded schedule through the specification and the transition
oracle and reports every discrepancy:

* schedule conformance — the events form an allowed execution of the
  compiled workflow (with :func:`repro.core.explain.explain_rejection`
  invoked for the diagnosis when they do not);
* state conformance — re-applying the elementary updates from the
  recorded initial state reproduces the recorded final state;
* log conformance — the database's own event log agrees with the claimed
  schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db.oracle import TransitionOracle
from ..db.state import Database
from .compiler import CompiledWorkflow
from .explain import Rejection, explain_rejection

__all__ = ["AuditResult", "audit_execution"]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of auditing one recorded run."""

    schedule_ok: bool
    state_ok: bool
    log_ok: bool
    rejection: Rejection | None = None
    state_diff: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.schedule_ok and self.state_ok and self.log_ok

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return "audit passed: schedule, state, and log all conform"
        lines = ["audit FAILED:"]
        if not self.schedule_ok and self.rejection is not None:
            lines.append("  " + self.rejection.describe().replace("\n", "\n  "))
        if not self.state_ok:
            lines.append("  state mismatch in relations: " + ", ".join(self.state_diff))
        if not self.log_ok:
            lines.append("  database log disagrees with the claimed schedule")
        return "\n".join(lines)


def audit_execution(
    compiled: CompiledWorkflow,
    schedule: tuple[str, ...],
    final_db: Database,
    oracle: TransitionOracle | None = None,
    initial_db: Database | None = None,
) -> AuditResult:
    """Audit a recorded run of ``compiled``.

    ``final_db`` is the database as found after the run; ``initial_db``
    the state the run started from (fresh by default). The oracle must be
    the one the production engine used, or the replay cannot reproduce
    the state.
    """
    oracle = oracle or TransitionOracle()
    rejection = explain_rejection(compiled, tuple(schedule))
    schedule_ok = rejection.allowed

    replay = (initial_db or Database()).copy()
    replay_failed = False
    for event in schedule:
        try:
            oracle.execute(event, replay)
        except Exception:  # noqa: BLE001 - any replay failure is a finding
            replay_failed = True
            break

    diff: tuple[str, ...] = ()
    if replay_failed:
        state_ok = False
        diff = ("<replay failed>",)
    else:
        state_ok = replay.same_state(final_db)
        if not state_ok:
            names = sorted(replay.relation_names | final_db.relation_names)
            diff = tuple(
                name
                for name in names
                if replay.relation(name) != final_db.relation(name)
            )

    log_ok = final_db.log.events() == tuple(schedule)

    return AuditResult(
        schedule_ok=schedule_ok,
        state_ok=state_ok,
        log_ok=log_ok,
        rejection=None if schedule_ok else rejection,
        state_diff=diff,
    )
