"""Reproduction of "Logic Based Modeling and Analysis of Workflows" (PODS 1998).

Davulcu, Kifer, Ramakrishnan & Ramakrishnan propose Concurrent Transaction
Logic (CTR) as a single formalism for specifying, verifying, and scheduling
workflows. This library implements the whole system:

* ``repro.ctr``          — the concurrent-Horn fragment of CTR (AST, trace
                           semantics, executable step semantics, rules);
* ``repro.constraints``  — the temporal-constraint algebra CONSTR;
* ``repro.graph``        — control flow graphs, triggers, workload generators;
* ``repro.core``         — the Apply/Excise compiler, verification
                           (Theorems 5.8-5.10), the pro-active scheduler, and
                           the run-time engine;
* ``repro.db``           — relational states, transition oracle, event log;
* ``repro.baselines``    — passive scheduling and explicit-state model
                           checking, the paper's comparison points;
* ``repro.analysis``     — the Prop. 4.1 SAT reduction and measurement tools;
* ``repro.workflows``    — ready-made example specifications.

Quickstart::

    from repro import atoms, order, compile_workflow

    a, b, c = atoms("a b c")
    compiled = compile_workflow((a | b) >> c, [order("a", "b")])
    assert compiled.consistent
    print(list(compiled.schedules()))   # [('a', 'b', 'c')]
"""

from .constraints import (
    Constraint,
    PrefixEvaluator,
    Task,
    Verdict,
    absent,
    causes,
    conj,
    disj,
    klein_existence,
    klein_order,
    must,
    mutually_exclusive,
    negate,
    normalize,
    order,
    parse_constraint,
    requires_prior,
    satisfies,
    serial,
    to_dnf,
)
from .core import (
    ChaosOracle,
    CompileCache,
    CompiledWorkflow,
    ResiliencePolicy,
    RetryPolicy,
    SagaStep,
    VirtualClock,
    WorkflowReport,
    analyze,
    compile_modular,
    saga_goal,
    saga_invariants,
    Scheduler,
    VerificationResult,
    WorkflowEngine,
    apply_all,
    apply_constraint,
    compile_workflow,
    excise,
    is_consistent,
    is_redundant,
    redundant_constraints,
    verify_property,
)
from .ctr import (
    EMPTY,
    bounded_loop,
    unroll,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Rule,
    RuleBase,
    Serial,
    Test,
    alt,
    atom,
    atoms,
    dag_size,
    event_names,
    goal_size,
    interning,
    parse_goal,
    par,
    pretty,
    pretty_unicode,
    seq,
    sharing_ratio,
    traces,
)
from .db import Database, Query, TransitionOracle, V
from .errors import (
    ConstraintError,
    InconsistentWorkflowError,
    ReproError,
    SpecificationError,
    UniqueEventError,
)
from .graph import ControlFlowGraph, Trigger, apply_triggers, to_goal
from .obs import (
    FlightRecorder,
    MetricsRegistry,
    NullTracer,
    Observability,
    Tracer,
)

__version__ = "1.1.0"

__all__ = [
    # ctr
    "Goal", "Atom", "Serial", "Concurrent", "Choice", "Isolated", "Possibility",
    "Test", "EMPTY", "NEG_PATH", "atom", "atoms", "seq", "par", "alt",
    "goal_size", "dag_size", "sharing_ratio", "interning", "event_names",
    "traces", "parse_goal", "pretty", "pretty_unicode", "Rule", "RuleBase",
    # constraints
    "Constraint", "must", "absent", "serial", "order", "conj", "disj",
    "negate", "normalize", "to_dnf", "satisfies", "Verdict", "PrefixEvaluator",
    "klein_order", "klein_existence", "causes", "requires_prior",
    "mutually_exclusive", "Task", "parse_constraint",
    # core
    "compile_workflow", "CompiledWorkflow", "CompileCache", "Scheduler",
    "WorkflowEngine",
    "ResiliencePolicy", "RetryPolicy", "ChaosOracle", "VirtualClock",
    "apply_constraint", "apply_all", "excise", "is_consistent",
    "verify_property", "VerificationResult", "is_redundant",
    "redundant_constraints", "compile_modular", "SagaStep", "saga_goal",
    "saga_invariants", "analyze", "WorkflowReport", "bounded_loop", "unroll",
    # graph
    "ControlFlowGraph", "to_goal", "Trigger", "apply_triggers",
    # obs
    "Observability", "Tracer", "NullTracer", "MetricsRegistry",
    "FlightRecorder",
    # db
    "Database", "TransitionOracle", "Query", "V",
    # errors
    "ReproError", "SpecificationError", "UniqueEventError", "ConstraintError",
    "InconsistentWorkflowError",
]
