"""Control flow graphs — the primary specification means of commercial WFMSs.

A :class:`ControlFlowGraph` is the left-hand formalism of the paper's
Figure 1: activities as nodes, arcs for local execution dependencies, a
*split type* per branching node — ``"and"`` (all successor branches execute
concurrently) or ``"or"`` (exactly one branch executes, chosen
non-deterministically) — and optional *transition conditions* on arcs,
evaluated against the current workflow state.

The graph must be two-terminal series-parallel (one initial activity, one
final activity, well-nested splits/joins); that is the class of graphs the
paper's concurrent-Horn encoding (1) captures, and
:func:`repro.graph.translate.to_goal` performs the encoding by
series-parallel reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..errors import SpecificationError

__all__ = ["Arc", "ControlFlowGraph", "AND", "OR"]

AND = "and"
OR = "or"


@dataclass(frozen=True, slots=True)
class Arc:
    """A control-flow arc, optionally guarded by a transition condition."""

    source: str
    target: str
    condition: Optional[str] = None
    predicate: Optional[Callable] = field(default=None, compare=False, hash=False)


class ControlFlowGraph:
    """A workflow control flow graph with AND/OR splits.

    >>> g = ControlFlowGraph()
    >>> g.add_arc("a", "b"); g.add_arc("a", "c"); g.add_arc("b", "d"); g.add_arc("c", "d")
    >>> g.set_split("a", "and")   # b and c run concurrently
    >>> g.initial, g.final
    ('a', 'd')
    """

    def __init__(self) -> None:
        self._activities: set[str] = set()
        self._arcs: list[Arc] = []
        self._splits: dict[str, str] = {}

    # -- construction -----------------------------------------------------------

    def add_activity(self, name: str) -> None:
        if not name:
            raise SpecificationError("activity name must be non-empty")
        self._activities.add(name)

    def add_arc(
        self,
        source: str,
        target: str,
        condition: str | None = None,
        predicate: Callable | None = None,
    ) -> None:
        """Add an arc; endpoints are registered as activities automatically."""
        if source == target:
            raise SpecificationError(f"self-loop on {source!r}: loops are not supported")
        self.add_activity(source)
        self.add_activity(target)
        self._arcs.append(Arc(source, target, condition, predicate))

    def set_split(self, activity: str, kind: str) -> None:
        """Declare how a branching activity's successors combine."""
        if kind not in (AND, OR):
            raise SpecificationError(f"split kind must be 'and' or 'or', not {kind!r}")
        self.add_activity(activity)
        self._splits[activity] = kind

    # -- introspection -------------------------------------------------------------

    @property
    def activities(self) -> frozenset[str]:
        return frozenset(self._activities)

    @property
    def arcs(self) -> tuple[Arc, ...]:
        return tuple(self._arcs)

    def split_of(self, activity: str) -> str:
        """The split type at ``activity`` (defaults to AND, like most WFMSs)."""
        return self._splits.get(activity, AND)

    def successors(self, activity: str) -> list[Arc]:
        return [a for a in self._arcs if a.source == activity]

    def predecessors(self, activity: str) -> list[Arc]:
        return [a for a in self._arcs if a.target == activity]

    @property
    def initial(self) -> str:
        """The unique activity with no incoming arcs."""
        candidates = sorted(
            n for n in self._activities if not self.predecessors(n)
        )
        if len(candidates) != 1:
            raise SpecificationError(
                f"workflow must have exactly one initial activity, found {candidates}"
            )
        return candidates[0]

    @property
    def final(self) -> str:
        """The unique activity with no outgoing arcs."""
        candidates = sorted(n for n in self._activities if not self.successors(n))
        if len(candidates) != 1:
            raise SpecificationError(
                f"workflow must have exactly one final activity, found {candidates}"
            )
        return candidates[0]

    # -- validation ------------------------------------------------------------------

    def check_acyclic(self) -> None:
        """Reject cyclic graphs (Section 7: loops need recursive rules)."""
        indegree = {n: len(self.predecessors(n)) for n in self._activities}
        queue = [n for n, d in indegree.items() if d == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for arc in self.successors(node):
                indegree[arc.target] -= 1
                if indegree[arc.target] == 0:
                    queue.append(arc.target)
        if visited != len(self._activities):
            raise SpecificationError("control flow graph contains a cycle")

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ControlFlowGraph {len(self._activities)} activities, {len(self._arcs)} arcs>"
