"""Control flow graphs, triggers, and workload generators.

The paper's three specification frameworks (Figure 1) meet here: control
flow graphs (:mod:`~repro.graph.cfg`) are translated into concurrent-Horn
goals (:mod:`~repro.graph.translate`, the paper's formula (1)); triggers
are compiled into the control flow (:mod:`~repro.graph.triggers`); and
temporal constraints join via :mod:`repro.core.apply`. Synthetic workload
generators for the benchmark harness live in
:mod:`~repro.graph.generators`.
"""

from .cfg import AND, OR, Arc, ControlFlowGraph
from .dot import cfg_to_dot, goal_to_dot
from .generators import (
    or_tree,
    parallel_chains,
    random_constraints,
    random_goal,
    serial_chain,
)
from .translate import to_goal
from .triggers import Trigger, apply_triggers

__all__ = [
    "ControlFlowGraph",
    "Arc",
    "AND",
    "OR",
    "to_goal",
    "cfg_to_dot",
    "goal_to_dot",
    "Trigger",
    "apply_triggers",
    "serial_chain",
    "parallel_chains",
    "or_tree",
    "random_goal",
    "random_constraints",
]
