"""Graphviz DOT export for control flow graphs and CTR goals.

Workflow tooling lives and dies by visualisation. Two renderers:

* :func:`cfg_to_dot` — the control flow graph as drawn in the paper's
  Figure 1: activities as boxes, AND/OR split annotations, transition
  conditions as edge labels;
* :func:`goal_to_dot` — the goal AST as an operator tree (useful for
  inspecting what Apply/Excise produced, ``send``/``receive`` pairs are
  linked with dashed synchronisation edges).

The output is plain DOT text; render it with ``dot -Tsvg`` or any
Graphviz-compatible viewer. No Graphviz dependency is needed to *produce*
the files, so these helpers are always available.
"""

from __future__ import annotations

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    NegPath,
    Path,
    Receive,
    Send,
    Serial,
    Test,
)
from .cfg import AND, ControlFlowGraph

__all__ = ["cfg_to_dot", "goal_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def cfg_to_dot(graph: ControlFlowGraph, title: str = "workflow") -> str:
    """Render a control flow graph in the style of the paper's Figure 1."""
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=box, style=rounded, fontname=Helvetica];")
    for activity in sorted(graph.activities):
        label = activity
        if len(graph.successors(activity)) > 1:
            kind = "AND" if graph.split_of(activity) == AND else "OR"
            label = f"{activity}\\n[{kind}]"
        lines.append(f"  {_quote(activity)} [label={_quote(label)}];")
    for arc in graph.arcs:
        attributes = ""
        if arc.condition is not None:
            attributes = f" [label={_quote(arc.condition)}, fontsize=10]"
        lines.append(f"  {_quote(arc.source)} -> {_quote(arc.target)}{attributes};")
    lines.append("}")
    return "\n".join(lines)


_NODE_STYLE = {
    "Serial": ("⊗", "ellipse"),
    "Concurrent": ("∥", "ellipse"),
    "Choice": ("∨", "diamond"),
    "Isolated": ("⊙", "ellipse"),
    "Possibility": ("◇", "ellipse"),
}


def goal_to_dot(goal: Goal, title: str = "goal") -> str:
    """Render a goal AST, linking send/receive pairs with dashed edges."""
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  node [fontname=Helvetica];")
    counter = [0]
    sends: dict[str, str] = {}
    receives: dict[str, list[str]] = {}

    def emit(node: Goal) -> str:
        counter[0] += 1
        node_id = f"n{counter[0]}"
        if isinstance(node, Atom):
            lines.append(f"  {node_id} [shape=box, style=rounded, label={_quote(node.name)}];")
        elif isinstance(node, Send):
            lines.append(f"  {node_id} [shape=cds, label={_quote('send ' + node.token)}];")
            sends[node.token] = node_id
        elif isinstance(node, Receive):
            lines.append(f"  {node_id} [shape=cds, label={_quote('recv ' + node.token)}];")
            receives.setdefault(node.token, []).append(node_id)
        elif isinstance(node, Test):
            lines.append(f"  {node_id} [shape=hexagon, label={_quote(node.name + '?')}];")
        elif isinstance(node, Empty):
            lines.append(f"  {node_id} [shape=point];")
        elif isinstance(node, (Path, NegPath)):
            label = "path" if isinstance(node, Path) else "¬path"
            lines.append(f"  {node_id} [shape=plaintext, label={_quote(label)}];")
        else:
            symbol, shape = _NODE_STYLE[type(node).__name__]
            lines.append(f"  {node_id} [shape={shape}, label={_quote(symbol)}];")
            children = (
                node.parts
                if isinstance(node, (Serial, Concurrent, Choice))
                else (node.body,)
            )
            for index, child in enumerate(children):
                child_id = emit(child)
                edge_attr = ""
                if isinstance(node, Serial):
                    edge_attr = f" [label={_quote(str(index + 1))}, fontsize=9]"
                lines.append(f"  {node_id} -> {child_id}{edge_attr};")
        return node_id

    emit(goal)
    for token, send_id in sends.items():
        for receive_id in receives.get(token, ()):
            lines.append(
                f"  {send_id} -> {receive_id} "
                f"[style=dashed, color=gray, constraint=false];"
            )
    lines.append("}")
    return "\n".join(lines)
