"""Triggers (event-condition-action rules) compiled into the control flow.

Section 1 of the paper treats triggers as the third popular specification
framework and notes (citing [7]) that triggers with *immediate* execution
semantics "can be represented using control flow graphs", so they may be
treated as part of the graph. This module performs that compilation at the
goal level: a trigger ``on event e, if cond, do action`` rewrites every
occurrence of ``e`` into

    e ⊗ ( cond? ⊗ action  ∨  ¬cond? )

i.e. immediately after ``e`` fires, the condition is tested and the action
runs if it holds. An unconditional trigger simply appends its action.

Triggers may cascade (an action contains an event another trigger fires
on); cascades are expanded transitively and cyclic cascades are rejected,
in keeping with the paper's restriction to non-iterative workflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Serial,
    Test,
    alt,
    par,
    seq,
)
from ..errors import RecursionError_

__all__ = ["Trigger", "apply_triggers"]


@dataclass(frozen=True)
class Trigger:
    """An ECA rule with immediate execution semantics."""

    event: str
    action: Goal
    condition: Optional[str] = None
    predicate: Optional[Callable] = None

    def guarded_action(self) -> Goal:
        """``cond? ⊗ action ∨ ¬cond?`` (or just the action when unguarded)."""
        if self.condition is None:
            return self.action
        holds = Test(self.condition, self.predicate)
        negated = None
        if self.predicate is not None:
            predicate = self.predicate
            negated = lambda *args: not predicate(*args)  # noqa: E731
        fails = Test(f"not_{self.condition}", negated)
        return alt(seq(holds, self.action), fails)


def apply_triggers(goal: Goal, triggers: list[Trigger]) -> Goal:
    """Compile ``triggers`` into ``goal`` (immediate execution semantics)."""
    by_event: dict[str, list[Trigger]] = {}
    for trigger in triggers:
        by_event.setdefault(trigger.event, []).append(trigger)

    def rewrite(node: Goal, firing: tuple[str, ...]) -> Goal:
        if isinstance(node, Atom):
            relevant = by_event.get(node.name, ())
            if not relevant:
                return node
            if node.name in firing:
                raise RecursionError_(firing + (node.name,))
            chain = firing + (node.name,)
            reactions = [rewrite(t.guarded_action(), chain) for t in relevant]
            return seq(node, *reactions)
        if isinstance(node, Serial):
            return seq(*(rewrite(p, firing) for p in node.parts))
        if isinstance(node, Concurrent):
            return par(*(rewrite(p, firing) for p in node.parts))
        if isinstance(node, Choice):
            return alt(*(rewrite(p, firing) for p in node.parts))
        if isinstance(node, Isolated):
            return Isolated(rewrite(node.body, firing))
        if isinstance(node, Possibility):
            return Possibility(rewrite(node.body, firing))
        return node

    return rewrite(goal, ())
