"""Workload generators: random and structured workflows for benches and tests.

The paper has no empirical section, so the benchmark harness needs
synthetic workloads whose *parameters* map onto the quantities in the
theorems: graph size ``|G|``, constraint-set size ``N``, disjunct width
``d``, parallel width (for the state-explosion comparison), and path
length (for the scheduling comparison). This module provides:

* structured families — :func:`serial_chain`, :func:`parallel_chains`,
  :func:`or_tree` — with exactly controllable size/width;
* :func:`random_goal` — random series-parallel unique-event goals;
* :func:`random_constraints` — random CONSTR constraints over a goal's
  events, drawn from the idioms of Section 3.

All randomness is driven by an explicit seed for reproducibility.
"""

from __future__ import annotations

import random

from ..constraints import algebra, klein
from ..constraints.algebra import Constraint
from ..ctr.formulas import Atom, Goal, alt, atoms, par, seq

__all__ = [
    "serial_chain",
    "parallel_chains",
    "or_tree",
    "random_goal",
    "random_constraints",
    "event_names_of",
]


def serial_chain(length: int, prefix: str = "e") -> Goal:
    """``e1 ⊗ e2 ⊗ … ⊗ e_length``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return seq(*atoms([f"{prefix}{i}" for i in range(1, length + 1)]))


def parallel_chains(width: int, length: int, prefix: str = "t") -> Goal:
    """``width`` concurrent serial chains of ``length`` events each.

    Event ``t{i}_{j}`` is step ``j`` of chain ``i``. This is the classic
    state-explosion workload: the interleaving space has
    ``(width·length)! / (length!)^width`` states.
    """
    if width < 1 or length < 1:
        raise ValueError("width and length must be >= 1")
    chains = [serial_chain(length, prefix=f"{prefix}{i}_") for i in range(1, width + 1)]
    return par(*chains)


def or_tree(depth: int, prefix: str = "o") -> Goal:
    """A binary OR-tree of depth ``depth`` with distinct leaf events."""
    counter = [0]

    def build(level: int) -> Goal:
        if level == 0:
            counter[0] += 1
            return Atom(f"{prefix}{counter[0]}")
        return alt(build(level - 1), build(level - 1))

    return build(depth)


def random_goal(
    n_events: int,
    seed: int | None = None,
    rng: random.Random | None = None,
    p_choice: float = 0.25,
    p_parallel: float = 0.35,
    max_fan: int = 3,
    prefix: str = "e",
) -> Goal:
    """A random series-parallel unique-event goal over ``n_events`` events.

    Recursively partitions the event vocabulary and picks a connective:
    choice with probability ``p_choice``, concurrent with ``p_parallel``,
    serial otherwise. Every generated goal satisfies the unique-event
    property by construction (sibling subtrees get disjoint events).
    """
    if rng is None:
        rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(1, n_events + 1)]

    def build(events: list[str]) -> Goal:
        if len(events) == 1:
            return Atom(events[0])
        fan = rng.randint(2, min(max_fan, len(events)))
        groups = _partition(events, fan, rng)
        parts = [build(g) for g in groups]
        roll = rng.random()
        if roll < p_choice:
            return alt(*parts)
        if roll < p_choice + p_parallel:
            return par(*parts)
        return seq(*parts)

    return build(names)


def _partition(items: list[str], groups: int, rng: random.Random) -> list[list[str]]:
    shuffled = items[:]
    rng.shuffle(shuffled)
    # One item per group guaranteed, remainder spread randomly.
    buckets: list[list[str]] = [[shuffled[i]] for i in range(groups)]
    for item in shuffled[groups:]:
        buckets[rng.randrange(groups)].append(item)
    return buckets


_CONSTRAINT_KINDS = (
    "order",
    "klein_order",
    "klein_existence",
    "must",
    "absent",
    "mutex",
    "causes",
    "serial3",
)


def random_constraints(
    events: list[str] | tuple[str, ...],
    count: int,
    seed: int | None = None,
    rng: random.Random | None = None,
    kinds: tuple[str, ...] = _CONSTRAINT_KINDS,
) -> list[Constraint]:
    """``count`` random CONSTR constraints over the given event names."""
    if rng is None:
        rng = random.Random(seed)
    events = list(events)
    if len(events) < 2:
        raise ValueError("need at least two events to build constraints")
    out: list[Constraint] = []
    for _ in range(count):
        kind = rng.choice(kinds)
        if kind == "serial3" and len(events) >= 3:
            a, b, c = rng.sample(events, 3)
            out.append(algebra.serial(a, b, c))
            continue
        a, b = rng.sample(events, 2)
        if kind == "order":
            out.append(algebra.order(a, b))
        elif kind == "klein_order":
            out.append(klein.klein_order(a, b))
        elif kind == "klein_existence":
            out.append(klein.klein_existence(a, b))
        elif kind == "must":
            out.append(algebra.must(a))
        elif kind == "absent":
            out.append(algebra.absent(a))
        elif kind == "mutex":
            out.append(klein.mutually_exclusive(a, b))
        else:  # "causes", and the fallback for serial3 with 2 events
            out.append(klein.causes(a, b))
    return out


def event_names_of(goal: Goal) -> list[str]:
    """Sorted event vocabulary of a goal (convenience for the generators)."""
    from ..ctr.formulas import event_names

    return sorted(event_names(goal))
