"""Translating control flow graphs into concurrent-Horn goals (eq. (1)).

The encoding follows the paper's example: serial arcs become ``⊗``,
AND-splits become ``|``, OR-splits become ``∨``, and transition conditions
become :class:`~repro.ctr.formulas.Test` steps on the connecting arc.

The algorithm is classical two-terminal **series-parallel reduction** over
an edge-labelled multigraph:

1. split every activity node ``n`` into ``n_in → n_out`` with the edge
   labelled ``Atom(n)``; every workflow arc ``(u, v)`` becomes an edge
   ``u_out → v_in`` labelled with its transition condition (or the empty
   goal);
2. repeatedly apply
   * *series reduction* — an interior node with exactly one in-edge and
     one out-edge is removed, concatenating the labels with ``⊗``;
   * *parallel reduction* — two edges with the same endpoints merge, the
     labels combined with ``|`` or ``∨`` according to the split type of
     the activity where the branch opened;
3. if reduction terminates with the single edge ``initial_in → final_out``
   its label is the translation; otherwise the graph is not
   series-parallel and is rejected (such graphs are outside the class the
   paper's formula (1) represents).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ctr.formulas import EMPTY, Atom, Goal, Test, alt, par, seq
from ..errors import SpecificationError
from .cfg import AND, ControlFlowGraph

__all__ = ["to_goal"]


@dataclass
class _Edge:
    source: str
    target: str
    goal: Goal
    # The activity whose split opened this branch; drives the parallel-merge
    # connective. Starts as the source activity of the underlying arc.
    branch_origin: str


def to_goal(graph: ControlFlowGraph, obs=None) -> Goal:
    """The concurrent-Horn goal encoding of ``graph`` (the paper's formula (1)).

    Pass an :class:`~repro.obs.config.Observability` to time the
    translation (span ``translate``) and record the graph-to-goal size
    metrics; the default records nothing.
    """
    if obs is not None and obs.active:
        from ..ctr.formulas import goal_size

        with obs.tracer.span("translate", activities=len(graph.activities),
                             arcs=len(graph.arcs)):
            goal = _to_goal(graph)
        if obs.metrics is not None:
            obs.metrics.set_gauge("translate.activities", len(graph.activities))
            obs.metrics.set_gauge("translate.arcs", len(graph.arcs))
            obs.metrics.set_gauge("translate.goal_size", goal_size(goal))
        return goal
    return _to_goal(graph)


def _to_goal(graph: ControlFlowGraph) -> Goal:
    graph.check_acyclic()
    initial, final = graph.initial, graph.final

    edges: list[_Edge] = []
    # Sorted for deterministic output (graph.activities is a set).
    for activity in sorted(graph.activities):
        edges.append(_Edge(f"{activity}.in", f"{activity}.out", Atom(activity), activity))
    for arc in graph.arcs:
        label: Goal = EMPTY
        if arc.condition is not None:
            label = Test(arc.condition, arc.predicate)
        edges.append(_Edge(f"{arc.source}.out", f"{arc.target}.in", label, arc.source))

    source, sink = f"{initial}.in", f"{final}.out"
    changed = True
    while changed and len(edges) > 1:
        changed = _series_step(edges, source, sink) or _parallel_step(edges, graph)

    if len(edges) != 1 or edges[0].source != source or edges[0].target != sink:
        raise SpecificationError(
            "control flow graph is not two-terminal series-parallel; "
            "it cannot be encoded as a concurrent-Horn goal"
        )
    return edges[0].goal


def _series_step(edges: list[_Edge], source: str, sink: str) -> bool:
    incoming: dict[str, list[int]] = {}
    outgoing: dict[str, list[int]] = {}
    for index, edge in enumerate(edges):
        incoming.setdefault(edge.target, []).append(index)
        outgoing.setdefault(edge.source, []).append(index)

    # Sorted for deterministic reduction order across interpreter runs.
    for node in sorted(set(incoming) & set(outgoing)):
        if node in (source, sink):
            continue
        if len(incoming[node]) == 1 and len(outgoing[node]) == 1:
            i, j = incoming[node][0], outgoing[node][0]
            first, second = edges[i], edges[j]
            merged = _Edge(
                first.source,
                second.target,
                seq(first.goal, second.goal),
                first.branch_origin,
            )
            for index in sorted((i, j), reverse=True):
                del edges[index]
            edges.append(merged)
            return True
    return False


def _parallel_step(edges: list[_Edge], graph: ControlFlowGraph) -> bool:
    by_endpoints: dict[tuple[str, str], list[int]] = {}
    for index, edge in enumerate(edges):
        by_endpoints.setdefault((edge.source, edge.target), []).append(index)

    for (src, dst), indices in by_endpoints.items():
        if len(indices) < 2:
            continue
        group = [edges[i] for i in indices]
        # The split that opened these parallel branches is the activity at
        # the tail of the bundle: src is "<activity>.out".
        activity = src.removesuffix(".out")
        combine = par if graph.split_of(activity) == AND else alt
        merged = _Edge(src, dst, combine(*(e.goal for e in group)), group[0].branch_origin)
        for index in sorted(indices, reverse=True):
            del edges[index]
        edges.append(merged)
        return True
    return False
