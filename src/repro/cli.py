"""Command-line interface: analyze and run workflow specification files.

::

    python -m repro check SPEC        # consistency + static report
    python -m repro schedules SPEC    # enumerate allowed executions
    python -m repro verify SPEC       # verify the file's `property` lines
    python -m repro run SPEC          # execute one schedule (log-only oracle)
    python -m repro show SPEC         # print the compiled goal
    python -m repro trace ...         # record / show / diff / replay run traces
    python -m repro serve             # JSON-over-HTTP verification service

``SPEC`` is a text file in the :mod:`repro.spec` format. Exit status is 0
on success, 1 when the specification is inconsistent, a property fails,
or the file cannot be parsed.

Every spec command accepts ``--cache-dir DIR`` (default:
``$REPRO_CACHE_DIR`` when set) to serve repeated compilations of
unchanged specifications from the persistent
:class:`~repro.core.compiler.CompileCache`, and ``--no-cache`` to force
a from-scratch compile.

``verify --jobs N`` (default ``$REPRO_JOBS``, else 1) verifies the
file's properties on ``N`` worker processes — one full sequential
verification per property per worker, so the report is identical at any
``N`` — and ``--witness-seed`` pins the witness schedule printed for
failing properties.

``run --trace FILE`` records the run — spans, every scheduler decision,
and the final summary — into a JSONL flight-recorder trace whose header
embeds the specification, chaos plan, and retry policies, so ``repro
trace replay FILE`` can re-execute it and verify the identical schedule
and database digest. ``run --metrics`` prints the metrics registry
(compile sizes and the Theorem 5.11 ratio, attempt/retry/reroute
counters, per-activity latency percentiles) after the schedule.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.static import analyze
from .ctr.pretty import pretty
from .errors import ReproError
from .spec import Specification, load_specification

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Logic-based workflow analysis (PODS'98 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("check", "check consistency and print the static report"),
        ("schedules", "enumerate the allowed executions"),
        ("verify", "verify the specification's properties"),
        ("run", "execute one schedule with the log-only oracle"),
        ("show", "print the compiled goal"),
        ("dot", "emit Graphviz DOT for the compiled goal"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("spec", help="path to a workflow specification file")
        command.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="persistent compile cache directory "
                 "(default: $REPRO_CACHE_DIR if set)",
        )
        command.add_argument(
            "--no-cache", action="store_true",
            help="compile from scratch, ignoring any cache directory",
        )
        if name != "run":
            # Live execution stays on the object engine: the engine's
            # failover needs the scheduler's mark/rewind snapshots.
            command.add_argument(
                "--backend", choices=["object", "kernel"], default=None,
                help="query engine over the compiled goal: 'object' (the "
                     "reference interpreters) or 'kernel' (flat integer "
                     "tables, several times faster; identical answers). "
                     "Default: $REPRO_BACKEND if set, else 'object'.",
            )
        if name == "schedules":
            command.add_argument(
                "--limit", type=int, default=100, help="maximum schedules to print"
            )
        if name == "verify":
            command.add_argument(
                "--jobs", type=int, default=None, metavar="N",
                help="verify properties on N worker processes "
                     "(0 = all cores; default: $REPRO_JOBS if set, else 1). "
                     "Results are identical at any N.",
            )
            command.add_argument(
                "--witness-seed", type=int, default=None, metavar="SEED",
                help="seed the witness schedule reported for failing "
                     "properties (default: deterministic lexicographic "
                     "minimum)",
            )
        if name == "run":
            command.add_argument(
                "--retry", type=int, default=1, metavar="N",
                help="attempt each activity up to N times (default: 1)",
            )
            command.add_argument(
                "--backoff", type=float, default=0.0, metavar="SECONDS",
                help="base delay between attempts, doubled each retry "
                     "(virtual seconds)",
            )
            command.add_argument(
                "--fail", action="append", default=[], metavar="EVENT[:K]",
                help="chaos: fail EVENT's first K attempts "
                     "(omit :K to fail it permanently); repeatable",
            )
            command.add_argument(
                "--fail-rate", type=float, default=0.0, metavar="P",
                help="chaos: fail any attempt with probability P (seeded)",
            )
            command.add_argument(
                "--seed", type=int, default=0,
                help="seed for --fail-rate fault injection",
            )
            command.add_argument(
                "--trace", metavar="FILE", default=None,
                help="record the run as a replayable JSONL trace",
            )
            command.add_argument(
                "--metrics", action="store_true",
                help="print the metrics registry after the run",
            )

    serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP verification service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8745,
                       help="bind port, 0 for ephemeral (default: 8745)")
    serve.add_argument("--specs-dir", metavar="DIR", default=None,
                       help="directory of *.workflow/*.spec files to register "
                            "by stem and hot-reload on change")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes per verification batch "
                            "(0 = all cores; default: $REPRO_JOBS if set, else 1)")
    serve.add_argument("--queue-limit", type=int, default=256, metavar="N",
                       help="max queued properties before shedding with 429 "
                            "(default: 256)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="coalescing window before a batch dispatches "
                            "(default: 0.005)")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="SECONDS",
                       help="default per-request deadline; requests may "
                            "override with a 'timeout' field (default: 30)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent compile cache directory "
                            "(default: $REPRO_CACHE_DIR if set)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a persistent compile cache")
    serve.add_argument("--tracing", action="store_true",
                       help="record request spans, exposed on /traces for "
                            "cross-process assembly")
    serve.add_argument("--ids-seed", type=int, default=None, metavar="SEED",
                       help="seed trace/span/request id generation so runs "
                            "replay deterministically")

    cluster = sub.add_parser(
        "cluster", help="run the sharded verification cluster "
                        "(router + supervised workers)"
    )
    cluster.add_argument("--host", default="127.0.0.1",
                         help="router bind address (default: 127.0.0.1)")
    cluster.add_argument("--port", type=int, default=8745,
                         help="router bind port, 0 for ephemeral (default: 8745)")
    cluster.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker daemons to supervise (default: 2)")
    cluster.add_argument("--replicas", type=int, default=2, metavar="K",
                         help="replicas per spec key on the hash ring "
                              "(default: 2)")
    cluster.add_argument("--specs-dir", metavar="DIR", default=None,
                         help="directory of *.workflow/*.spec files the router "
                              "registers by stem and hot-reloads on change")
    cluster.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="verification processes per worker (default: 1)")
    cluster.add_argument("--hedge-delay", type=float, default=None,
                         metavar="SECONDS",
                         help="start a second replica if the first has not "
                              "answered within this delay (default: off)")
    cluster.add_argument("--capacity", type=float, default=None, metavar="COST",
                         help="total in-flight admission capacity; enables "
                              "per-tenant quotas (default: off)")
    cluster.add_argument("--tenant-share", type=float, default=1.0,
                         metavar="COST",
                         help="guaranteed in-flight cost per tenant when "
                              "--capacity is set (default: 1)")
    cluster.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="compile cache directory shared by router and "
                              "workers (default: $REPRO_CACHE_DIR if set)")
    cluster.add_argument("--no-cache", action="store_true",
                         help="run without a persistent compile cache")
    cluster.add_argument("--tracing", action="store_true",
                         help="propagate trace context to workers and serve "
                              "assembled cross-process trees on /traces")
    cluster.add_argument("--trace-dir", metavar="DIR", default=None,
                         help="persist assembled traces as JSONL under DIR "
                              "(implies --tracing)")
    cluster.add_argument("--ids-seed", type=int, default=None, metavar="SEED",
                         help="seed id generation for replayable traces "
                              "(worker i uses SEED+1+i)")

    trace = sub.add_parser("trace", help="inspect and replay recorded run traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="run a specification and record the trace (= run --trace)"
    )
    record.add_argument("spec", help="path to a workflow specification file")
    record.add_argument("trace_file", metavar="TRACE",
                        help="output path for the JSONL trace")
    for flag, kwargs in [
        ("--retry", dict(type=int, default=1, metavar="N")),
        ("--backoff", dict(type=float, default=0.0, metavar="SECONDS")),
        ("--fail", dict(action="append", default=[], metavar="EVENT[:K]")),
        ("--fail-rate", dict(type=float, default=0.0, metavar="P")),
        ("--seed", dict(type=int, default=0)),
    ]:
        record.add_argument(flag, **kwargs)

    show = trace_sub.add_parser("show", help="pretty-print a recorded trace")
    show.add_argument("trace_file", metavar="TRACE")
    show.add_argument("--distributed", action="store_true",
                      help="render TRACE as a distributed span-segment file "
                           "(the `trace fetch` / router sink format)")

    fetch = trace_sub.add_parser(
        "fetch", help="download an assembled distributed trace from a router"
    )
    fetch.add_argument("trace_id", metavar="TRACE_ID")
    fetch.add_argument("--host", default="127.0.0.1",
                       help="router address (default: 127.0.0.1)")
    fetch.add_argument("--port", type=int, default=8745,
                       help="router port (default: 8745)")
    fetch.add_argument("--output", "-o", metavar="FILE", default=None,
                       help="write span JSONL to FILE instead of rendering "
                            "the tree")

    diff = trace_sub.add_parser("diff", help="compare two recorded traces")
    diff.add_argument("trace_a", metavar="TRACE_A")
    diff.add_argument("trace_b", metavar="TRACE_B")

    replay = trace_sub.add_parser(
        "replay", help="re-execute a trace and verify it reproduces"
    )
    replay.add_argument("trace_file", metavar="TRACE")

    top = sub.add_parser(
        "top", help="live ASCII fleet view of a running cluster router"
    )
    top.add_argument("--host", default="127.0.0.1",
                     help="router address (default: 127.0.0.1)")
    top.add_argument("--port", type=int, default=8745,
                     help="router port (default: 8745)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="seconds between refreshes (default: 2)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="refresh N times then exit (default: 0 = run until "
                          "interrupted)")
    return parser


def _cache_from_args(args):
    """Resolve ``--cache-dir``/``--no-cache``/``$REPRO_CACHE_DIR`` to a cache.

    Precedence: ``--no-cache`` wins, then an explicit ``--cache-dir``, then
    the ``REPRO_CACHE_DIR`` environment variable. Returns ``None`` (caching
    disabled) when no directory is configured.
    """
    import os

    if getattr(args, "no_cache", False):
        return None
    directory = getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")
    if not directory:
        return None
    from .core.compiler import CompileCache

    return CompileCache(directory)


def _cmd_check(spec: Specification, out, cache=None, backend=None) -> int:
    compiled = spec.compile(cache=cache, backend=backend)
    report = analyze(compiled)
    print(report.describe(), file=out)
    return 0 if compiled.consistent else 1


def _cmd_schedules(spec: Specification, out, limit: int, cache=None,
                   backend=None) -> int:
    compiled = spec.compile(cache=cache, backend=backend)
    if not compiled.consistent:
        print("inconsistent: no allowed executions", file=out)
        return 1
    count = 0
    for schedule in compiled.schedules(limit=max(limit, 1)):
        print(" -> ".join(schedule), file=out)
        count += 1
        if count >= limit:
            print(f"... (stopped at {limit})", file=out)
            break
    return 0


def _cmd_verify(spec: Specification, out, cache=None, jobs=None, seed=None,
                backend=None) -> int:
    if not spec.properties:
        print("specification declares no properties", file=out)
        return 0
    from .core.verify import verify_properties

    results = verify_properties(
        spec.goal, list(spec.constraints),
        [prop for _, prop in spec.properties], rules=spec.rules,
        cache=cache, jobs=jobs, seed=seed, backend=backend,
    )
    failures = 0
    for (name, prop), result in zip(spec.properties, results):
        status = "HOLDS" if result.holds else "FAILS"
        print(f"[{status}] {name}: {prop}", file=out)
        if not result.holds:
            failures += 1
            print(f"        witness: {' -> '.join(result.witness)}", file=out)
    return 1 if failures else 0


def _cmd_run(spec: Specification, out, args) -> int:
    from .core.engine import WorkflowEngine
    from .core.resilience import ChaosOracle, ResiliencePolicy, RetryPolicy, VirtualClock
    from .db.oracle import TransitionOracle

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    obs = None
    if trace_path or want_metrics:
        from .obs import IdSource, Observability

        # Traced runs mint replayable distributed ids seeded by --seed:
        # `repro trace replay` re-mints the identical span tree.
        obs = Observability.enabled(
            trace=bool(trace_path),
            metrics=want_metrics,
            record=bool(trace_path),
            ids=IdSource(seed=args.seed) if trace_path else None,
        )

    cache = _cache_from_args(args)
    compiled = spec.compile(obs=obs, cache=cache)
    if not compiled.consistent:
        print("inconsistent: nothing to run", file=out)
        return 1
    clock = VirtualClock()
    oracle = TransitionOracle()
    chaos = None
    if args.fail or args.fail_rate:
        from .ctr.formulas import event_names

        known = event_names(spec.goal)
        chaos = ChaosOracle(oracle, clock=clock, seed=args.seed)
        for directive in args.fail:
            event, _, budget = directive.partition(":")
            try:
                attempts = int(budget) if budget else None
            except ValueError:
                print(f"error: --fail expects EVENT[:K] with integer K, "
                      f"got {directive!r}", file=sys.stderr)
                return 2
            if event not in known:
                print(f"warning: --fail {event!r} matches no activity in "
                      "the workflow; no fault will be injected",
                      file=sys.stderr)
            chaos.fail_event(event, attempts=attempts)
        if args.fail_rate:
            try:
                chaos.fail_rate(args.fail_rate)
            except ValueError as exc:
                print(f"error: --fail-rate: {exc}", file=sys.stderr)
                return 2
        oracle = chaos
    policies = ResiliencePolicy(
        default=RetryPolicy(max_attempts=max(args.retry, 1),
                            base_delay=args.backoff, multiplier=2.0)
    )
    engine = WorkflowEngine(compiled, oracle=oracle,
                            policies=policies, clock=clock, obs=obs)
    report = engine.run()
    print(" -> ".join(report.schedule), file=out)
    summary = report.summary()
    if summary:
        print(summary, file=out)
    if trace_path:
        from .obs import write_trace

        with open(args.spec, encoding="utf-8") as handle:
            spec_text = handle.read()
        header = {
            "spec": spec_text,
            "chaos": chaos.plan() if chaos is not None else None,
            "policies": policies.to_dict(),
            "seed": args.seed,
            "strategy": "first",
        }
        if getattr(obs.tracer, "ids", None) is not None:
            spans = obs.tracer.spans
            header["trace_id"] = spans[0].trace_id if spans else None
            header["ids_seed"] = args.seed
            # The span tree is replay-checkable only for from-scratch
            # compiles: a cache hit skips the Apply/Excise spans.
            if cache is None:
                header["span_check"] = True
        tail = {
            "schedule": list(report.schedule),
            "digest": report.database.digest(),
            "attempts": dict(report.attempts),
            "failures": len(report.failures),
            "reroutes": len(report.reroutes),
            "elapsed": report.elapsed,
            "backoff": report.backoff,
        }
        with open(trace_path, "w", encoding="utf-8") as handle:
            write_trace(handle, header, spans=obs.tracer.spans,
                        recorder=obs.recorder, summary=tail)
        print(f"trace written to {trace_path}", file=out)
    if want_metrics:
        print(obs.metrics.render(), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    from .obs import diff_traces, read_trace, render_trace, replay_trace

    if args.trace_command == "record":
        spec = load_specification(args.spec)
        args.trace = args.trace_file
        args.metrics = False
        return _cmd_run(spec, out, args)

    if args.trace_command == "show":
        if getattr(args, "distributed", False):
            from .obs.distributed import (load_distributed_trace,
                                          render_distributed)

            spans = load_distributed_trace(args.trace_file)
            print(render_distributed(spans), file=out)
            return 0
        with open(args.trace_file, encoding="utf-8") as handle:
            trace = read_trace(handle)
        print(render_trace(trace), file=out)
        return 0

    if args.trace_command == "fetch":
        import json

        from .obs.distributed import render_distributed
        from .service.client import ServiceClient

        client = ServiceClient(args.host, args.port)
        try:
            data = client.trace(args.trace_id)
        finally:
            client.close()
        spans = data.get("spans", [])
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(json.dumps(span, default=repr) + "\n")
            print(f"{len(spans)} spans written to {args.output}", file=out)
        else:
            print(render_distributed(spans), file=out)
        return 0

    if args.trace_command == "diff":
        with open(args.trace_a, encoding="utf-8") as handle:
            trace_a = read_trace(handle)
        with open(args.trace_b, encoding="utf-8") as handle:
            trace_b = read_trace(handle)
        differences = diff_traces(trace_a, trace_b)
        if not differences:
            print("traces are equivalent", file=out)
            return 0
        for line in differences:
            print(line, file=out)
        return 1

    with open(args.trace_file, encoding="utf-8") as handle:
        trace = read_trace(handle)
    result = replay_trace(trace)
    print(" -> ".join(result.schedule), file=out)
    if result.matches:
        print(f"replay ok: schedule and digest {result.digest} reproduced",
              file=out)
        return 0
    for line in result.mismatches:
        print("mismatch: " + line, file=out)
    return 1


def _cmd_serve(args, out) -> int:
    import asyncio
    import signal

    from .service import VerificationService

    jobs = args.jobs
    if jobs is None:
        from .core.parallel import resolve_jobs

        jobs = resolve_jobs(None)
    obs = None
    if args.tracing:
        from .obs import IdSource, Observability

        obs = Observability.enabled(
            trace=True, metrics=True, record=False,
            ids=(IdSource(seed=args.ids_seed)
                 if args.ids_seed is not None else None),
            segment="service", max_spans=10_000,
        )
    service = VerificationService(
        specs_dir=args.specs_dir,
        cache=_cache_from_args(args),
        jobs=jobs,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        default_deadline=args.deadline,
        obs=obs,
    )

    async def run() -> None:
        host, port = await service.start(args.host, args.port)
        names = service.registry.names()
        print(f"serving on http://{host}:{port}"
              + (f" ({len(names)} specs: {', '.join(names)})" if names else ""),
              file=out, flush=True)
        loop = asyncio.get_running_loop()
        stop = loop.create_task(service.serve_forever())

        def request_shutdown() -> None:
            stop.cancel()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        try:
            await stop
        finally:
            print("draining...", file=out, flush=True)
            await service.shutdown(drain=True)
            print("shutdown complete", file=out, flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # signal handler unavailable (e.g. Windows)
        pass
    return 0


def _cmd_cluster(args, out) -> int:
    import asyncio
    import signal

    from .cluster.quotas import AdmissionController
    from .cluster.router import ClusterRouter
    from .cluster.supervisor import WorkerSupervisor
    from .cluster.worker import ProcessWorker

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 1
    cache = _cache_from_args(args)
    tracing = args.tracing or args.trace_dir is not None
    worker_args = ["--jobs", str(args.jobs)]
    cache_dir = getattr(cache, "directory", None)
    if cache_dir is not None:
        worker_args += ["--cache-dir", str(cache_dir)]
    if tracing:
        worker_args.append("--tracing")
    handles = []
    for i in range(args.workers):
        per_worker = list(worker_args)
        if tracing and args.ids_seed is not None:
            # Distinct id streams per process: no cross-segment ref
            # collisions when the router stitches span trees together.
            per_worker += ["--ids-seed", str(args.ids_seed + 1 + i)]
        handles.append(ProcessWorker(f"w{i}", extra_args=tuple(per_worker)))
    supervisor = WorkerSupervisor(handles)
    admission = None
    if args.capacity is not None:
        admission = AdmissionController(
            args.capacity, default_share=args.tenant_share
        )
    obs = None
    trace_sink = None
    if tracing:
        from .obs import IdSource, Observability
        from .obs.distributed import TraceSink

        obs = Observability.enabled(
            trace=True, metrics=True, record=False,
            ids=(IdSource(seed=args.ids_seed)
                 if args.ids_seed is not None else None),
            segment="router", max_spans=10_000,
        )
        if args.trace_dir is not None:
            trace_sink = TraceSink(args.trace_dir)
    router = ClusterRouter(
        supervisor,
        specs_dir=args.specs_dir,
        cache=cache,
        replicas=args.replicas,
        hedge_delay=args.hedge_delay,
        admission=admission,
        obs=obs,
        trace_sink=trace_sink,
    )

    async def run() -> None:
        host, port = await router.start(args.host, args.port)
        print(
            f"cluster routing on http://{host}:{port} "
            f"({args.workers} workers, {args.replicas} replicas/key)",
            file=out, flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = loop.create_task(router.serve_forever())

        def request_shutdown() -> None:
            stop.cancel()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        try:
            await stop
        finally:
            print("draining...", file=out, flush=True)
            await router.shutdown(drain=True)
            print("shutdown complete", file=out, flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # signal handler unavailable (e.g. Windows)
        pass
    return 0


def _cmd_dot(spec: Specification, out, cache=None, backend=None) -> int:
    from .graph.dot import goal_to_dot

    compiled = spec.compile(cache=cache, backend=backend)
    print(goal_to_dot(compiled.goal if compiled.consistent else compiled.source),
          file=out)
    return 0 if compiled.consistent else 1


def _cmd_show(spec: Specification, out, cache=None, backend=None) -> int:
    from .ctr.formulas import goal_size

    compiled = spec.compile(cache=cache, backend=backend)
    print("source:  ", pretty(compiled.source), file=out)
    print("compiled:", pretty(compiled.goal), file=out)
    print(
        f"sizes:    |G|={goal_size(compiled.source)}"
        f" |Apply|={compiled.applied_size} |compiled|={compiled.compiled_size}",
        file=out,
    )
    print(
        f"sharing:  dag(Apply)={compiled.applied_dag_size}"
        f" dag(compiled)={compiled.compiled_dag_size}"
        f" ratio={compiled.sharing_ratio:.2f}x",
        file=out,
    )
    return 0 if compiled.consistent else 1


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "cluster":
            return _cmd_cluster(args, out)
        if args.command == "top":
            from .obs.top import run_top

            return run_top(args.host, args.port, interval=args.interval,
                           iterations=args.iterations, out=out)
        spec = load_specification(args.spec)
        cache = _cache_from_args(args)
        backend = getattr(args, "backend", None)
        if args.command == "check":
            return _cmd_check(spec, out, cache=cache, backend=backend)
        if args.command == "schedules":
            return _cmd_schedules(spec, out, args.limit, cache=cache,
                                  backend=backend)
        if args.command == "verify":
            return _cmd_verify(spec, out, cache=cache, jobs=args.jobs,
                               seed=args.witness_seed, backend=backend)
        if args.command == "run":
            return _cmd_run(spec, out, args)
        if args.command == "dot":
            return _cmd_dot(spec, out, cache=cache, backend=backend)
        return _cmd_show(spec, out, cache=cache, backend=backend)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        schedule = getattr(exc, "schedule", None)
        if schedule:
            print("  partial schedule: " + " -> ".join(schedule), file=sys.stderr)
        eligible = getattr(exc, "eligible", None)
        if eligible:
            print("  eligible at failure: " + ", ".join(sorted(eligible)),
                  file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `repro dot ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
