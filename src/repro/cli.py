"""Command-line interface: analyze and run workflow specification files.

::

    python -m repro check SPEC        # consistency + static report
    python -m repro schedules SPEC    # enumerate allowed executions
    python -m repro verify SPEC       # verify the file's `property` lines
    python -m repro run SPEC          # execute one schedule (log-only oracle)
    python -m repro show SPEC         # print the compiled goal

``SPEC`` is a text file in the :mod:`repro.spec` format. Exit status is 0
on success, 1 when the specification is inconsistent, a property fails,
or the file cannot be parsed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.static import analyze
from .core.verify import verify_property
from .ctr.pretty import pretty
from .errors import ReproError
from .spec import Specification, load_specification

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Logic-based workflow analysis (PODS'98 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("check", "check consistency and print the static report"),
        ("schedules", "enumerate the allowed executions"),
        ("verify", "verify the specification's properties"),
        ("run", "execute one schedule with the log-only oracle"),
        ("show", "print the compiled goal"),
        ("dot", "emit Graphviz DOT for the compiled goal"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("spec", help="path to a workflow specification file")
        if name == "schedules":
            command.add_argument(
                "--limit", type=int, default=100, help="maximum schedules to print"
            )
        if name == "run":
            command.add_argument(
                "--retry", type=int, default=1, metavar="N",
                help="attempt each activity up to N times (default: 1)",
            )
            command.add_argument(
                "--backoff", type=float, default=0.0, metavar="SECONDS",
                help="base delay between attempts, doubled each retry "
                     "(virtual seconds)",
            )
            command.add_argument(
                "--fail", action="append", default=[], metavar="EVENT[:K]",
                help="chaos: fail EVENT's first K attempts "
                     "(omit :K to fail it permanently); repeatable",
            )
            command.add_argument(
                "--fail-rate", type=float, default=0.0, metavar="P",
                help="chaos: fail any attempt with probability P (seeded)",
            )
            command.add_argument(
                "--seed", type=int, default=0,
                help="seed for --fail-rate fault injection",
            )
    return parser


def _cmd_check(spec: Specification, out) -> int:
    compiled = spec.compile()
    report = analyze(compiled)
    print(report.describe(), file=out)
    return 0 if compiled.consistent else 1


def _cmd_schedules(spec: Specification, out, limit: int) -> int:
    compiled = spec.compile()
    if not compiled.consistent:
        print("inconsistent: no allowed executions", file=out)
        return 1
    count = 0
    for schedule in compiled.schedules(limit=max(limit, 1)):
        print(" -> ".join(schedule), file=out)
        count += 1
        if count >= limit:
            print(f"... (stopped at {limit})", file=out)
            break
    return 0


def _cmd_verify(spec: Specification, out) -> int:
    if not spec.properties:
        print("specification declares no properties", file=out)
        return 0
    failures = 0
    for name, prop in spec.properties:
        result = verify_property(
            spec.goal, list(spec.constraints), prop, rules=spec.rules
        )
        status = "HOLDS" if result.holds else "FAILS"
        print(f"[{status}] {name}: {prop}", file=out)
        if not result.holds:
            failures += 1
            print(f"        witness: {' -> '.join(result.witness)}", file=out)
    return 1 if failures else 0


def _cmd_run(spec: Specification, out, args) -> int:
    from .core.engine import WorkflowEngine
    from .core.resilience import ChaosOracle, ResiliencePolicy, RetryPolicy, VirtualClock
    from .db.oracle import TransitionOracle

    compiled = spec.compile()
    if not compiled.consistent:
        print("inconsistent: nothing to run", file=out)
        return 1
    clock = VirtualClock()
    oracle = TransitionOracle()
    if args.fail or args.fail_rate:
        from .ctr.formulas import event_names

        known = event_names(spec.goal)
        chaos = ChaosOracle(oracle, clock=clock, seed=args.seed)
        for directive in args.fail:
            event, _, budget = directive.partition(":")
            try:
                attempts = int(budget) if budget else None
            except ValueError:
                print(f"error: --fail expects EVENT[:K] with integer K, "
                      f"got {directive!r}", file=sys.stderr)
                return 2
            if event not in known:
                print(f"warning: --fail {event!r} matches no activity in "
                      "the workflow; no fault will be injected",
                      file=sys.stderr)
            chaos.fail_event(event, attempts=attempts)
        if args.fail_rate:
            try:
                chaos.fail_rate(args.fail_rate)
            except ValueError as exc:
                print(f"error: --fail-rate: {exc}", file=sys.stderr)
                return 2
        oracle = chaos
    policies = ResiliencePolicy(
        default=RetryPolicy(max_attempts=max(args.retry, 1),
                            base_delay=args.backoff, multiplier=2.0)
    )
    report = WorkflowEngine(compiled, oracle=oracle,
                            policies=policies, clock=clock).run()
    print(" -> ".join(report.schedule), file=out)
    summary = report.summary()
    if summary:
        print(summary, file=out)
    return 0


def _cmd_dot(spec: Specification, out) -> int:
    from .graph.dot import goal_to_dot

    compiled = spec.compile()
    print(goal_to_dot(compiled.goal if compiled.consistent else compiled.source),
          file=out)
    return 0 if compiled.consistent else 1


def _cmd_show(spec: Specification, out) -> int:
    compiled = spec.compile()
    print("source:  ", pretty(compiled.source), file=out)
    print("compiled:", pretty(compiled.goal), file=out)
    print(
        f"sizes:    |G|={len(list(_walk(compiled.source)))}"
        f" |Apply|={compiled.applied_size} |compiled|={compiled.compiled_size}",
        file=out,
    )
    return 0 if compiled.consistent else 1


def _walk(goal):
    from .ctr.formulas import walk

    return walk(goal)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        spec = load_specification(args.spec)
        if args.command == "check":
            return _cmd_check(spec, out)
        if args.command == "schedules":
            return _cmd_schedules(spec, out, args.limit)
        if args.command == "verify":
            return _cmd_verify(spec, out)
        if args.command == "run":
            return _cmd_run(spec, out, args)
        if args.command == "dot":
            return _cmd_dot(spec, out)
        return _cmd_show(spec, out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        schedule = getattr(exc, "schedule", None)
        if schedule:
            print("  partial schedule: " + " -> ".join(schedule), file=sys.stderr)
        eligible = getattr(exc, "eligible", None)
        if eligible:
            print("  eligible at failure: " + ", ".join(sorted(eligible)),
                  file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `repro dot ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
