"""The NP-completeness reduction of Proposition 4.1.

"The NP-hardness proof is by reduction to satisfiability of propositional
logic … the problem is NP-complete even in the presence of just the
existence constraints."

The reduction implemented here: for a CNF formula over variables
``x₁ … xₙ``,

* the control flow graph offers, for each variable, a non-deterministic
  choice between the events ``xi_true`` and ``xi_false``, all variables in
  parallel::

      (x1_true ∨ x1_false) | … | (xn_true ∨ xn_false)

* each clause becomes an *existence* constraint — a disjunction of
  positive primitives over its literals' events (no order constraints
  anywhere, confirming that "synchronization per se is not the culprit").

The workflow is consistent with the constraints iff the CNF is
satisfiable, and any allowed schedule reads back an satisfying
assignment. A brute-force SAT solver is included as the ground truth for
the test-suite, along with a seeded random k-CNF generator for benchmark
E5.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..constraints.algebra import Constraint, disj, must
from ..ctr.formulas import Atom, Goal, alt, par

__all__ = [
    "Cnf",
    "random_cnf",
    "brute_force_sat",
    "cnf_to_workflow",
    "workflow_consistency_sat",
    "assignment_from_schedule",
]

# A literal is a non-zero int: +i means xi, -i means ¬xi (DIMACS style).
Clause = tuple[int, ...]


@dataclass(frozen=True)
class Cnf:
    """A propositional formula in conjunctive normal form."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > self.n_vars:
                    raise ValueError(f"literal {literal} out of range")

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in self.clauses
        )


def random_cnf(
    n_vars: int,
    n_clauses: int,
    k: int = 3,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Cnf:
    """A random k-CNF over ``n_vars`` variables (distinct variables per clause)."""
    if rng is None:
        rng = random.Random(seed)
    if n_vars < k:
        raise ValueError(f"need at least {k} variables for {k}-clauses")
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), k)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return Cnf(n_vars, tuple(clauses))


def brute_force_sat(cnf: Cnf) -> dict[int, bool] | None:
    """Exhaustive SAT check — ground truth for the reduction tests."""
    for bits in itertools.product((False, True), repeat=cnf.n_vars):
        assignment = {i + 1: bit for i, bit in enumerate(bits)}
        if cnf.evaluate(assignment):
            return assignment
    return None


def _event(literal: int) -> str:
    polarity = "true" if literal > 0 else "false"
    return f"x{abs(literal)}_{polarity}"


def cnf_to_workflow(cnf: Cnf) -> tuple[Goal, list[Constraint]]:
    """The Proposition 4.1 reduction: CNF → (control flow goal, existence constraints)."""
    variable_choices = [
        alt(Atom(_event(i)), Atom(_event(-i))) for i in range(1, cnf.n_vars + 1)
    ]
    goal = par(*variable_choices) if len(variable_choices) > 1 else variable_choices[0]
    constraints = [disj(*(must(_event(lit)) for lit in clause)) for clause in cnf.clauses]
    return goal, constraints


def workflow_consistency_sat(cnf: Cnf) -> dict[int, bool] | None:
    """Decide SAT via workflow consistency (Theorem 5.8 + the reduction).

    Returns a satisfying assignment extracted from an allowed schedule, or
    None when the workflow (hence the CNF) is inconsistent.
    """
    from ..core.compiler import compile_workflow

    goal, constraints = cnf_to_workflow(cnf)
    compiled = compile_workflow(goal, constraints)
    if not compiled.consistent:
        return None
    schedule = compiled.scheduler().run()
    return assignment_from_schedule(schedule, cnf.n_vars)


def assignment_from_schedule(
    schedule: tuple[str, ...], n_vars: int
) -> dict[int, bool]:
    """Read the variable assignment off an allowed schedule."""
    assignment: dict[int, bool] = {}
    for event in schedule:
        name, _, polarity = event.rpartition("_")
        assignment[int(name[1:])] = polarity == "true"
    for i in range(1, n_vars + 1):
        assignment.setdefault(i, False)
    return assignment
