"""Instrumentation and curve fitting for the benchmark harness.

The paper's evaluation consists of complexity *claims* (Theorem 5.11,
Proposition 4.1, the scheduling and model-checking comparisons of Sections
4 and 6). The benchmarks validate their shape empirically; this module
provides the shared machinery: structural statistics of goals, least-
squares growth-model fitting (power law and exponential), and a plain
ASCII table renderer for the printed results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Receive,
    Send,
    subgoals,
)

__all__ = [
    "GoalStats",
    "goal_stats",
    "fit_power_law",
    "fit_exponential",
    "percentile",
    "render_table",
]


@dataclass(frozen=True)
class GoalStats:
    """Structural statistics of a goal.

    ``size``/``events``/``choices``/``tokens`` are *tree* counts (the
    measures the theorems speak about — a shared subterm counts once per
    occurrence); ``dag_size`` is the number of distinct nodes actually
    allocated under hash-consing, and ``sharing`` is their ratio
    (``size / dag_size``; 1.0 means no structural sharing).
    """

    size: int
    events: int
    choices: int
    tokens: int
    max_parallel_width: int
    dag_size: int = 0
    sharing: float = 1.0


def goal_stats(goal: Goal) -> GoalStats:
    """Count the structural features of ``goal`` relevant to the theorems.

    Tree counts are computed over the shared DAG — each distinct node's
    subtree totals are computed once — so this is O(dag_size) time even on
    ``d^N``-tree-sized compiled goals.
    """
    # Per distinct node: (size, events, choices, tokens), tree-weighted.
    totals: dict[int, tuple[int, int, int, int]] = {}
    width = 1
    distinct = 0
    stack = [goal]
    while stack:
        node = stack[-1]
        if id(node) in totals:
            stack.pop()
            continue
        children = subgoals(node)
        pending = [c for c in children if id(c) not in totals]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        distinct += 1
        size, events, choices, tokens = 1, 0, 0, 0
        if isinstance(node, Atom):
            events = 1
        elif isinstance(node, Choice):
            choices = 1
        elif isinstance(node, (Send, Receive)):
            tokens = 1
        elif isinstance(node, Concurrent):
            width = max(width, len(node.parts))
        for child in children:
            c_size, c_events, c_choices, c_tokens = totals[id(child)]
            size += c_size
            events += c_events
            choices += c_choices
            tokens += c_tokens
        totals[id(node)] = (size, events, choices, tokens)
    size, events, choices, tokens = totals[id(goal)]
    return GoalStats(
        size=size,
        events=events,
        choices=choices,
        tokens=tokens,
        max_parallel_width=width,
        dag_size=distinct,
        sharing=size / distinct,
    )


def _linear_regression(xs: list[float], ys: list[float]) -> tuple[float, float, float]:
    """Least-squares fit ``y = a·x + b``; returns (a, b, r²)."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r2


def fit_power_law(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Fit ``y ∝ x^k`` by log-log regression; returns (k, r²).

    A linear claim ("Apply is linear in |G|") shows up as ``k ≈ 1``; a
    quadratic baseline as ``k ≈ 2``.
    """
    log_xs = [math.log(x) for x in xs]
    log_ys = [math.log(max(y, 1e-12)) for y in ys]
    slope, _intercept, r2 = _linear_regression(log_xs, log_ys)
    return slope, r2


def fit_exponential(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Fit ``y ∝ b^x`` by semi-log regression; returns (b, r²).

    An exponential claim ("size is O(d^N)") shows up as ``b ≈ d``.
    """
    log_ys = [math.log(max(y, 1e-12)) for y in ys]
    slope, _intercept, r2 = _linear_regression(list(xs), log_ys)
    return math.exp(slope), r2


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    ``q`` is in [0, 100]. Used by the observability histograms
    (:mod:`repro.obs.metrics`) for their p50/p95/p99 summaries.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def render_table(title: str, headers: list[str], rows: list[list], note: str = "") -> str:
    """Render an ASCII table like the ones the benchmarks print."""
    cells = [[_format(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
