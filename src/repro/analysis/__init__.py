"""Complexity analysis: the SAT reduction of Prop. 4.1, path counting, and measurement tools."""

from .counting import count_paths, path_length_profile
from .metrics import (
    GoalStats,
    fit_exponential,
    fit_power_law,
    goal_stats,
    render_table,
)
from .sat import (
    Cnf,
    assignment_from_schedule,
    brute_force_sat,
    cnf_to_workflow,
    random_cnf,
    workflow_consistency_sat,
)

__all__ = [
    "Cnf",
    "random_cnf",
    "brute_force_sat",
    "cnf_to_workflow",
    "workflow_consistency_sat",
    "assignment_from_schedule",
    "GoalStats",
    "goal_stats",
    "fit_power_law",
    "fit_exponential",
    "render_table",
    "count_paths",
    "path_length_profile",
]
