"""Counting execution paths without enumerating them.

"Enumerating all execution paths of G' takes time linear in G per path" —
but *how many* paths are there? For token-free goals the answer is a
closed-form combinatorial computation:

* an atom is one item;
* serial composition concatenates (path counts multiply, lengths add);
* a choice sums the alternatives;
* concurrent composition interleaves: two parts with ``n₁`` and ``n₂``
  items combine into ``C(n₁+n₂, n₁)`` arrangements per path pair;
* an isolated block is contiguous, i.e. a *single* item whose internal
  arrangements multiply;
* tests and possibility checks are trace-invisible (zero items).

:func:`count_paths` computes the exact number in polynomial time —
compare with the exponential cost of enumeration. The count is over
execution *paths*: when two choice alternatives can realise the same
event sequence the distinct-*trace* count is lower (each path is still a
separate way the scheduler can run the workflow).

Goals containing ``send``/``receive`` tokens are rejected: tokens
restrict interleavings in ways that make counting #P-hard in general —
count the *source* goal, or the compiled goal of an order-constraint-free
specification.
"""

from __future__ import annotations

from math import comb

from ..ctr.formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)
from ..errors import SpecificationError

__all__ = ["count_paths", "path_length_profile"]

# A profile maps "number of interleavable items" -> "number of paths".
Profile = dict[int, int]


def path_length_profile(goal: Goal) -> Profile:
    """Paths of ``goal`` grouped by their number of interleavable items."""
    return _profile(goal)


def count_paths(goal: Goal) -> int:
    """The exact number of execution paths of a token-free goal."""
    return sum(_profile(goal).values())


def _profile(goal: Goal) -> Profile:
    if isinstance(goal, Atom):
        return {1: 1}
    if isinstance(goal, (Send, Receive)):
        raise SpecificationError(
            "cannot count paths of a goal with synchronization tokens "
            "(the restriction they impose makes counting #P-hard); count "
            "the uncompiled goal instead"
        )
    if isinstance(goal, (Test, Empty)):
        return {0: 1}
    if isinstance(goal, NegPath):
        return {}
    if isinstance(goal, Possibility):
        from ..core.excise import excise
        from ..ctr.simplify import is_failure

        return {} if is_failure(excise(goal.body)) else {0: 1}

    if isinstance(goal, Serial):
        profile: Profile = {0: 1}
        for part in goal.parts:
            profile = _serial_merge(profile, _profile(part))
        return profile

    if isinstance(goal, Concurrent):
        profile = {0: 1}
        for part in goal.parts:
            profile = _shuffle_merge(profile, _profile(part))
        return profile

    if isinstance(goal, Choice):
        merged: Profile = {}
        for part in goal.parts:
            for items, count in _profile(part).items():
                merged[items] = merged.get(items, 0) + count
        return merged

    if isinstance(goal, Isolated):
        inner = _profile(goal.body)
        # A contiguous block interleaves as one item; paths where the body
        # emits nothing contribute no item at all.
        out: Profile = {}
        if 0 in inner:
            out[0] = inner[0]
        rest = sum(count for items, count in inner.items() if items > 0)
        if rest:
            out[1] = rest
        return out

    raise SpecificationError(f"cannot count paths of {type(goal).__name__}")


def _serial_merge(left: Profile, right: Profile) -> Profile:
    out: Profile = {}
    for n1, c1 in left.items():
        for n2, c2 in right.items():
            out[n1 + n2] = out.get(n1 + n2, 0) + c1 * c2
    return out


def _shuffle_merge(left: Profile, right: Profile) -> Profile:
    out: Profile = {}
    for n1, c1 in left.items():
        for n2, c2 in right.items():
            n = n1 + n2
            out[n] = out.get(n, 0) + c1 * c2 * comb(n, n1)
    return out
