"""Concurrent Transaction Logic: the concurrent-Horn fragment.

This subpackage implements the logical substrate of the paper: the formula
AST (:mod:`~repro.ctr.formulas`), the unique-event property
(:mod:`~repro.ctr.unique`), exact trace semantics used as the testing
oracle (:mod:`~repro.ctr.traces`), the executable step semantics
(:mod:`~repro.ctr.machine`), concurrent-Horn rules / sub-workflows
(:mod:`~repro.ctr.rules`), plus a parser and pretty-printers.
"""

from .formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    atom,
    atoms,
    dag_size,
    event_names,
    goal_size,
    intern_table_size,
    interning,
    interning_enabled,
    is_concurrent_horn,
    par,
    seq,
    set_interning,
    sharing_ratio,
    subgoals,
    walk,
    walk_unique,
)
from .machine import Config, Machine, can_complete, machine_traces
from .parser import parse_goal
from .pretty import pretty, pretty_tree, pretty_unicode
from .rules import Rule, RuleBase
from .simplify import is_failure, simplify
from .traces import count_traces, is_executable, traces
from .serialize import (
    constraint_from_dict,
    constraint_to_dict,
    goal_from_dict,
    goal_from_shared_dict,
    goal_to_dict,
    goal_to_shared_dict,
    goals_from_shared_dict,
    goals_to_shared_dict,
    specification_from_dict,
    specification_to_dict,
)
from .unique import check_unique_events, is_unique_event_goal, occurring_events
from .unroll import bounded_loop, occurrence_names, recursive_heads, unroll

__all__ = [
    "Atom", "Send", "Receive", "Test", "Serial", "Concurrent", "Choice",
    "Isolated", "Possibility", "Path", "NegPath", "Empty", "Goal",
    "PATH", "NEG_PATH", "EMPTY",
    "atom", "atoms", "seq", "par", "alt",
    "goal_size", "dag_size", "sharing_ratio", "event_names", "subgoals",
    "walk", "walk_unique", "is_concurrent_horn",
    "set_interning", "interning_enabled", "interning", "intern_table_size",
    "simplify", "is_failure",
    "check_unique_events", "is_unique_event_goal", "occurring_events",
    "traces", "is_executable", "count_traces",
    "Machine", "Config", "can_complete", "machine_traces",
    "parse_goal", "pretty", "pretty_unicode", "pretty_tree",
    "Rule", "RuleBase",
    "unroll", "bounded_loop", "occurrence_names", "recursive_heads",
    "goal_to_dict", "goal_from_dict",
    "goal_to_shared_dict", "goal_from_shared_dict",
    "goals_to_shared_dict", "goals_from_shared_dict",
    "constraint_to_dict",
    "constraint_from_dict", "specification_to_dict", "specification_from_dict",
]
