"""Concurrent-Horn rules and sub-workflow definitions.

A concurrent-Horn rule ``head ← body`` names a sub-workflow: using ``head``
inside another goal behaves as if ``body`` were inlined (Section 2 of the
paper: "sub-workflows can be described using concurrent-Horn goals").
Several rules with the same head define alternative implementations — using
the head is then a non-deterministic choice among the bodies, exactly the
SLD reading of multiple clauses.

The paper restricts itself to *non-iterative* workflows, i.e. no recursive
rules; :class:`RuleBase` enforces this and :meth:`RuleBase.expand` inlines
all definitions bottom-up, yielding a rule-free goal suitable for the
Apply/Excise pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RecursionError_, SpecificationError
from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Serial,
    alt,
    par,
    seq,
)

__all__ = ["Rule", "RuleBase"]


@dataclass(frozen=True, slots=True)
class Rule:
    """A concurrent-Horn rule ``head ← body`` defining a sub-workflow."""

    head: str
    body: Goal

    def __post_init__(self) -> None:
        if not self.head:
            raise SpecificationError("rule head must be a non-empty name")


class RuleBase:
    """An ordered collection of non-recursive concurrent-Horn rules.

    >>> from repro.ctr.formulas import atoms
    >>> a, b, c = atoms("a b c")
    >>> rb = RuleBase([Rule("book", a >> b), Rule("book", c)])
    >>> rb.expand(Atom("book"))      # doctest: +SKIP
    (a ⊗ b) ∨ c
    """

    def __init__(self, rules: list[Rule] | None = None):
        self._bodies: dict[str, list[Goal]] = {}
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        """Add a rule, re-validating that the base stays non-recursive."""
        self._bodies.setdefault(rule.head, []).append(rule.body)
        try:
            self.check_nonrecursive()
        except RecursionError_:
            self._bodies[rule.head].pop()
            if not self._bodies[rule.head]:
                del self._bodies[rule.head]
            raise

    @property
    def heads(self) -> frozenset[str]:
        """Names defined by this rule base."""
        return frozenset(self._bodies)

    def bodies(self, head: str) -> tuple[Goal, ...]:
        """The alternative definitions of ``head``."""
        return tuple(self._bodies.get(head, ()))

    def definition(self, head: str) -> Goal:
        """The single-goal definition of ``head`` (choice over its bodies)."""
        bodies = self.bodies(head)
        if not bodies:
            raise SpecificationError(f"no rule defines {head!r}")
        return alt(*bodies) if len(bodies) > 1 else bodies[0]

    # -- recursion check ------------------------------------------------------

    def _dependencies(self, head: str) -> frozenset[str]:
        deps: set[str] = set()
        for body in self._bodies.get(head, ()):
            for node in _atom_names(body):
                if node in self._bodies:
                    deps.add(node)
        return frozenset(deps)

    def check_nonrecursive(self) -> None:
        """Raise :class:`~repro.errors.RecursionError_` on cyclic definitions."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {head: WHITE for head in self._bodies}
        trail: list[str] = []

        def visit(head: str) -> None:
            colour[head] = GREY
            trail.append(head)
            for dep in sorted(self._dependencies(head)):
                if colour[dep] == GREY:
                    cycle_start = trail.index(dep)
                    raise RecursionError_(tuple(trail[cycle_start:]) + (dep,))
                if colour[dep] == WHITE:
                    visit(dep)
            trail.pop()
            colour[head] = BLACK

        for head in sorted(self._bodies):
            if colour[head] == WHITE:
                visit(head)

    # -- expansion -------------------------------------------------------------

    def expand(self, goal: Goal) -> Goal:
        """Inline every sub-workflow definition, producing a rule-free goal."""
        if isinstance(goal, Atom) and goal.name in self._bodies:
            return self.expand(self.definition(goal.name))
        if isinstance(goal, Serial):
            return seq(*(self.expand(p) for p in goal.parts))
        if isinstance(goal, Concurrent):
            return par(*(self.expand(p) for p in goal.parts))
        if isinstance(goal, Choice):
            return alt(*(self.expand(p) for p in goal.parts))
        if isinstance(goal, Isolated):
            return Isolated(self.expand(goal.body))
        if isinstance(goal, Possibility):
            return Possibility(self.expand(goal.body))
        return goal


def _atom_names(goal: Goal):
    stack = [goal]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            yield node.name
        elif isinstance(node, (Serial, Concurrent, Choice)):
            stack.extend(node.parts)
        elif isinstance(node, (Isolated, Possibility)):
            stack.append(node.body)
