"""Flat automata kernel: goals lowered to integer tables, executed without objects.

Section 6 of the paper contrasts CONSTR compilation with the "standard
toolkit": turn the property into a finite automaton and model-check the
product with the system. :mod:`repro.baselines.automata` builds that
toolkit over Python objects; this module is the *production* version of the
same idea, applied to the goals themselves. A compiled (knot-free) goal is
**lowered** once into a :class:`KernelProgram` — a handful of flat integer
tables — and every hot query (trace enumeration, executability, counting,
scheduling, constraint acceptance) then runs over those tables with

* the event alphabet interned to dense integer ids,
* the goal structure as a post-order node table (the same shared-DAG
  encoding :func:`repro.ctr.serialize.goal_to_shared_dict` uses on disk:
  ``kinds``/``args``/``lens`` arrays plus one flat ``children`` array),
* synchronization tokens as bits of one integer mask instead of
  ``frozenset`` objects,
* constraint checking as :class:`ConstraintKernel` integer step tables —
  the :class:`~repro.baselines.automata.ConstraintAutomaton` DFA, but over
  event ids with a per-leaf ``alphabet → position`` table and a postfix
  acceptance bytecode — instead of formula re-walks,
* and every traversal iterative (explicit work stacks, saturating
  budgets), so deep goals neither recurse past the interpreter limit nor
  do unbounded work past their budget.

Execution states are ``(residual, token_mask)`` pairs where the residual
term is built from plain ints (node ids) and small tuples; structurally
equal residuals hash in O(size of the *changed* spine), which is what makes
the kernel machine several times faster than the object
:class:`~repro.ctr.machine.Machine` on wide concurrent goals. Candidate
interleavings that violate send-before-receive are pruned *during* the
search (a ``receive`` simply has no step until its token bit is set), not
generated and filtered afterwards — on heavily synchronized compiled goals
this is an exponential reduction in work, which is what lets the
``test_minimize`` property run inside its trace budget.

The kernel is the *fast path*, not the semantics: :mod:`repro.ctr.traces`
and :mod:`repro.core.scheduler` remain the oracle, and the differential
suite in ``tests/ctr/test_kernel.py`` asserts bit-identical answers. The
lowering is static — :class:`~repro.ctr.formulas.Test` predicates are
treated as passable (the same sound-not-complete reading the trace
semantics uses); run-time execution with live transition conditions stays
on the object backend.

Programs are frozen after lowering and safely shareable: the tables
serialize to one contiguous buffer (:meth:`KernelProgram.to_bytes`) and
rebuild zero-copy from any buffer (:meth:`KernelProgram.from_buffer`,
used by :mod:`repro.core.kernel_backend` to hand one
``multiprocessing.shared_memory`` segment to a whole worker pool).
"""

from __future__ import annotations

import json
from array import array
from typing import Callable, Iterator

from ..constraints.algebra import And, Constraint, Or, Primitive, SerialConstraint
from ..constraints.normalize import normalize
from ..errors import IneligibleEventError, SchedulingError, SpecificationError
from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)
from .traces import TooManyTracesError, TraceCount

__all__ = [
    "KernelProgram",
    "KernelScheduler",
    "ConstraintKernel",
    "lower_goal",
    "K_EMPTY",
    "K_ATOM",
    "K_SEND",
    "K_RECV",
    "K_TEST",
    "K_NEGPATH",
    "K_SERIAL",
    "K_CONCURRENT",
    "K_CHOICE",
    "K_ISOLATED",
    "K_POSSIBILITY",
]


# Node kind codes of the flat table. Leaves carry their event/token id in
# ``args``; composites carry the offset of their child block in ``children``
# (``lens`` holds the block length).
K_EMPTY = 0
K_ATOM = 1
K_SEND = 2
K_RECV = 3
K_TEST = 4
K_NEGPATH = 5
K_SERIAL = 6
K_CONCURRENT = 7
K_CHOICE = 8
K_ISOLATED = 9
K_POSSIBILITY = 10

_KIND_NAMES = {
    K_EMPTY: "empty", K_ATOM: "atom", K_SEND: "send", K_RECV: "receive",
    K_TEST: "test", K_NEGPATH: "neg_path", K_SERIAL: "serial",
    K_CONCURRENT: "concurrent", K_CHOICE: "choice", K_ISOLATED: "isolated",
    K_POSSIBILITY: "possibility",
}

# Residual-term sentinels. A residual is one of:
#   an ``int >= 0``          — an unstarted node (index into the tables);
#   ``DONE``                 — a completed term;
#   ``("*", head, node, p)`` — a serial node: ``head`` running, children
#                              ``p:`` of ``node`` still unstarted;
#   ``("|", parts)``         — a concurrent region (tuple of >= 2 residuals);
#   ``("!", body)``          — a running isolated region (no interleaving).
DONE = -1

_SERIAL_FORMAT = 2  # bump when the to_bytes() layout changes


class KernelProgram:
    """A goal lowered to flat integer tables, plus its machine ops.

    Build with :func:`lower_goal` (or :meth:`from_buffer` to attach to a
    serialized program, e.g. one living in shared memory). All tables are
    immutable after construction; the only mutable state is a bounded
    successor cache, so one program may serve many concurrent queries.
    """

    __slots__ = (
        "events", "tokens", "kinds", "args", "lens", "children", "root",
        "nullable", "event_ids", "_succ_cache",
    )

    def __init__(self, events, tokens, kinds, args, lens, children, root):
        self.events = tuple(events)
        self.tokens = tuple(tokens)
        self.kinds = kinds
        self.args = args
        self.lens = lens
        self.children = children
        self.root = root
        self.event_ids = {name: i for i, name in enumerate(self.events)}
        self.nullable = self._compute_nullable()
        self._succ_cache: dict = {}

    # -- lowering --------------------------------------------------------------

    @classmethod
    def from_goal(cls, goal: Goal) -> "KernelProgram":
        """Lower ``goal`` to its flat table form (post-order, DAG-deduped)."""
        from .machine import Running, Tail

        events: dict[str, int] = {}
        tokens: dict[str, int] = {}
        kinds = array("b")
        args = array("q")
        lens = array("q")
        children = array("q")
        index: dict[int, int] = {}

        def leaf_code(node: Goal) -> tuple[int, int] | None:
            if isinstance(node, Atom):
                return K_ATOM, events.setdefault(node.name, len(events))
            if isinstance(node, Send):
                return K_SEND, tokens.setdefault(node.token, len(tokens))
            if isinstance(node, Receive):
                return K_RECV, tokens.setdefault(node.token, len(tokens))
            if isinstance(node, Test):
                return K_TEST, 0
            if isinstance(node, Empty):
                return K_EMPTY, 0
            if isinstance(node, NegPath):
                return K_NEGPATH, 0
            return None

        stack: list[Goal] = [goal]
        while stack:
            node = stack[-1]
            if id(node) in index:
                stack.pop()
                continue
            if isinstance(node, Path):
                raise SpecificationError(
                    "`path` cannot appear in an executable goal"
                )
            if isinstance(node, (Running, Tail)):
                raise SpecificationError(
                    "machine-internal residuals cannot be lowered; lower the "
                    "original compiled goal instead"
                )
            if isinstance(node, (Serial, Concurrent, Choice)):
                kids: tuple[Goal, ...] = node.parts
            elif isinstance(node, (Isolated, Possibility)):
                kids = (node.body,)
            else:
                kids = ()
            pending = [c for c in kids if id(c) not in index]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            code = leaf_code(node)
            if code is not None:
                kind, arg = code
                kinds.append(kind)
                args.append(arg)
                lens.append(0)
            else:
                if isinstance(node, Serial):
                    kind = K_SERIAL
                elif isinstance(node, Concurrent):
                    kind = K_CONCURRENT
                elif isinstance(node, Choice):
                    kind = K_CHOICE
                elif isinstance(node, Isolated):
                    kind = K_ISOLATED
                elif isinstance(node, Possibility):
                    kind = K_POSSIBILITY
                else:  # pragma: no cover - future node kinds
                    raise SpecificationError(
                        f"cannot lower {type(node).__name__}"
                    )
                kinds.append(kind)
                args.append(len(children))
                lens.append(len(kids))
                children.extend(index[id(c)] for c in kids)
            index[id(node)] = len(kinds) - 1

        return cls(
            tuple(events), tuple(tokens), kinds, args, lens, children,
            index[id(goal)],
        )

    def _compute_nullable(self) -> bytes:
        """Per-node "can complete without any step" bit (post-order pass)."""
        out = bytearray(len(self.kinds))
        for i in range(len(self.kinds)):
            kind = self.kinds[i]
            if kind == K_EMPTY:
                out[i] = 1
            elif kind in (K_SERIAL, K_CONCURRENT):
                off = self.args[i]
                out[i] = int(all(
                    out[self.children[off + j]] for j in range(self.lens[i])
                ))
            elif kind == K_CHOICE:
                off = self.args[i]
                out[i] = int(any(
                    out[self.children[off + j]] for j in range(self.lens[i])
                ))
            elif kind == K_ISOLATED:
                out[i] = out[self.children[self.args[i]]]
            # K_TEST is a silent *step* (length-1 path), matching the
            # machine: not nullable, but always passable.
        return bytes(out)

    # -- serialization (the shareable frozen-table form) -----------------------

    def to_bytes(self) -> bytes:
        """One contiguous buffer: header JSON + 8-byte-aligned tables."""
        header = json.dumps({
            "format": _SERIAL_FORMAT,
            "events": list(self.events),
            "tokens": list(self.tokens),
            "root": self.root,
            "nodes": len(self.kinds),
            "children": len(self.children),
        }, separators=(",", ":")).encode("utf-8")
        parts = [len(header).to_bytes(8, "little"), header]
        pad = (-(8 + len(header))) % 8
        parts.append(b"\x00" * pad)
        parts.append(bytes(self.kinds))
        parts.append(b"\x00" * ((-len(self.kinds)) % 8))
        for table in (self.args, self.lens, self.children):
            parts.append(
                table.tobytes() if isinstance(table, array)
                else bytes(table)  # memoryview-backed program
            )
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, buffer) -> "KernelProgram":
        """Rebuild a program *zero-copy* over ``buffer`` (e.g. shared memory).

        The big tables become ``memoryview.cast`` views into the buffer —
        nothing is copied but the small header — so any number of
        processes can execute one shared segment.
        """
        view = memoryview(buffer)
        header_len = int.from_bytes(bytes(view[:8]), "little")
        header = json.loads(bytes(view[8:8 + header_len]).decode("utf-8"))
        if header.get("format") != _SERIAL_FORMAT:
            raise SpecificationError(
                f"unsupported kernel program format {header.get('format')!r}"
            )
        offset = 8 + header_len
        offset += (-offset) % 8
        n = header["nodes"]
        kinds = view[offset:offset + n]
        offset += n + ((-n) % 8)
        args = view[offset:offset + 8 * n].cast("q")
        offset += 8 * n
        lens = view[offset:offset + 8 * n].cast("q")
        offset += 8 * n
        m = header["children"]
        children = view[offset:offset + 8 * m].cast("q")
        return cls(
            tuple(header["events"]), tuple(header["tokens"]),
            kinds, args, lens, children, header["root"],
        )

    # -- residual structure ----------------------------------------------------

    def _child(self, node: int, position: int) -> int:
        return self.children[self.args[node] + position]

    def _serial_tail(self, node: int, position: int):
        """Residual of serial ``node`` once children ``< position`` are done."""
        remaining = self.lens[node] - position
        if remaining <= 0:
            return DONE
        head = self._child(node, position)
        if remaining == 1:
            return head
        return ("*", head, node, position + 1)

    def _mk_serial(self, head, node: int, position: int):
        if head == DONE:
            return self._serial_tail(node, position)
        return ("*", head, node, position)

    def _mk_concurrent(self, parts: tuple) -> object:
        # Flatten nested regions (the machine's ``par()`` normalization):
        # structurally equal residuals must stay structurally equal however
        # they were derived, or state dedup degrades.
        live = []
        for part in parts:
            if part == DONE:
                continue
            if isinstance(part, tuple) and part[0] == "|":
                live.extend(part[1])
            else:
                live.append(part)
        if not live:
            return DONE
        if len(live) == 1:
            return live[0]
        return ("|", tuple(live))

    def rem_nullable(self, rem) -> bool:
        """Can this residual complete without taking any step?"""
        stack = [rem]
        while stack:
            current = stack.pop()
            if current == DONE:
                continue
            if isinstance(current, int):
                if not self.nullable[current]:
                    return False
                continue
            tag = current[0]
            if tag == "*":
                _, head, node, position = current
                stack.append(head)
                off = self.args[node]
                for j in range(position, self.lens[node]):
                    stack.append(self.children[off + j])
            elif tag == "|":
                stack.extend(current[1])
            else:  # "!"
                stack.append(current[1])
        return True

    def _has_running(self, rem) -> bool:
        stack = [rem]
        while stack:
            current = stack.pop()
            if not isinstance(current, tuple):
                continue
            tag = current[0]
            if tag == "!":
                return True
            if tag == "*":
                stack.append(current[1])
            else:  # "|"
                stack.extend(current[1])
        return False

    # -- step derivation (iterative, memoized per call) ------------------------

    def _steps(self, rem, tok: int, memo: dict | None = None):
        """All single steps of ``(rem, tok)`` as ``(label, rem', tok')``.

        ``label`` is an event id, or ``None`` for silent steps
        (send/receive/test/◇). Derivation is an explicit post-order
        evaluation over the residual's sub-terms — no Python recursion —
        with a per-call memo (the token mask is fixed during one
        derivation: sends change it only in *result* states).
        """
        if memo is None:
            memo = {}
        stack = [rem]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            deps = self._step_deps(current, tok)
            pending = [d for d in deps if d not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[current] = self._combine_steps(current, tok, memo)
            stack.pop()
        return memo[rem]

    def _step_deps(self, rem, tok: int) -> tuple:
        """Sub-residuals whose steps ``rem``'s own steps are built from."""
        if rem == DONE:
            return ()
        if isinstance(rem, int):
            kind = self.kinds[rem]
            if kind == K_SERIAL:
                head = self._child(rem, 0)
                deps = [head]
                if self.nullable[head]:
                    deps.append(self._serial_tail(rem, 1))
                return tuple(d for d in deps if d != DONE)
            if kind == K_CONCURRENT:
                return tuple(
                    self._child(rem, j) for j in range(self.lens[rem])
                )
            if kind == K_CHOICE:
                return tuple(
                    self._child(rem, j) for j in range(self.lens[rem])
                )
            if kind == K_ISOLATED:
                return (self._child(rem, 0),)
            return ()
        tag = rem[0]
        if tag == "*":
            _, head, node, position = rem
            deps = [head]
            if self.rem_nullable(head):
                tail = self._serial_tail(node, position)
                if tail != DONE:
                    deps.append(tail)
            return tuple(deps)
        if tag == "|":
            parts = rem[1]
            running = [p for p in parts if self._has_running(p)]
            return tuple(running) if running else parts
        return (rem[1],)  # "!"

    def _combine_steps(self, rem, tok: int, memo: dict) -> tuple:
        if rem == DONE:
            return ()
        if isinstance(rem, int):
            kind = self.kinds[rem]
            if kind == K_ATOM:
                return ((self.args[rem], DONE, tok),)
            if kind == K_SEND:
                return ((None, DONE, tok | (1 << self.args[rem])),)
            if kind == K_RECV:
                if tok >> self.args[rem] & 1:
                    return ((None, DONE, tok),)
                return ()
            if kind == K_TEST:
                return ((None, DONE, tok),)
            if kind in (K_EMPTY, K_NEGPATH):
                return ()
            if kind == K_POSSIBILITY:
                if self.can_complete(self._child(rem, 0), tok):
                    return ((None, DONE, tok),)
                return ()
            if kind == K_SERIAL:
                head = self._child(rem, 0)
                out = [
                    (label, self._mk_serial(nxt, rem, 1), t2)
                    for label, nxt, t2 in memo[head]
                ]
                if self.nullable[head]:
                    tail = self._serial_tail(rem, 1)
                    out.extend(memo[tail] if tail != DONE else ())
                return tuple(out)
            if kind == K_CONCURRENT:
                parts = tuple(
                    self._child(rem, j) for j in range(self.lens[rem])
                )
                return self._concurrent_steps(parts, memo)
            if kind == K_CHOICE:
                out = []
                for j in range(self.lens[rem]):
                    out.extend(memo[self._child(rem, j)])
                return tuple(out)
            if kind == K_ISOLATED:
                return tuple(
                    (label, DONE if nxt == DONE else ("!", nxt), t2)
                    for label, nxt, t2 in memo[self._child(rem, 0)]
                )
            raise SpecificationError(  # pragma: no cover - future kinds
                f"cannot execute kernel node kind {kind}"
            )
        tag = rem[0]
        if tag == "*":
            _, head, node, position = rem
            out = [
                (label, self._mk_serial(nxt, node, position), t2)
                for label, nxt, t2 in memo[head]
            ]
            if self.rem_nullable(head):
                tail = self._serial_tail(node, position)
                if tail != DONE:
                    out.extend(memo[tail])
            return tuple(out)
        if tag == "|":
            parts = rem[1]
            running = tuple(p for p in parts if self._has_running(p))
            return self._concurrent_steps(parts, memo, running or None)
        # "!" — a running isolated region: only its own steps are offered,
        # plus a silent release once the body may complete.
        body = rem[1]
        out = []
        if self.rem_nullable(body):
            out.append((None, DONE, tok))
        out.extend(
            (label, DONE if nxt == DONE else ("!", nxt), t2)
            for label, nxt, t2 in memo[body]
        )
        return tuple(out)

    def _concurrent_steps(self, parts: tuple, memo: dict,
                          only: tuple | None = None) -> tuple:
        out = []
        active = only if only is not None else parts
        for i, part in enumerate(parts):
            if only is not None and part not in only:
                continue
            for label, nxt, t2 in memo[part]:
                replaced = parts[:i] + (nxt,) + parts[i + 1:]
                out.append((label, self._mk_concurrent(replaced), t2))
        del active
        return tuple(out)

    # -- reachability ----------------------------------------------------------

    def can_complete(self, rem, tok: int, budget: int | None = None) -> bool:
        """Is there *any* full execution from ``(rem, tok)``? (state search)"""
        seen = {(rem, tok)}
        stack = [(rem, tok)]
        while stack:
            r, t = stack.pop()
            if self.rem_nullable(r):
                return True
            if budget is not None and len(seen) > budget:
                raise TooManyTracesError(budget)
            for _label, nxt, t2 in self._steps(r, t):
                state = (nxt, t2)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
        return False

    def successors(self, state) -> dict[int, frozenset]:
        """Event-id-labelled successor states, silent steps closed over."""
        cached = self._succ_cache.get(state)
        if cached is not None:
            return cached
        seen = {state}
        frontier = [state]
        result: dict[int, set] = {}
        while frontier:
            r, t = frontier.pop()
            for label, nxt, t2 in self._steps(r, t):
                if label is None:
                    silent = (nxt, t2)
                    if silent not in seen:
                        seen.add(silent)
                        frontier.append(silent)
                else:
                    result.setdefault(label, set()).add((nxt, t2))
        frozen = {label: frozenset(states) for label, states in result.items()}
        if len(self._succ_cache) >= 65536:
            self._succ_cache.clear()
        self._succ_cache[state] = frozen
        return frozen

    def is_final(self, state) -> bool:
        """Can ``state`` complete using silent steps only?"""
        seen = {state}
        frontier = [state]
        while frontier:
            r, t = frontier.pop()
            if self.rem_nullable(r):
                return True
            for label, nxt, t2 in self._steps(r, t):
                if label is None:
                    silent = (nxt, t2)
                    if silent not in seen:
                        seen.add(silent)
                        frontier.append(silent)
        return False

    def initial(self):
        return (self.root, 0)

    # -- budgeted trace queries ------------------------------------------------

    def traces(self, max_traces: int = 200_000) -> frozenset[tuple[str, ...]]:
        """All valid event sequences (names), by pruned machine search.

        Invalid interleavings are never generated (a ``receive`` without
        its token has no step), so the budget bounds *reached states*, and
        heavily synchronized goals enumerate in time proportional to their
        valid executions — not to the raw interleaving space.
        """
        out: set[tuple[int, ...]] = set()
        seen: set = set()
        stack = [((), self.initial())]
        while stack:
            prefix, state = stack.pop()
            key = (prefix, state)
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_traces:
                raise TooManyTracesError(max_traces)
            r, t = state
            if self.rem_nullable(r):
                out.add(prefix)
            for label, nxt, t2 in self._steps(r, t):
                new_prefix = prefix if label is None else prefix + (label,)
                stack.append((new_prefix, (nxt, t2)))
        names = self.events
        return frozenset(tuple(names[e] for e in prefix) for prefix in out)

    def is_executable(self, max_traces: int = 200_000) -> bool:
        """True iff the program has at least one valid execution.

        Short-circuits on the first completable state;
        :class:`TooManyTracesError` only when the budget is exhausted with
        no answer.
        """
        return self.can_complete(self.root, 0, budget=max_traces)

    def count_traces(self, max_traces: int = 200_000) -> TraceCount:
        """Number of distinct valid event sequences, saturating at budget.

        The counter saturates rather than raising: past ``max_traces``
        explored prefixes the count so far is returned as a lower bound
        (``TraceCount(n, exact=False)``), so the budget bounds *work*
        while still answering the question.

        Exact counts are bit-identical to
        :func:`repro.ctr.traces.count_traces`; *saturated* lower bounds
        need not match it, because the pruned kernel search and the
        object-level shuffle enumeration explore (and spend budget) in
        different orders. The kernel may also report an exact count where
        the object engine saturates — its pruning skips intermediate
        interleavings the object engine must materialize.
        """
        out: set[tuple[int, ...]] = set()
        seen: set = set()
        stack = [((), self.initial())]
        while stack:
            prefix, state = stack.pop()
            key = (prefix, state)
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_traces:
                return TraceCount(len(out), exact=False)
            r, t = state
            if self.rem_nullable(r):
                out.add(prefix)
            for label, nxt, t2 in self._steps(r, t):
                new_prefix = prefix if label is None else prefix + (label,)
                stack.append((new_prefix, (nxt, t2)))
        return TraceCount(len(out), exact=True)

    def iter_traces(self, max_traces: int = 200_000) -> Iterator[tuple[str, ...]]:
        """Lazily yield distinct valid event sequences (search order)."""
        out: set[tuple[int, ...]] = set()
        seen: set = set()
        stack = [((), self.initial())]
        names = self.events
        while stack:
            prefix, state = stack.pop()
            key = (prefix, state)
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_traces:
                raise TooManyTracesError(max_traces)
            r, t = state
            if self.rem_nullable(r) and prefix not in out:
                out.add(prefix)
                yield tuple(names[e] for e in prefix)
            for label, nxt, t2 in self._steps(r, t):
                new_prefix = prefix if label is None else prefix + (label,)
                stack.append((new_prefix, (nxt, t2)))


def lower_goal(goal: Goal) -> KernelProgram:
    """Lower ``goal`` to its flat kernel program."""
    return KernelProgram.from_goal(goal)


class KernelScheduler:
    """The pro-active scheduler of Section 4, over kernel states.

    API-compatible with the object
    :class:`~repro.core.scheduler.Scheduler` for the static subset
    (``eligible``/``fire``/``run``/``viable``/``viable_events``/
    ``enumerate_schedules``); eligible sets and produced schedules are
    identical, so witness extraction is backend-independent bit for bit.
    Transition-condition hooks are not supported — run-time execution
    against a live database stays on the object backend.
    """

    def __init__(self, program: KernelProgram):
        self.program = program
        self._initial = frozenset((program.initial(),))
        self._state = self._initial
        self._history: list[str] = []
        self._viability_key: frozenset[int] | None = None
        self._viability_memo: dict = {}

    @property
    def history(self) -> tuple[str, ...]:
        return tuple(self._history)

    def _event_ids(self, names: frozenset[str]) -> frozenset[int]:
        ids = self.program.event_ids
        # Events the program never fires can be avoided for free.
        return frozenset(ids[n] for n in names if n in ids)

    def eligible(self) -> frozenset[str]:
        events: set[int] = set()
        for state in self._state:
            events.update(self.program.successors(state))
        names = self.program.events
        return frozenset(names[e] for e in events)

    def can_finish(self) -> bool:
        return any(self.program.is_final(state) for state in self._state)

    @property
    def finished(self) -> bool:
        return not self.eligible()

    def fire(self, event: str) -> None:
        event_id = self.program.event_ids.get(event)
        next_state: set = set()
        if event_id is not None:
            for state in self._state:
                next_state.update(
                    self.program.successors(state).get(event_id, ())
                )
        if not next_state:
            raise IneligibleEventError(event, self.eligible())
        self._state = frozenset(next_state)
        self._history.append(event)

    def reset(self) -> None:
        self._state = self._initial
        self._history = []

    # -- branch viability ------------------------------------------------------

    def viable(self, avoid: frozenset[str] = frozenset()) -> bool:
        """Can the workflow still complete without ever firing ``avoid``?"""
        avoid_ids = self._event_ids(avoid)
        memo = self._viability(avoid_ids)
        return any(
            self._state_viable(s, avoid_ids, memo) for s in self._state
        )

    def viable_events(self, avoid: frozenset[str] = frozenset()) -> frozenset[str]:
        """Eligible events that keep completion possible avoiding ``avoid``."""
        avoid_ids = self._event_ids(avoid)
        memo = self._viability(avoid_ids)
        out: set[int] = set()
        for state in self._state:
            for event, targets in self.program.successors(state).items():
                if event in avoid_ids or event in out:
                    continue
                if any(self._state_viable(t, avoid_ids, memo) for t in targets):
                    out.add(event)
        names = self.program.events
        return frozenset(names[e] for e in out)

    def _viability(self, avoid: frozenset[int]) -> dict:
        if self._viability_key != avoid:
            self._viability_key = avoid
            self._viability_memo = {}
        return self._viability_memo

    def _state_viable(self, state, avoid: frozenset[int], memo: dict) -> bool:
        cached = memo.get(state)
        if cached is not None:
            return cached
        children: dict = {}
        expanding: set = set()
        stack = [state]
        program = self.program
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            if current not in expanding:
                expanding.add(current)
                if program.is_final(current):
                    memo[current] = True
                    stack.pop()
                    continue
                kids = [
                    target
                    for event, targets in program.successors(current).items()
                    if event not in avoid
                    for target in targets
                ]
                children[current] = kids
                pending = [
                    k for k in kids if k not in memo and k not in expanding
                ]
                if pending:
                    stack.extend(pending)
                    continue
            memo[current] = any(memo.get(k, False) for k in children[current])
            stack.pop()
        return memo[state]

    # -- driving ---------------------------------------------------------------

    def run(
        self,
        strategy: Callable[[frozenset[str]], str] | None = None,
        max_steps: int = 100_000,
    ) -> tuple[str, ...]:
        """Drive to completion; identical schedules to the object scheduler."""
        pick = strategy or (lambda events: min(events))
        for _ in range(max_steps):
            events = self.eligible()
            if not events:
                if self.can_finish():
                    return self.history
                raise SchedulingError(
                    "workflow is stuck: no eligible event and cannot finish "
                    "(was the goal excised?)"
                )
            self.fire(pick(events))
        raise SchedulingError(f"workflow did not finish within {max_steps} steps")

    def enumerate_schedules(self, limit: int = 200_000) -> Iterator[tuple[str, ...]]:
        """Every allowed complete event sequence, depth-first, sorted order."""
        program = self.program
        names = program.events
        produced = 0
        seen_outputs: set[tuple[str, ...]] = set()
        # Explicit DFS: (state-set, prefix) frames, children pushed in
        # reverse-sorted order so output order matches the object
        # scheduler's recursive generator.
        stack = [(self._state, tuple(self._history))]
        while stack:
            state, prefix = stack.pop()
            if any(program.is_final(s) for s in state):
                if prefix not in seen_outputs:
                    seen_outputs.add(prefix)
                    produced += 1
                    if produced > limit:
                        raise TooManyTracesError(limit)
                    yield prefix
            events: dict[int, set] = {}
            for s in state:
                for event, targets in program.successors(s).items():
                    events.setdefault(event, set()).update(targets)
            for event in sorted(events, key=lambda e: names[e], reverse=True):
                stack.append(
                    (frozenset(events[event]), prefix + (names[event],))
                )


# -- constraint step tables ----------------------------------------------------


_VIOLATED = -1
_OP_LEAF = 0
_OP_AND = 1
_OP_OR = 2


class ConstraintKernel:
    """CONSTR constraints as integer step tables over an event-id alphabet.

    The :class:`~repro.baselines.automata.ConstraintAutomaton` DFA with
    the object walk compiled away: leaf states are ints in one flat tuple,
    each serial leaf steps through a precomputed ``alphabet → position``
    table, and acceptance evaluates a postfix bytecode over leaf verdicts
    (memoized per state). Verdicts are identical to the automaton baseline
    and to :func:`repro.constraints.satisfy.satisfies` — asserted by the
    differential suite.
    """

    __slots__ = (
        "constraints", "alphabet", "event_ids", "_leaves", "_bytecode",
        "_accept_cache",
    )

    def __init__(self, constraints, alphabet):
        self.constraints = tuple(constraints)
        self.alphabet = tuple(alphabet)
        self.event_ids = {name: i for i, name in enumerate(self.alphabet)}
        self._leaves: list[tuple] = []
        self._bytecode: list[tuple[int, int]] = []
        self._accept_cache: dict[tuple[int, ...], bool] = {}
        for constraint in self.constraints:
            # Validate the *raw* constraint: normalize's pairwise
            # decomposition rewrites duplicate-event serials into
            # innocuous orders before _compile's leaf check could fire.
            self._check_unique(constraint)
            self._compile(normalize(constraint))

    @staticmethod
    def _check_unique(constraint) -> None:
        if isinstance(constraint, SerialConstraint):
            if len(set(constraint.events)) != len(constraint.events):
                raise SpecificationError(
                    "serial constraint repeats an event, violating the "
                    "unique-event assumption; its step table would mis-step"
                )
        elif not isinstance(constraint, Primitive):
            for part in constraint.parts:
                ConstraintKernel._check_unique(part)

    @classmethod
    def build(cls, constraints, extra_events=()) -> "ConstraintKernel":
        """Build over the union of constraint events and ``extra_events``.

        ``extra_events`` is typically a :class:`KernelProgram`'s alphabet,
        so program event ids and table ids agree on shared events.
        """
        from ..constraints.algebra import constraint_events

        alphabet: dict[str, None] = dict.fromkeys(extra_events)
        for constraint in constraints:
            for event in sorted(constraint_events(constraint)):
                alphabet.setdefault(event, None)
        return cls(tuple(constraints), tuple(alphabet))

    def _compile(self, constraint) -> None:
        """Flatten one constraint into leaf tables + postfix acceptance ops."""
        if isinstance(constraint, Primitive):
            event = self.event_ids[constraint.event]
            self._bytecode.append((_OP_LEAF, len(self._leaves)))
            self._leaves.append(("p", event, constraint.positive))
            return
        if isinstance(constraint, SerialConstraint):
            if len(set(constraint.events)) != len(constraint.events):
                raise SpecificationError(
                    "serial constraint repeats an event, violating the "
                    "unique-event assumption; its automaton would mis-step"
                )
            table = array("q", [-2] * len(self.alphabet))
            for position, event in enumerate(constraint.events):
                table[self.event_ids[event]] = position
            self._bytecode.append((_OP_LEAF, len(self._leaves)))
            self._leaves.append(("s", table, len(constraint.events)))
            return
        if isinstance(constraint, (And, Or)):
            for part in constraint.parts:
                self._compile(part)
            op = _OP_AND if isinstance(constraint, And) else _OP_OR
            self._bytecode.append((op, len(constraint.parts)))
            return
        raise SpecificationError(  # pragma: no cover - future constraint kinds
            f"cannot lower {type(constraint).__name__}"
        )

    def initial(self) -> tuple[int, ...]:
        return (0,) * len(self._leaves)

    def step(self, state: tuple[int, ...], event_id: int) -> tuple[int, ...]:
        """Advance every leaf by one event (ids outside the alphabet inert)."""
        out = list(state)
        for i, leaf in enumerate(self._leaves):
            kind = leaf[0]
            if kind == "p":
                if event_id == leaf[1]:
                    out[i] = 1
            else:
                position = leaf[1][event_id] if event_id < len(leaf[1]) else -2
                if position == -2 or out[i] == _VIOLATED:
                    continue
                if out[i] == position:
                    out[i] = position + 1
                else:
                    out[i] = _VIOLATED
        return tuple(out)

    def accepting(self, state: tuple[int, ...]) -> bool:
        """Evaluate the postfix acceptance bytecode over leaf verdicts."""
        cached = self._accept_cache.get(state)
        if cached is not None:
            return cached
        stack: list[bool] = []
        for op, arg in self._bytecode:
            if op == _OP_LEAF:
                leaf = self._leaves[arg]
                if leaf[0] == "p":
                    seen = state[arg] == 1
                    stack.append(seen if leaf[2] else not seen)
                else:
                    stack.append(state[arg] == leaf[2])
            else:
                picked = stack[-arg:]
                del stack[-arg:]
                stack.append(all(picked) if op == _OP_AND else any(picked))
        verdict = all(stack)
        if len(self._accept_cache) >= 65536:
            self._accept_cache.clear()
        self._accept_cache[state] = verdict
        return verdict

    def accepts(self, sequence: tuple[str, ...]) -> bool:
        """Does the (complete) named event sequence satisfy every constraint?"""
        state = self.initial()
        ids = self.event_ids
        for event in sequence:
            event_id = ids.get(event)
            if event_id is None:
                continue  # events outside every constraint are inert
            state = self.step(state, event_id)
        return self.accepting(state)

    def accepts_ids(self, sequence) -> bool:
        """``accepts`` over event ids already in this kernel's alphabet."""
        state = self.initial()
        for event_id in sequence:
            state = self.step(state, event_id)
        return self.accepting(state)


def legal_traces_kernel(
    program: KernelProgram,
    constraints,
    max_traces: int = 200_000,
) -> frozenset[tuple[str, ...]]:
    """``{t ∈ traces(program) : t ⊨ constraints}`` via step tables.

    The filtering analogue of ``traces(Apply(C, G))``: enumerate the
    program's valid executions (pruned search) and keep those the
    constraint tables accept — no formula re-walk per trace.
    """
    tables = ConstraintKernel.build(constraints, extra_events=program.events)
    return frozenset(
        trace for trace in program.iter_traces(max_traces=max_traces)
        if tables.accepts(trace)
    )
