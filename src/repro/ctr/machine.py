"""Executable step semantics for concurrent-Horn goals.

This is the run-time half of the CTR proof theory the paper relies on: an
SLD-style *residuation* machine that executes a goal one elementary step at
a time. Proving a concurrent-Horn goal and executing it are the same
operation in CTR, and this module is that operation.

A :class:`Config` is a pair ``(goal, tokens)``: the residual goal still to
be executed, plus the set of synchronization tokens already ``send``-ed.
Steps come in two flavours:

* **event steps**, labelled with the significant event they emit;
* **silent steps** (label ``None``): ``send``/``receive`` firings, passed
  transition :class:`~repro.ctr.formulas.Test` conditions, and ``◇`` checks.

Isolation (``⊙``) is honoured by wrapping a partially-executed isolated
body in the internal :class:`Running` marker; while a ``Running`` region
exists inside a concurrent composition, only steps from within it are
offered, which is precisely "execute without interleaving".

The machine is deliberately *non-deterministic*: :meth:`Machine.successors`
returns every option. Deterministic execution strategies (the pro-active
scheduler, the run-time engine) and exhaustive search (trace enumeration,
``◇`` evaluation, the model-checking baseline) are all built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import SpecificationError
from .formulas import (
    EMPTY,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    par,
)

__all__ = ["Config", "Machine", "Running", "machine_traces", "can_complete"]


@dataclass(frozen=True, slots=True)
class Running(Goal):
    """Internal marker: an isolated region that has started executing."""

    body: Goal

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"running({self.body})"


@dataclass(frozen=True, slots=True, eq=False)
class Tail(Goal):
    """Internal marker: the suffix ``parts[start:]`` of a serial goal.

    Residuation steps through a serial composition once per event; slicing
    ``parts[1:]`` each time would make a length-n schedule Θ(n²). ``Tail``
    shares the original parts tuple and just advances an index, so a flat
    chain is executed in amortised constant time per step.

    Equality/hashing are *identity-based on the shared tuple*: within one
    machine run every ``Tail`` over the same serial node shares that
    node's parts object, so configs deduplicate exactly; across unrelated
    goals a missed merge merely costs a duplicate configuration, never
    correctness.
    """

    parts: tuple[Goal, ...]
    start: int

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tail)
            and self.parts is other.parts
            and self.start == other.start
        )

    def __hash__(self) -> int:
        return hash((id(self.parts), self.start))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "tail(" + " * ".join(str(p) for p in self.parts[self.start:]) + ")"


@dataclass(frozen=True, slots=True)
class Config:
    """A machine configuration: residual goal plus the tokens sent so far."""

    goal: Goal
    tokens: frozenset[str] = frozenset()

    def with_goal(self, goal: Goal) -> "Config":
        return Config(goal, self.tokens)


# A step is (label, successor config); label None marks a silent step.
Step = tuple[Optional[str], Config]

TestHook = Callable[[Test], bool]


def _has_running(goal: Goal) -> bool:
    if isinstance(goal, Running):
        return True
    if isinstance(goal, (Serial, Concurrent, Choice)):
        return any(_has_running(p) for p in goal.parts)
    if isinstance(goal, Tail):
        return any(_has_running(p) for p in goal.parts[goal.start:])
    if isinstance(goal, Isolated):
        return _has_running(goal.body)
    return False


def _nullable(goal: Goal) -> bool:
    """Can ``goal`` complete without taking any step at all?"""
    if isinstance(goal, Empty):
        return True
    if isinstance(goal, Choice):
        return any(_nullable(p) for p in goal.parts)
    if isinstance(goal, (Serial, Concurrent)):
        return all(_nullable(p) for p in goal.parts)
    if isinstance(goal, Tail):
        return all(_nullable(p) for p in goal.parts[goal.start:])
    if isinstance(goal, Isolated):
        return _nullable(goal.body)
    return False


class Machine:
    """Step-semantics interpreter for a single goal.

    Parameters
    ----------
    goal:
        The concurrent-Horn goal to execute. ``path`` literals are
        rejected (they belong in constraints).
    test_hook:
        Optional callable deciding transition conditions at run time. The
        default treats every :class:`Test` as passable, which is the
        static-analysis reading (sound, not complete — Section 7).
    """

    def __init__(self, goal: Goal, test_hook: TestHook | None = None):
        for node in _walk(goal):
            if isinstance(node, Path):
                raise SpecificationError("`path` cannot appear in an executable goal")
        self.goal = goal
        self.test_hook = test_hook

    # -- public API ---------------------------------------------------------

    def initial(self) -> Config:
        return Config(self.goal, frozenset())

    def steps(self, config: Config) -> list[Step]:
        """All single steps (silent and event) available from ``config``."""
        return list(self._steps(config.goal, config.tokens))

    def successors(self, config: Config) -> dict[str, set[Config]]:
        """Event-labelled successor configs, silent steps already closed over.

        For each significant event ``e`` that can occur next, returns every
        configuration reachable by firing ``e`` after some silent prefix.
        """
        result: dict[str, set[Config]] = {}
        for closed in self.silent_closure(config):
            for label, nxt in self._steps(closed.goal, closed.tokens):
                if label is not None:
                    result.setdefault(label, set()).add(nxt)
        return result

    def silent_closure(self, config: Config) -> set[Config]:
        """All configurations reachable from ``config`` via silent steps."""
        seen = {config}
        frontier = [config]
        while frontier:
            current = frontier.pop()
            for label, nxt in self._steps(current.goal, current.tokens):
                if label is None and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def is_final(self, config: Config) -> bool:
        """Can ``config`` complete using silent steps only?"""
        return any(_nullable(c.goal) or isinstance(c.goal, Empty)
                   for c in self.silent_closure(config))

    def can_complete(self, config: Config) -> bool:
        """Is there *any* full execution from ``config``? (exhaustive search)"""
        seen: set[Config] = set()
        stack = [config]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if _nullable(current.goal):
                return True
            for _label, nxt in self._steps(current.goal, current.tokens):
                if nxt not in seen:
                    stack.append(nxt)
        return False

    # -- step derivation ----------------------------------------------------

    def _steps(self, goal: Goal, tokens: frozenset[str]) -> Iterator[Step]:
        if isinstance(goal, Atom):
            yield goal.name, Config(EMPTY, tokens)
            return

        if isinstance(goal, Send):
            yield None, Config(EMPTY, tokens | {goal.token})
            return

        if isinstance(goal, Receive):
            if goal.token in tokens:
                yield None, Config(EMPTY, tokens)
            return

        if isinstance(goal, Test):
            passable = True
            if self.test_hook is not None:
                passable = self.test_hook(goal)
            if passable:
                yield None, Config(EMPTY, tokens)
            return

        if isinstance(goal, Possibility):
            # ◇T: succeed silently iff T could run to completion from here.
            # The hypothetical run may consume tokens but its effects are
            # discarded (possibility is a test, not an execution).
            if self.can_complete(Config(goal.body, tokens)):
                yield None, Config(EMPTY, tokens)
            return

        if isinstance(goal, (Empty, NegPath)):
            return

        if isinstance(goal, Isolated):
            for label, nxt in self._steps(goal.body, tokens):
                residual = nxt.goal
                wrapped = EMPTY if _is_done(residual) else Running(residual)
                yield label, Config(wrapped, nxt.tokens)
            return

        if isinstance(goal, Running):
            if _nullable(goal.body):
                # The isolated region may end here (e.g. a trailing optional
                # branch): release the isolation lock silently.
                yield None, Config(EMPTY, tokens)
            for label, nxt in self._steps(goal.body, tokens):
                residual = nxt.goal
                wrapped = EMPTY if _is_done(residual) else Running(residual)
                yield label, Config(wrapped, nxt.tokens)
            return

        if isinstance(goal, (Serial, Tail)):
            parts = goal.parts
            start = goal.start if isinstance(goal, Tail) else 0
            head = parts[start]
            for label, nxt in self._steps(head, tokens):
                yield label, Config(_residual_serial(nxt.goal, parts, start), nxt.tokens)
            if _nullable(head):
                yield from self._steps(_tail_goal(parts, start + 1), tokens)
            return

        if isinstance(goal, Concurrent):
            running = [i for i, p in enumerate(goal.parts) if _has_running(p)]
            indices = running if running else range(len(goal.parts))
            for i in indices:
                for label, nxt in self._steps(goal.parts[i], tokens):
                    others = goal.parts[:i] + goal.parts[i + 1:]
                    yield label, Config(_repar(nxt.goal, others), nxt.tokens)
            return

        if isinstance(goal, Choice):
            for part in goal.parts:
                yield from self._steps(part, tokens)
            return

        raise TypeError(f"cannot execute {type(goal).__name__}")  # pragma: no cover


def _is_done(goal: Goal) -> bool:
    return isinstance(goal, Empty)


def _tail_goal(parts: tuple[Goal, ...], start: int) -> Goal:
    """The goal ``parts[start:]`` without copying the tuple."""
    remaining = len(parts) - start
    if remaining <= 0:
        return EMPTY
    if remaining == 1:
        return parts[start]
    return Tail(parts, start)


def _residual_serial(head_residual: Goal, parts: tuple[Goal, ...], start: int) -> Goal:
    """Residual of a serial goal after its head (``parts[start]``) stepped.

    Equivalent to ``seq(head_residual, *parts[start + 1:])`` but O(1) on
    the hot path (head fully consumed) — residuation rebuilds this spine
    once per event, so the generic constructor would make a length-n run
    quadratic in both copying and hashing.
    """
    if isinstance(head_residual, Empty):
        return _tail_goal(parts, start + 1)
    if isinstance(head_residual, NegPath):
        return NEG_PATH
    rest = parts[start + 1:]
    if not rest:
        return head_residual
    if isinstance(head_residual, Serial):
        return Serial(head_residual.parts + rest)
    if isinstance(head_residual, Tail):
        return Serial(head_residual.parts[head_residual.start:] + rest)
    return Serial((head_residual,) + rest)


def _repar(part_residual: Goal, others: tuple[Goal, ...]) -> Goal:
    return par(part_residual, *others)


def _walk(goal: Goal) -> Iterator[Goal]:
    stack = [goal]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (Serial, Concurrent, Choice)):
            stack.extend(node.parts)
        elif isinstance(node, (Isolated, Possibility, Running)):
            stack.append(node.body)


def can_complete(goal: Goal, test_hook: TestHook | None = None) -> bool:
    """True iff ``goal`` has at least one full execution (machine search)."""
    machine = Machine(goal, test_hook)
    return machine.can_complete(machine.initial())


def machine_traces(goal: Goal, limit: int = 200_000) -> frozenset[tuple[str, ...]]:
    """All event traces, enumerated by exhaustive machine search.

    Cross-validates :func:`repro.ctr.traces.traces`: the two must agree on
    every unique-event goal (a property test asserts this).
    """
    machine = Machine(goal)
    out: set[tuple[str, ...]] = set()
    seen: set[tuple[tuple[str, ...], Config]] = set()
    stack: list[tuple[tuple[str, ...], Config]] = [((), machine.initial())]
    while stack:
        prefix, config = stack.pop()
        if (prefix, config) in seen:
            continue
        seen.add((prefix, config))
        if len(seen) > limit:
            from .traces import TooManyTracesError

            raise TooManyTracesError(limit)
        if _nullable(config.goal):
            out.add(prefix)
        for label, nxt in machine.steps(config):
            new_prefix = prefix if label is None else prefix + (label,)
            stack.append((new_prefix, nxt))
    return frozenset(out)
