"""Simplification of CTR goals via the tautologies of Section 5.

After the Apply transformation the intermediate goal may contain ``¬path``
literals. The paper removes them with the tautologies::

    ¬path ⊗ φ ≡ φ ⊗ ¬path ≡ ¬path
    ¬path | φ ≡ φ | ¬path ≡ ¬path
    ¬path ∨ φ ≡ φ ∨ ¬path ≡ φ

:func:`simplify` applies these bottom-up, together with a handful of
trivially-sound structural clean-ups (flattening, serial units, duplicate
choice branches, collapse of ``⊙``/``◇`` over leaves), so the result is
either a concurrent-Horn goal or the single literal ``NEG_PATH``.

Sharing-awareness: goals are hash-consed (see :mod:`repro.ctr.formulas`),
so the "tree" Apply produces is really a DAG whose shared subterms are the
same object. Each :func:`simplify` call memoises per *node*, visiting every
shared subterm once — a tree-sized pass becomes a DAG-sized one. On top of
that, simplify is idempotent, and every node it *returns* is a fixpoint;
those are remembered in a weak registry so the repeated re-simplification
Excise performs on already-normalised subgoals is O(1) per node.
"""

from __future__ import annotations

import weakref

from .formulas import (
    EMPTY,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    par,
    seq,
)

__all__ = ["simplify", "is_failure"]


def is_failure(goal: Goal) -> bool:
    """True iff ``goal`` is the non-executable transaction ``¬path``."""
    return isinstance(goal, NegPath)


# Nodes known to be simplify-fixpoints (simplify(g) is g). Weak: remembered
# only while the node is alive elsewhere. Membership is structural, which is
# exactly as strong as needed — simplify is a function of structure alone.
_FIXPOINTS: "weakref.WeakSet[Goal]" = weakref.WeakSet()

_LEAVES = (Atom, Send, Receive, Test, Path, NegPath, Empty)


def simplify(goal: Goal) -> Goal:
    """Normalise ``goal`` by propagating ``¬path`` and flattening connectives.

    The result is semantically equivalent to the input (same set of valid
    executions) and is either :data:`~repro.ctr.formulas.NEG_PATH` or free
    of ``¬path`` literals.
    """
    if isinstance(goal, _LEAVES):
        return goal
    return _simplify(goal, {})


def _simplify(goal: Goal, memo: dict[Goal, Goal]) -> Goal:
    if isinstance(goal, _LEAVES):
        return goal
    if goal in _FIXPOINTS:
        return goal
    cached = memo.get(goal)
    if cached is not None:
        return cached

    if isinstance(goal, Serial):
        result = seq(*(_simplify(p, memo) for p in goal.parts))
    elif isinstance(goal, Concurrent):
        result = par(*(_simplify(p, memo) for p in goal.parts))
    elif isinstance(goal, Choice):
        result = alt(*(_simplify(p, memo) for p in goal.parts))
    elif isinstance(goal, Isolated):
        body = _simplify(goal.body, memo)
        if isinstance(body, NegPath):
            result = NEG_PATH
        elif isinstance(body, Empty):
            result = EMPTY
        # ⊙ over a single elementary step is a no-op: nothing can interleave
        # inside one step anyway; ⊙⊙T ≡ ⊙T.
        elif isinstance(body, (Atom, Send, Receive, Test, Isolated)):
            result = body
        else:
            result = Isolated(body)
    elif isinstance(goal, Possibility):
        body = _simplify(goal.body, memo)
        if isinstance(body, NegPath):
            result = NEG_PATH
        elif isinstance(body, Empty):
            result = EMPTY
        # ◇◇T ≡ ◇T
        elif isinstance(body, Possibility):
            result = body
        else:
            result = Possibility(body)
    else:
        raise TypeError(f"cannot simplify {type(goal).__name__}")  # pragma: no cover

    memo[goal] = result
    if not isinstance(result, _LEAVES):
        try:
            _FIXPOINTS.add(result)
        except TypeError:  # pragma: no cover - non-weakrefable future node
            pass
    return result
