"""Simplification of CTR goals via the tautologies of Section 5.

After the Apply transformation the intermediate goal may contain ``¬path``
literals. The paper removes them with the tautologies::

    ¬path ⊗ φ ≡ φ ⊗ ¬path ≡ ¬path
    ¬path | φ ≡ φ | ¬path ≡ ¬path
    ¬path ∨ φ ≡ φ ∨ ¬path ≡ φ

:func:`simplify` applies these bottom-up, together with a handful of
trivially-sound structural clean-ups (flattening, serial units, duplicate
choice branches, collapse of ``⊙``/``◇`` over leaves), so the result is
either a concurrent-Horn goal or the single literal ``NEG_PATH``.
"""

from __future__ import annotations

from .formulas import (
    EMPTY,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    par,
    seq,
)

__all__ = ["simplify", "is_failure"]


def is_failure(goal: Goal) -> bool:
    """True iff ``goal`` is the non-executable transaction ``¬path``."""
    return isinstance(goal, NegPath)


def simplify(goal: Goal) -> Goal:
    """Normalise ``goal`` by propagating ``¬path`` and flattening connectives.

    The result is semantically equivalent to the input (same set of valid
    executions) and is either :data:`~repro.ctr.formulas.NEG_PATH` or free
    of ``¬path`` literals.
    """
    if isinstance(goal, (Atom, Send, Receive, Test, Path, NegPath, Empty)):
        return goal

    if isinstance(goal, Serial):
        return seq(*(simplify(p) for p in goal.parts))

    if isinstance(goal, Concurrent):
        return par(*(simplify(p) for p in goal.parts))

    if isinstance(goal, Choice):
        return alt(*(simplify(p) for p in goal.parts))

    if isinstance(goal, Isolated):
        body = simplify(goal.body)
        if isinstance(body, NegPath):
            return NEG_PATH
        if isinstance(body, Empty):
            return EMPTY
        # ⊙ over a single elementary step is a no-op: nothing can interleave
        # inside one step anyway.
        if isinstance(body, (Atom, Send, Receive, Test)):
            return body
        # ⊙⊙T ≡ ⊙T
        if isinstance(body, Isolated):
            return body
        return Isolated(body)

    if isinstance(goal, Possibility):
        body = simplify(goal.body)
        if isinstance(body, NegPath):
            return NEG_PATH
        if isinstance(body, Empty):
            return EMPTY
        # ◇◇T ≡ ◇T
        if isinstance(body, Possibility):
            return body
        return Possibility(body)

    raise TypeError(f"cannot simplify {type(goal).__name__}")  # pragma: no cover
