"""JSON-friendly serialization of goals, constraints, and rules.

Workflow specifications are data: teams store them in repositories, ship
them between services, and diff them in reviews. This module provides a
stable dictionary encoding for every CTR goal node and every CONSTR
constraint, round-tripping through ``json``::

    >>> import json
    >>> from repro.ctr.formulas import atoms
    >>> from repro.ctr.serialize import goal_from_dict, goal_to_dict
    >>> a, b = atoms("a b")
    >>> goal_from_dict(json.loads(json.dumps(goal_to_dict(a >> b)))) == (a >> b)
    True

``Test`` predicates are Python callables and are deliberately *not*
serialized — only the condition name survives, and the loader produces a
predicate-less ``Test`` (static reading). Re-attach predicates after
loading if run-time evaluation is needed.

Two goal encodings are provided. :func:`goal_to_dict` is the stable
human-readable *tree* encoding: nested dictionaries, one per occurrence,
so a shared subterm is written out once per reference. For compiled goals
— hash-consed DAGs where Theorem 5.11's ``d^N`` blow-up lives in the tree
measure — that expansion can be exponential, so
:func:`goal_to_shared_dict` encodes the *DAG* instead: a post-order node
table with integer child references, O(distinct nodes) to write and to
read. Both decoders rebuild through the interning constructors, so loaded
goals are always canonical.
"""

from __future__ import annotations

from typing import Any

from ..constraints.algebra import (
    And,
    Constraint,
    Or,
    Primitive,
    SerialConstraint,
    conj,
    disj,
)
from ..errors import SpecificationError
from .formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
    alt,
    par,
    seq,
    subgoals,
)
from .rules import Rule, RuleBase

__all__ = [
    "goal_to_dict",
    "goal_from_dict",
    "goal_to_shared_dict",
    "goal_from_shared_dict",
    "goals_to_shared_dict",
    "goals_from_shared_dict",
    "constraint_to_dict",
    "constraint_from_dict",
    "rules_to_dict",
    "rules_from_dict",
    "specification_to_dict",
    "specification_from_dict",
]


def goal_to_dict(goal: Goal) -> dict[str, Any]:
    """Encode a goal as plain dictionaries/lists/strings."""
    if isinstance(goal, Atom):
        return {"kind": "atom", "name": goal.name}
    if isinstance(goal, Send):
        return {"kind": "send", "token": goal.token}
    if isinstance(goal, Receive):
        return {"kind": "receive", "token": goal.token}
    if isinstance(goal, Test):
        return {"kind": "test", "name": goal.name}
    if isinstance(goal, Empty):
        return {"kind": "empty"}
    if isinstance(goal, Path):
        return {"kind": "path"}
    if isinstance(goal, NegPath):
        return {"kind": "neg_path"}
    if isinstance(goal, Serial):
        return {"kind": "serial", "parts": [goal_to_dict(p) for p in goal.parts]}
    if isinstance(goal, Concurrent):
        return {"kind": "concurrent", "parts": [goal_to_dict(p) for p in goal.parts]}
    if isinstance(goal, Choice):
        return {"kind": "choice", "parts": [goal_to_dict(p) for p in goal.parts]}
    if isinstance(goal, Isolated):
        return {"kind": "isolated", "body": goal_to_dict(goal.body)}
    if isinstance(goal, Possibility):
        return {"kind": "possibility", "body": goal_to_dict(goal.body)}
    from .machine import Running

    if isinstance(goal, Running):
        # Machine-internal marker: an isolated region already in progress
        # (appears in scheduler checkpoints).
        return {"kind": "running", "body": goal_to_dict(goal.body)}
    raise SpecificationError(f"cannot serialize {type(goal).__name__}")


def goal_from_dict(data: dict[str, Any]) -> Goal:
    """Decode :func:`goal_to_dict` output."""
    kind = data.get("kind")
    if kind == "atom":
        return Atom(data["name"])
    if kind == "send":
        return Send(data["token"])
    if kind == "receive":
        return Receive(data["token"])
    if kind == "test":
        return Test(data["name"])
    if kind == "empty":
        return EMPTY
    if kind == "path":
        return PATH
    if kind == "neg_path":
        return NEG_PATH
    if kind == "serial":
        return seq(*(goal_from_dict(p) for p in data["parts"]))
    if kind == "concurrent":
        return par(*(goal_from_dict(p) for p in data["parts"]))
    if kind == "choice":
        return alt(*(goal_from_dict(p) for p in data["parts"]))
    if kind == "isolated":
        return Isolated(goal_from_dict(data["body"]))
    if kind == "possibility":
        return Possibility(goal_from_dict(data["body"]))
    if kind == "running":
        from .machine import Running

        return Running(goal_from_dict(data["body"]))
    raise SpecificationError(f"unknown goal kind {kind!r}")


def _encode_shared_into(
    goal: Goal, nodes: list[dict[str, Any]], index: dict[int, int]
) -> int:
    """Append ``goal``'s distinct nodes to ``nodes`` post-order; return its index."""
    stack = [goal]
    while stack:
        node = stack[-1]
        if id(node) in index:
            stack.pop()
            continue
        children = subgoals(node)
        pending = [c for c in children if id(c) not in index]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if isinstance(node, Serial):
            encoded: dict[str, Any] = {
                "kind": "serial", "parts": [index[id(p)] for p in node.parts]
            }
        elif isinstance(node, Concurrent):
            encoded = {
                "kind": "concurrent", "parts": [index[id(p)] for p in node.parts]
            }
        elif isinstance(node, Choice):
            encoded = {
                "kind": "choice", "parts": [index[id(p)] for p in node.parts]
            }
        elif isinstance(node, Isolated):
            encoded = {"kind": "isolated", "body": index[id(node.body)]}
        elif isinstance(node, Possibility):
            encoded = {"kind": "possibility", "body": index[id(node.body)]}
        else:
            encoded = goal_to_dict(node)  # leaves share the tree encoding
        index[id(node)] = len(nodes)
        nodes.append(encoded)
    return index[id(goal)]


def goal_to_shared_dict(goal: Goal) -> dict[str, Any]:
    """Encode a goal DAG with its sharing intact.

    The result is ``{"nodes": [...], "root": i}``: ``nodes`` lists every
    *distinct* node in post-order (children before parents), with composite
    nodes referencing their parts by index into the list. A subterm shared
    by many parents is written exactly once, so the encoding is linear in
    ``dag_size`` where :func:`goal_to_dict` is linear in the (possibly
    exponentially larger) tree size.
    """
    nodes: list[dict[str, Any]] = []
    index: dict[int, int] = {}
    root = _encode_shared_into(goal, nodes, index)
    return {"nodes": nodes, "root": root}


def goals_to_shared_dict(goals: dict[str, Goal]) -> dict[str, Any]:
    """Encode several goals into *one* shared node table.

    ``{"nodes": [...], "roots": {name: i}}`` — structure shared *between*
    the goals (e.g. a compile result's ``applied`` and excised ``goal``,
    which typically overlap almost entirely) is also written only once.
    """
    nodes: list[dict[str, Any]] = []
    index: dict[int, int] = {}
    roots = {
        name: _encode_shared_into(goal, nodes, index)
        for name, goal in goals.items()
    }
    return {"nodes": nodes, "roots": roots}


def _decode_shared_nodes(entries: list[dict[str, Any]]) -> list[Goal]:
    built: list[Goal] = []
    # Post-order guarantees children precede parents, so ``built[i]`` with
    # i pointing at a not-yet-decoded node raises IndexError — malformed
    # references surface as SpecificationError rather than wrong goals.
    try:
        for entry in entries:
            kind = entry.get("kind")
            if kind == "serial":
                node: Goal = Serial(tuple(built[i] for i in entry["parts"]))
            elif kind == "concurrent":
                node = Concurrent(tuple(built[i] for i in entry["parts"]))
            elif kind == "choice":
                node = Choice(tuple(built[i] for i in entry["parts"]))
            elif kind == "isolated":
                node = Isolated(built[entry["body"]])
            elif kind == "possibility":
                node = Possibility(built[entry["body"]])
            else:
                node = goal_from_dict(entry)
            built.append(node)
    except (IndexError, TypeError, KeyError) as exc:
        raise SpecificationError(f"malformed shared goal encoding: {exc}") from exc
    return built


def goal_from_shared_dict(data: dict[str, Any]) -> Goal:
    """Decode :func:`goal_to_shared_dict` output (re-interning every node).

    Unlike :func:`goal_from_dict` (which rebuilds through the normalizing
    ``seq``/``par``/``alt`` constructors), this decoder reproduces the
    encoded structure *exactly* — the shared encoding is a faithful image
    of an existing goal, and each node index must keep denoting the same
    subterm it did at encode time.
    """
    built = _decode_shared_nodes(data["nodes"])
    try:
        return built[data["root"]]
    except (IndexError, TypeError, KeyError) as exc:
        raise SpecificationError(f"malformed shared goal encoding: {exc}") from exc


def goals_from_shared_dict(data: dict[str, Any]) -> dict[str, Goal]:
    """Decode :func:`goals_to_shared_dict` output: name → canonical goal."""
    built = _decode_shared_nodes(data["nodes"])
    try:
        return {name: built[i] for name, i in data["roots"].items()}
    except (IndexError, TypeError, KeyError) as exc:
        raise SpecificationError(f"malformed shared goal encoding: {exc}") from exc


def constraint_to_dict(constraint: Constraint) -> dict[str, Any]:
    """Encode a CONSTR constraint."""
    if isinstance(constraint, Primitive):
        return {
            "kind": "primitive",
            "event": constraint.event,
            "positive": constraint.positive,
        }
    if isinstance(constraint, SerialConstraint):
        return {"kind": "serial", "events": list(constraint.events)}
    if isinstance(constraint, And):
        return {"kind": "and", "parts": [constraint_to_dict(p) for p in constraint.parts]}
    if isinstance(constraint, Or):
        return {"kind": "or", "parts": [constraint_to_dict(p) for p in constraint.parts]}
    raise SpecificationError(f"cannot serialize {type(constraint).__name__}")


def constraint_from_dict(data: dict[str, Any]) -> Constraint:
    """Decode :func:`constraint_to_dict` output."""
    kind = data.get("kind")
    if kind == "primitive":
        return Primitive(data["event"], positive=bool(data["positive"]))
    if kind == "serial":
        return SerialConstraint(tuple(data["events"]))
    if kind == "and":
        return conj(*(constraint_from_dict(p) for p in data["parts"]))
    if kind == "or":
        return disj(*(constraint_from_dict(p) for p in data["parts"]))
    raise SpecificationError(f"unknown constraint kind {kind!r}")


def rules_to_dict(rules: RuleBase) -> dict[str, list[dict[str, Any]]]:
    """Encode a rule base as head → list of body encodings."""
    return {
        head: [goal_to_dict(body) for body in rules.bodies(head)]
        for head in sorted(rules.heads)
    }


def rules_from_dict(data: dict[str, list[dict[str, Any]]]) -> RuleBase:
    """Decode :func:`rules_to_dict` output."""
    base = RuleBase()
    for head, bodies in data.items():
        for body in bodies:
            base.add(Rule(head, goal_from_dict(body)))
    return base


def specification_to_dict(
    goal: Goal,
    constraints: list[Constraint] | tuple[Constraint, ...] = (),
    rules: RuleBase | None = None,
) -> dict[str, Any]:
    """Encode a full workflow specification."""
    out: dict[str, Any] = {
        "goal": goal_to_dict(goal),
        "constraints": [constraint_to_dict(c) for c in constraints],
    }
    if rules is not None and rules.heads:
        out["rules"] = rules_to_dict(rules)
    return out


def specification_from_dict(
    data: dict[str, Any],
) -> tuple[Goal, list[Constraint], RuleBase | None]:
    """Decode :func:`specification_to_dict` output."""
    goal = goal_from_dict(data["goal"])
    constraints = [constraint_from_dict(c) for c in data.get("constraints", [])]
    rules = rules_from_dict(data["rules"]) if "rules" in data else None
    return goal, constraints, rules
