"""Pretty printing of CTR goals.

Two surface syntaxes are provided:

* :func:`pretty` — compact ASCII syntax that round-trips through
  :mod:`repro.ctr.parser`:

  ========  ==============================
  ``*``     serial conjunction ``⊗``
  ``|``     concurrent conjunction
  ``+``     choice ``∨``
  ``[T]``   isolated execution ``⊙T``
  ``<T>``   possibility ``◇T``
  ========  ==============================

* :func:`pretty_unicode` — the paper's notation (``⊗``, ``∨``, ``⊙``, ``◇``).

Parentheses are emitted only where required by precedence
(``*`` binds tightest, then ``|``, then ``+``).
"""

from __future__ import annotations

from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)

__all__ = ["pretty", "pretty_unicode", "pretty_tree", "pretty_clipped"]

# Precedence levels: larger binds tighter.
_PREC_CHOICE = 1
_PREC_CONCUR = 2
_PREC_SERIAL = 3
_PREC_ATOM = 4


def _render(goal: Goal, ops: dict[str, str], parent_prec: int) -> str:
    if isinstance(goal, Atom):
        return goal.name
    if isinstance(goal, Send):
        return f"send({goal.token})"
    if isinstance(goal, Receive):
        return f"receive({goal.token})"
    if isinstance(goal, Test):
        return f"{goal.name}?"
    if isinstance(goal, Path):
        return ops["path"]
    if isinstance(goal, NegPath):
        return ops["neg_path"]
    if isinstance(goal, Empty):
        return ops["empty"]
    if isinstance(goal, Isolated):
        return f"[{_render(goal.body, ops, 0)}]"
    if isinstance(goal, Possibility):
        return f"<{_render(goal.body, ops, 0)}>"

    if isinstance(goal, Serial):
        prec, symbol = _PREC_SERIAL, ops["serial"]
    elif isinstance(goal, Concurrent):
        prec, symbol = _PREC_CONCUR, ops["concurrent"]
    elif isinstance(goal, Choice):
        prec, symbol = _PREC_CHOICE, ops["choice"]
    else:  # pragma: no cover - future node kinds
        raise TypeError(f"cannot pretty-print {type(goal).__name__}")

    body = symbol.join(_render(p, ops, prec) for p in goal.parts)
    if prec < parent_prec:
        return f"({body})"
    return body


_ASCII_OPS = {
    "serial": " * ",
    "concurrent": " | ",
    "choice": " + ",
    "path": "path",
    "neg_path": "fail",
    "empty": "()",
}

_UNICODE_OPS = {
    "serial": " ⊗ ",
    "concurrent": " | ",
    "choice": " ∨ ",
    "path": "path",
    "neg_path": "¬path",
    "empty": "ε",
}


def pretty(goal: Goal) -> str:
    """Compact ASCII rendering; parseable by :func:`repro.ctr.parser.parse_goal`."""
    return _render(goal, _ASCII_OPS, 0)


def pretty_unicode(goal: Goal) -> str:
    """Rendering in the paper's notation (``⊗``/``∨``/``¬path``)."""
    return _render(goal, _UNICODE_OPS, 0)


class _Budget:
    """A shrinking character allowance shared by one clipped rendering."""

    __slots__ = ("remaining",)

    def __init__(self, chars: int) -> None:
        self.remaining = chars

    def spend(self, text: str) -> bool:
        self.remaining -= len(text)
        return self.remaining >= 0


_ELLIPSIS = "…"


def _render_clipped(
    goal: Goal, parent_prec: int, depth: int, max_depth: int,
    max_parts: int, budget: _Budget,
) -> str:
    if budget.remaining <= 0:
        return _ELLIPSIS
    if isinstance(goal, (Atom, Send, Receive, Test, Path, NegPath, Empty)):
        text = _render(goal, _ASCII_OPS, parent_prec)
        budget.spend(text)
        return text
    if depth >= max_depth:
        budget.spend(_ELLIPSIS)
        return _ELLIPSIS
    if isinstance(goal, Isolated):
        return f"[{_render_clipped(goal.body, 0, depth + 1, max_depth, max_parts, budget)}]"
    if isinstance(goal, Possibility):
        return f"<{_render_clipped(goal.body, 0, depth + 1, max_depth, max_parts, budget)}>"

    if isinstance(goal, Serial):
        prec, symbol = _PREC_SERIAL, _ASCII_OPS["serial"]
    elif isinstance(goal, Concurrent):
        prec, symbol = _PREC_CONCUR, _ASCII_OPS["concurrent"]
    elif isinstance(goal, Choice):
        prec, symbol = _PREC_CHOICE, _ASCII_OPS["choice"]
    else:
        text = str(goal)  # Running/Tail and future node kinds
        budget.spend(text)
        return text

    rendered: list[str] = []
    for index, part in enumerate(goal.parts):
        if index >= max_parts or budget.remaining <= 0:
            rendered.append(f"{_ELLIPSIS}(+{len(goal.parts) - index} more)")
            break
        rendered.append(
            _render_clipped(part, prec, depth + 1, max_depth, max_parts, budget)
        )
    body = symbol.join(rendered)
    if prec < parent_prec:
        return f"({body})"
    return body


def pretty_clipped(
    goal: Goal, max_depth: int = 6, max_parts: int = 8, max_chars: int = 240
) -> str:
    """Like :func:`pretty`, but truncated past a depth/width/length budget.

    ``Goal.__repr__`` uses this: a compiled goal can be ``d^N``-tree-sized,
    and an O(tree) string build would hang the REPL the moment a debugger
    or a test failure tries to display it. Rendering cost is bounded by the
    budgets, never by the goal; elided material shows as ``…``.
    """
    text = _render_clipped(goal, 0, 0, max_depth, max_parts, _Budget(max_chars))
    if len(text) > max_chars:
        text = text[:max_chars] + _ELLIPSIS
    return text


def pretty_tree(goal: Goal, indent: str = "") -> str:
    """Multi-line tree rendering, useful for inspecting large compiled goals."""
    from .formulas import subgoals

    label = type(goal).__name__
    if isinstance(goal, Atom):
        label = f"Atom {goal.name}"
    elif isinstance(goal, Send):
        label = f"Send {goal.token}"
    elif isinstance(goal, Receive):
        label = f"Receive {goal.token}"
    elif isinstance(goal, Test):
        label = f"Test {goal.name}"
    lines = [indent + label]
    for child in subgoals(goal):
        lines.append(pretty_tree(child, indent + "  "))
    return "\n".join(lines)
