"""Pretty printing of CTR goals.

Two surface syntaxes are provided:

* :func:`pretty` — compact ASCII syntax that round-trips through
  :mod:`repro.ctr.parser`:

  ========  ==============================
  ``*``     serial conjunction ``⊗``
  ``|``     concurrent conjunction
  ``+``     choice ``∨``
  ``[T]``   isolated execution ``⊙T``
  ``<T>``   possibility ``◇T``
  ========  ==============================

* :func:`pretty_unicode` — the paper's notation (``⊗``, ``∨``, ``⊙``, ``◇``).

Parentheses are emitted only where required by precedence
(``*`` binds tightest, then ``|``, then ``+``).
"""

from __future__ import annotations

from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)

__all__ = ["pretty", "pretty_unicode", "pretty_tree"]

# Precedence levels: larger binds tighter.
_PREC_CHOICE = 1
_PREC_CONCUR = 2
_PREC_SERIAL = 3
_PREC_ATOM = 4


def _render(goal: Goal, ops: dict[str, str], parent_prec: int) -> str:
    if isinstance(goal, Atom):
        return goal.name
    if isinstance(goal, Send):
        return f"send({goal.token})"
    if isinstance(goal, Receive):
        return f"receive({goal.token})"
    if isinstance(goal, Test):
        return f"{goal.name}?"
    if isinstance(goal, Path):
        return ops["path"]
    if isinstance(goal, NegPath):
        return ops["neg_path"]
    if isinstance(goal, Empty):
        return ops["empty"]
    if isinstance(goal, Isolated):
        return f"[{_render(goal.body, ops, 0)}]"
    if isinstance(goal, Possibility):
        return f"<{_render(goal.body, ops, 0)}>"

    if isinstance(goal, Serial):
        prec, symbol = _PREC_SERIAL, ops["serial"]
    elif isinstance(goal, Concurrent):
        prec, symbol = _PREC_CONCUR, ops["concurrent"]
    elif isinstance(goal, Choice):
        prec, symbol = _PREC_CHOICE, ops["choice"]
    else:  # pragma: no cover - future node kinds
        raise TypeError(f"cannot pretty-print {type(goal).__name__}")

    body = symbol.join(_render(p, ops, prec) for p in goal.parts)
    if prec < parent_prec:
        return f"({body})"
    return body


_ASCII_OPS = {
    "serial": " * ",
    "concurrent": " | ",
    "choice": " + ",
    "path": "path",
    "neg_path": "fail",
    "empty": "()",
}

_UNICODE_OPS = {
    "serial": " ⊗ ",
    "concurrent": " | ",
    "choice": " ∨ ",
    "path": "path",
    "neg_path": "¬path",
    "empty": "ε",
}


def pretty(goal: Goal) -> str:
    """Compact ASCII rendering; parseable by :func:`repro.ctr.parser.parse_goal`."""
    return _render(goal, _ASCII_OPS, 0)


def pretty_unicode(goal: Goal) -> str:
    """Rendering in the paper's notation (``⊗``/``∨``/``¬path``)."""
    return _render(goal, _UNICODE_OPS, 0)


def pretty_tree(goal: Goal, indent: str = "") -> str:
    """Multi-line tree rendering, useful for inspecting large compiled goals."""
    from .formulas import subgoals

    label = type(goal).__name__
    if isinstance(goal, Atom):
        label = f"Atom {goal.name}"
    elif isinstance(goal, Send):
        label = f"Send {goal.token}"
    elif isinstance(goal, Receive):
        label = f"Receive {goal.token}"
    elif isinstance(goal, Test):
        label = f"Test {goal.name}"
    lines = [indent + label]
    for child in subgoals(goal):
        lines.append(pretty_tree(child, indent + "  "))
    return "\n".join(lines)
