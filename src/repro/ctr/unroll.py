"""Loops and iteration via bounded unrolling (Section 7, "Loops").

The paper: *"Loops in control flow graph can be expressed using recursive
CTR rules. Our techniques assume the unique-event property for workflow
graphs. Hence this property has to be relaxed to handle workflows with
loops."* — and Section 3 observes that *"we can always rename different
occurrences of the same type of event."*

This module implements exactly that renaming discipline, restoring the
unique-event property for loops with a known iteration bound:

* :func:`unroll` — takes a (possibly recursive) list of rules and a bound
  ``k``, and produces a **non-recursive** :class:`~repro.ctr.rules.RuleBase`
  where each recursive head ``h`` is expanded into levels ``h#k … h#0``.
  A recursive reference at level ``i`` becomes a reference to level
  ``i-1``; at level 0 the recursive alternatives are pruned (a rule set
  with no base case is rejected). Only the events that can *co-occur with
  a recursive descent* — and hence could repeat — are renamed, as
  ``e#1`` for the outermost iteration, ``e#2`` for the next, and so on;
  exit-branch events keep their names (they occur at most once anyway,
  on mutually exclusive alternatives).
* :func:`bounded_loop` — the common "repeat a body up to k times, then
  exit" pattern as a direct goal constructor.
* :func:`occurrence_names` — the renamed instances of an event, so
  constraints can quantify over iterations (e.g. "some retry must
  succeed": ``disj(*map(must, occurrence_names('succeed', k)))``).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import SpecificationError
from .formulas import (
    EMPTY,
    NEG_PATH,
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    NegPath,
    Possibility,
    Serial,
    alt,
    event_names,
    par,
    seq,
)
from .rules import Rule, RuleBase
from .simplify import simplify

__all__ = ["unroll", "bounded_loop", "occurrence_names", "recursive_heads"]

_SEPARATOR = "#"


def occurrence_names(event: str, bound: int) -> list[str]:
    """The per-iteration instance names of ``event`` after unrolling."""
    return [f"{event}{_SEPARATOR}{i}" for i in range(1, bound + 1)]


def recursive_heads(rules: Iterable[Rule]) -> frozenset[str]:
    """Heads that participate in a recursion cycle (incl. self-recursion)."""
    bodies: dict[str, list[Goal]] = {}
    for rule in rules:
        bodies.setdefault(rule.head, []).append(rule.body)

    def references(body: Goal) -> set[str]:
        from .formulas import walk

        return {n.name for n in walk(body) if isinstance(n, Atom) and n.name in bodies}

    reach: dict[str, set[str]] = {
        head: set().union(*(references(b) for b in defs)) if defs else set()
        for head, defs in bodies.items()
    }
    changed = True
    while changed:
        changed = False
        for head, targets in reach.items():
            expanded = set(targets)
            for target in targets:
                expanded |= reach.get(target, set())
            if expanded != targets:
                reach[head] = expanded
                changed = True
    return frozenset(head for head, targets in reach.items() if head in targets)


def unroll(rules: Iterable[Rule], bound: int) -> RuleBase:
    """Expand recursive rules into a non-recursive, unique-event rule base.

    Non-recursive rules pass through unchanged. For each recursive head
    ``h``, levels ``h#bound … h#0`` are generated and ``h`` itself is
    aliased to the top level, so existing goals mentioning ``h`` run at
    most ``bound`` recursive descents.
    """
    if bound < 0:
        raise SpecificationError("unroll bound must be >= 0")
    rules = list(rules)
    loops = recursive_heads(rules)
    bodies: dict[str, list[Goal]] = {}
    for rule in rules:
        bodies.setdefault(rule.head, []).append(rule.body)

    out = RuleBase()
    for head, defs in bodies.items():
        if head not in loops:
            for body in defs:
                out.add(Rule(head, body))
            continue
        rename_sets = [_cooccur_with_recursion(body, loops) for body in defs]
        for level in range(bound + 1):
            iteration = bound - level + 1
            expanded = alt(
                *(
                    simplify(_instantiate(body, loops, level, renames, iteration))
                    for body, renames in zip(defs, rename_sets)
                )
            )
            # A level may legitimately be ¬path (e.g. a head of a mutual
            # recursion with no base case of its own, which terminates
            # through its cycle partner); dead levels are pruned when the
            # referencing level expands.
            out.add(Rule(_leveled(head, level), expanded))
        out.add(Rule(head, Atom(_leveled(head, bound))))

    for head in loops:
        if isinstance(simplify(out.expand(Atom(head))), NegPath):
            raise SpecificationError(
                f"recursive rule {head!r} cannot terminate within {bound} "
                "unrollings: no base case is reachable"
            )
    return out


def _leveled(head: str, level: int) -> str:
    return f"{head}{_SEPARATOR}{level}"


def _cooccur_with_recursion(body: Goal, loops: frozenset[str]) -> frozenset[str]:
    """Events that may occur in an execution that also takes a recursive step.

    These are precisely the events that can repeat across iterations and
    must be renamed per level; events exclusive with the recursion (e.g.
    on the exit alternative) occur at most once per execution and keep
    their names.
    """

    def analyse(node: Goal) -> tuple[frozenset[str], bool, frozenset[str]]:
        """(possible events, recursion possible, events co-occurring with it)."""
        if isinstance(node, Atom):
            if node.name in loops:
                return frozenset(), True, frozenset()
            return frozenset((node.name,)), False, frozenset()
        if isinstance(node, Possibility):
            return frozenset(), False, frozenset()  # hypothetical
        if isinstance(node, Isolated):
            return analyse(node.body)
        if isinstance(node, Choice):
            events: frozenset[str] = frozenset()
            rec = False
            cooccur: frozenset[str] = frozenset()
            for part in node.parts:
                part_events, part_rec, part_cooccur = analyse(part)
                events |= part_events
                rec = rec or part_rec
                cooccur |= part_cooccur
            return events, rec, cooccur
        if isinstance(node, (Serial, Concurrent)):
            results = [analyse(part) for part in node.parts]
            events = frozenset().union(*(r[0] for r in results))
            rec = any(r[1] for r in results)
            cooccur = frozenset().union(*(r[2] for r in results))
            # Every part executes: an event in part i co-occurs with a
            # recursive step available in any *other* part.
            for i, (part_events, _pr, _pc) in enumerate(results):
                if any(r[1] for j, r in enumerate(results) if j != i):
                    cooccur |= part_events
            return events, rec, cooccur
        return frozenset(), False, frozenset()

    _events, _rec, cooccur = analyse(body)
    return cooccur


def _instantiate(
    body: Goal,
    loops: frozenset[str],
    level: int,
    renames: frozenset[str],
    iteration: int,
) -> Goal:
    """Rewrite one body for unrolling ``level`` (iteration index from outside).

    Recursive references drop a level (or die at level 0); events in
    ``renames`` get the iteration suffix so the full expansion is
    unique-event.
    """

    def rewrite(node: Goal) -> Goal:
        if isinstance(node, Atom):
            if node.name in loops:
                if level == 0:
                    return NEG_PATH
                return Atom(_leveled(node.name, level - 1))
            if node.name in renames:
                return Atom(f"{node.name}{_SEPARATOR}{iteration}")
            return node
        if isinstance(node, Serial):
            return seq(*(rewrite(p) for p in node.parts))
        if isinstance(node, Concurrent):
            return par(*(rewrite(p) for p in node.parts))
        if isinstance(node, Choice):
            return alt(*(rewrite(p) for p in node.parts))
        if isinstance(node, Isolated):
            return Isolated(rewrite(node.body))
        if isinstance(node, Possibility):
            return Possibility(rewrite(node.body))
        return node

    return rewrite(body)


def bounded_loop(body: Goal, bound: int, exit_goal: Goal = EMPTY) -> Goal:
    """"Repeat ``body`` zero to ``bound`` times, then ``exit_goal``".

    Each iteration's events are renamed ``e#i`` (the first iteration gets
    index 1), so the result is unique-event whenever ``body`` and
    ``exit_goal`` are over disjoint vocabularies.

    >>> from repro.ctr.formulas import Atom
    >>> from repro.ctr.traces import traces
    >>> sorted(traces(bounded_loop(Atom("try"), 2, Atom("done"))))
    [('done',), ('try#1', 'done'), ('try#1', 'try#2', 'done')]
    """
    if bound < 0:
        raise SpecificationError("loop bound must be >= 0")
    all_events = event_names(body)
    result = exit_goal
    for iteration in range(bound, 0, -1):
        instance = _instantiate(body, frozenset(), 1, all_events, iteration)
        result = alt(exit_goal, seq(instance, result))
    return simplify(result)
