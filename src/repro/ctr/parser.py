"""A small textual syntax for CTR goals.

The grammar matches the output of :func:`repro.ctr.pretty.pretty`, so goals
round-trip through text::

    goal    := choice
    choice  := concur ('+' concur)*          # ∨, lowest precedence
    concur  := serial ('|' serial)*          # concurrent conjunction
    serial  := unary ('*' unary)*            # ⊗, highest precedence
    unary   := '[' goal ']'                  # ⊙ isolated
             | '<' goal '>'                  # ◇ possibility
             | '(' goal ')'   |   '()'       # grouping / the empty goal
             | 'send' '(' NAME ')'
             | 'receive' '(' NAME ')'
             | NAME '?'                      # transition condition
             | 'path' | 'fail'
             | NAME                          # activity / event atom

Example::

    >>> from repro.ctr.parser import parse_goal
    >>> from repro.ctr.pretty import pretty
    >>> pretty(parse_goal("a * (b + c | d)"))
    'a * (b + (c | d))'
"""

from __future__ import annotations

import re
from typing import NamedTuple

from ..errors import ParseError
from .formulas import (
    EMPTY,
    NEG_PATH,
    PATH,
    Atom,
    Goal,
    Isolated,
    Possibility,
    Receive,
    Send,
    Test,
    alt,
    par,
    seq,
)

__all__ = ["parse_goal"]


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op>[*|+\[\]<>()?])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        if match.lastgroup != "ws":
            tokens.append(_Token(match.lastgroup, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.pos)
        return token

    # -- grammar -------------------------------------------------------------

    def goal(self) -> Goal:
        return self.choice()

    def choice(self) -> Goal:
        parts = [self.concur()]
        while (token := self.peek()) is not None and token.text == "+":
            self.next()
            parts.append(self.concur())
        return alt(*parts) if len(parts) > 1 else parts[0]

    def concur(self) -> Goal:
        parts = [self.serial()]
        while (token := self.peek()) is not None and token.text == "|":
            self.next()
            parts.append(self.serial())
        return par(*parts) if len(parts) > 1 else parts[0]

    def serial(self) -> Goal:
        parts = [self.unary()]
        while (token := self.peek()) is not None and token.text == "*":
            self.next()
            parts.append(self.unary())
        return seq(*parts) if len(parts) > 1 else parts[0]

    def unary(self) -> Goal:
        token = self.next()
        if token.text == "[":
            body = self.goal()
            self.expect("]")
            return Isolated(body)
        if token.text == "<":
            body = self.goal()
            self.expect(">")
            return Possibility(body)
        if token.text == "(":
            nxt = self.peek()
            if nxt is not None and nxt.text == ")":
                self.next()
                return EMPTY
            body = self.goal()
            self.expect(")")
            return body
        if token.kind == "name":
            return self._named(token)
        raise ParseError(f"unexpected token {token.text!r}", token.pos)

    def _named(self, token: _Token) -> Goal:
        if token.text == "path":
            return PATH
        if token.text == "fail":
            return NEG_PATH
        if token.text in ("send", "receive"):
            # Only a communication primitive when followed by "(token)";
            # otherwise it is an ordinary activity named send/receive.
            following = self.peek()
            if following is not None and following.text == "(":
                self.next()
                arg = self.next()
                if arg.kind != "name":
                    raise ParseError("expected a token name", arg.pos)
                self.expect(")")
                return Send(arg.text) if token.text == "send" else Receive(arg.text)
        nxt = self.peek()
        if nxt is not None and nxt.text == "?":
            self.next()
            return Test(token.text)
        return Atom(token.text)


def parse_goal(text: str) -> Goal:
    """Parse the textual goal syntax described in the module docstring."""
    parser = _Parser(text)
    goal = parser.goal()
    trailing = parser.peek()
    if trailing is not None:
        raise ParseError(f"trailing input {trailing.text!r}", trailing.pos)
    return goal
