"""Abstract syntax of the concurrent-Horn fragment of Concurrent Transaction Logic.

This module defines the formula AST used throughout the library. It covers
exactly the fragment the paper uses to represent workflows (Section 2):

* :class:`Atom` — a workflow activity or significant event (an elementary
  update in CTR terms);
* :class:`Serial` — serial conjunction ``⊗`` ("execute left, then right");
* :class:`Concurrent` — concurrent conjunction ``|`` (interleaved execution);
* :class:`Choice` — classical disjunction ``∨`` (non-deterministic choice,
  the "OR" nodes of control flow graphs);
* :class:`Isolated` — the modality ``⊙`` (execute without interleaving);
* :class:`Possibility` — the modality ``◇`` (test executability, consume
  nothing);
* :class:`Send` / :class:`Receive` — the communication primitives used by
  the ``sync`` transformation (Definition 5.3);
* :class:`Test` — a transition condition attached to a control-flow arc
  (a state query; evaluated by the run-time engine, ignored by the static
  trace semantics, which is exactly the paper's soundness caveat in §7);
* :data:`PATH` and :data:`NEG_PATH` — the CTR analogues of *true on any
  path* and *false*;
* :data:`EMPTY` — the unit of serial conjunction (the paper's ``state``
  proposition, true precisely on paths of length 1, i.e. "do nothing").

Formulas are immutable and hashable, so they can be shared, memoised, and
used as dictionary keys. The constructor helpers :func:`seq`, :func:`par`
and :func:`alt` perform light structural normalisation (flattening nested
connectives of the same kind, dropping serial units, unwrapping singletons);
deeper simplification — in particular the ``¬path`` absorption tautologies
of Section 5 — lives in :mod:`repro.ctr.simplify`.

A small operator DSL makes specifications readable::

    a, b, c = atoms("a b c")
    goal = a >> (b | c)          # a ⊗ (b | c)
    goal = a >> (b + c)          # a ⊗ (b ∨ c)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "Goal",
    "Atom",
    "Send",
    "Receive",
    "Test",
    "Serial",
    "Concurrent",
    "Choice",
    "Isolated",
    "Possibility",
    "Path",
    "NegPath",
    "Empty",
    "PATH",
    "NEG_PATH",
    "EMPTY",
    "atom",
    "atoms",
    "seq",
    "par",
    "alt",
    "goal_size",
    "event_names",
    "subgoals",
    "walk",
    "is_concurrent_horn",
]


class Goal:
    """Base class of all CTR goal formulas.

    Supports an operator DSL:

    * ``g >> h`` builds the serial conjunction ``g ⊗ h``;
    * ``g | h`` builds the concurrent conjunction ``g | h``;
    * ``g + h`` builds the choice ``g ∨ h``.
    """

    __slots__ = ()

    def __rshift__(self, other: "Goal") -> "Goal":
        return seq(self, other)

    def __or__(self, other: "Goal") -> "Goal":
        return par(self, other)

    def __add__(self, other: "Goal") -> "Goal":
        return alt(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .pretty import pretty

        return f"<{type(self).__name__} {pretty(self)}>"


@dataclass(frozen=True, slots=True)
class Atom(Goal):
    """A workflow activity / significant event.

    In CTR terms this is a variable-free atomic formula denoting an
    elementary update. Under assumption (2) of the paper, significant
    events are elementary updates that apply in every state (they merely
    append a record to the system log), so an :class:`Atom` is always
    executable and emits its name into the execution trace.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("atom name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Send(Goal):
    """``send(token)`` — emit a synchronization token (Definition 5.3).

    Always executable; records the token so that the matching
    :class:`Receive` becomes enabled. Invisible in event traces.
    """

    token: str

    def __str__(self) -> str:
        return f"send({self.token})"


@dataclass(frozen=True, slots=True)
class Receive(Goal):
    """``receive(token)`` — block until the matching token has been sent.

    ``receive(t)`` is true iff ``send(t)`` has previously executed; this is
    how the ``sync`` transformation serialises two events that live in
    different concurrent branches. Invisible in event traces.
    """

    token: str

    def __str__(self) -> str:
        return f"receive({self.token})"


@dataclass(frozen=True, slots=True)
class Test(Goal):
    """A transition condition on a control-flow arc.

    ``Test`` queries the current database state and succeeds without
    changing it (a path of length 1 in CTR terms). The optional
    ``predicate`` is consulted by the run-time engine
    (:mod:`repro.core.engine`); static analysis treats a test as always
    passable, which makes compilation *sound but not complete* for graphs
    with transition conditions — the caveat of Section 7 of the paper.

    The predicate is excluded from equality/hashing: two tests with the
    same name are the same condition.
    """

    # Not a test-case class, despite the name (pytest collection hint).
    __test__ = False

    name: str
    predicate: Optional[Callable[..., bool]] = field(
        default=None, compare=False, hash=False, repr=False
    )

    def __str__(self) -> str:
        return f"{self.name}?"


class _CachesHash:
    """Mixin: lazily cache the structural hash (see the composite classes).

    Residuation rebuilds long serial goals once per execution step; without
    caching, every set-membership test re-hashes the whole subtree and a
    length-n schedule costs Θ(n²) in hashing alone.
    """

    __slots__ = ()

    def __hash__(self) -> int:
        h = self._hash  # type: ignore[attr-defined]
        if h == -1:
            h = hash((type(self).__name__, self.parts))  # type: ignore[attr-defined]
            if h == -1:
                h = -2
            object.__setattr__(self, "_hash", h)
        return h


@dataclass(frozen=True, slots=True)
class Serial(_CachesHash, Goal):
    """Serial conjunction ``T₁ ⊗ T₂ ⊗ … ⊗ Tₙ`` — execute parts in order."""

    parts: tuple[Goal, ...]
    _hash: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Serial needs at least two parts; use seq() to build")

    __hash__ = _CachesHash.__hash__


@dataclass(frozen=True, slots=True)
class Concurrent(_CachesHash, Goal):
    """Concurrent conjunction ``T₁ | T₂ | … | Tₙ`` — interleave parts."""

    parts: tuple[Goal, ...]
    _hash: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concurrent needs at least two parts; use par() to build")

    __hash__ = _CachesHash.__hash__


@dataclass(frozen=True, slots=True)
class Choice(_CachesHash, Goal):
    """Disjunction ``T₁ ∨ T₂ ∨ … ∨ Tₙ`` — execute exactly one part."""

    parts: tuple[Goal, ...]
    _hash: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Choice needs at least two parts; use alt() to build")

    __hash__ = _CachesHash.__hash__


@dataclass(frozen=True, slots=True)
class Isolated(Goal):
    """``⊙ T`` — execute ``T`` without interleaving with concurrent activity."""

    body: Goal

    def __str__(self) -> str:
        return f"isolated({self.body})"


@dataclass(frozen=True, slots=True)
class Possibility(Goal):
    """``◇ T`` — succeed iff ``T`` *could* execute here; consume nothing.

    Events inside a possibility test are hypothetical: they do not occur in
    the actual execution, hence do not count for the unique-event property
    nor for temporal constraints (see DESIGN.md, "Semantic choices").
    """

    body: Goal

    def __str__(self) -> str:
        return f"possible({self.body})"


@dataclass(frozen=True, slots=True)
class Path(Goal):
    """The proposition ``path`` — true on every execution path."""

    def __str__(self) -> str:
        return "path"


@dataclass(frozen=True, slots=True)
class NegPath(Goal):
    """``¬path`` — the non-executable transaction, CTR's analogue of false."""

    def __str__(self) -> str:
        return "neg_path"


@dataclass(frozen=True, slots=True)
class Empty(Goal):
    """The unit of ``⊗``: the paper's ``state`` proposition ("do nothing")."""

    def __str__(self) -> str:
        return "()"


PATH = Path()
NEG_PATH = NegPath()
EMPTY = Empty()


def atom(name: str) -> Atom:
    """Build a single activity/event atom."""
    return Atom(name)


def atoms(names: str | Iterable[str]) -> tuple[Atom, ...]:
    """Build several atoms at once.

    Accepts either a whitespace/comma separated string or an iterable of
    names::

        a, b, c = atoms("a b c")
    """
    if isinstance(names, str):
        names = names.replace(",", " ").split()
    return tuple(Atom(n) for n in names)


def _flatten(kind: type, parts: Iterable[Goal]) -> Iterator[Goal]:
    for part in parts:
        if isinstance(part, kind):
            yield from part.parts  # type: ignore[attr-defined]
        else:
            yield part


def seq(*parts: Goal) -> Goal:
    """Serial conjunction of ``parts``, flattened, with units removed.

    ``seq()`` is :data:`EMPTY`; ``seq(g)`` is ``g``. A ``NEG_PATH`` part
    absorbs the whole composition (``¬path ⊗ φ ≡ ¬path``).
    """
    flat = [p for p in _flatten(Serial, parts) if p is not EMPTY and not isinstance(p, Empty)]
    if any(isinstance(p, NegPath) for p in flat):
        return NEG_PATH
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Serial(tuple(flat))


def par(*parts: Goal) -> Goal:
    """Concurrent conjunction of ``parts``, flattened, with units removed."""
    flat = [p for p in _flatten(Concurrent, parts) if p is not EMPTY and not isinstance(p, Empty)]
    if any(isinstance(p, NegPath) for p in flat):
        return NEG_PATH
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Concurrent(tuple(flat))


def alt(*parts: Goal) -> Goal:
    """Choice between ``parts``, flattened and de-duplicated.

    ``NEG_PATH`` alternatives are dropped (``¬path ∨ φ ≡ φ``); if every
    alternative is ``NEG_PATH`` the result is ``NEG_PATH``.
    """
    flat: list[Goal] = []
    seen: set[Goal] = set()
    for p in _flatten(Choice, parts):
        if isinstance(p, NegPath):
            continue
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        return NEG_PATH
    if len(flat) == 1:
        return flat[0]
    return Choice(tuple(flat))


def subgoals(goal: Goal) -> tuple[Goal, ...]:
    """Immediate children of ``goal`` (empty for leaves)."""
    if isinstance(goal, (Serial, Concurrent, Choice)):
        return goal.parts
    if isinstance(goal, (Isolated, Possibility)):
        return (goal.body,)
    return ()


def walk(goal: Goal) -> Iterator[Goal]:
    """Pre-order traversal of every node of ``goal`` (including itself)."""
    stack = [goal]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(subgoals(node)))


def goal_size(goal: Goal) -> int:
    """Number of AST nodes — the measure ``|G|`` of Theorem 5.11."""
    return sum(1 for _ in walk(goal))


def event_names(goal: Goal, include_hypothetical: bool = False) -> frozenset[str]:
    """Names of the significant events that may *occur* in an execution.

    ``Send``/``Receive``/``Test`` are not significant events. Events under a
    ``Possibility`` test are hypothetical and excluded unless
    ``include_hypothetical`` is set.
    """
    names: set[str] = set()

    def visit(node: Goal) -> None:
        if isinstance(node, Atom):
            names.add(node.name)
        elif isinstance(node, Possibility):
            if include_hypothetical:
                visit(node.body)
        else:
            for child in subgoals(node):
                visit(child)

    visit(goal)
    return frozenset(names)


def is_concurrent_horn(goal: Goal) -> bool:
    """True iff ``goal`` lies in the concurrent-Horn fragment (Section 2).

    Concurrent-Horn goals are built from atomic formulas with ``⊗``, ``|``,
    ``∨``, ``⊙`` and ``◇``. ``¬path`` is *not* concurrent-Horn (the paper
    simplifies it away after Apply); ``path`` is not either, because it is
    defined with negation.
    """
    for node in walk(goal):
        if isinstance(node, (Path, NegPath)):
            return False
        if not isinstance(
            node,
            (Atom, Send, Receive, Test, Empty, Serial, Concurrent, Choice, Isolated, Possibility),
        ):
            return False
    return True
