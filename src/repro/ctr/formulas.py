"""Abstract syntax of the concurrent-Horn fragment of Concurrent Transaction Logic.

This module defines the formula AST used throughout the library. It covers
exactly the fragment the paper uses to represent workflows (Section 2):

* :class:`Atom` — a workflow activity or significant event (an elementary
  update in CTR terms);
* :class:`Serial` — serial conjunction ``⊗`` ("execute left, then right");
* :class:`Concurrent` — concurrent conjunction ``|`` (interleaved execution);
* :class:`Choice` — classical disjunction ``∨`` (non-deterministic choice,
  the "OR" nodes of control flow graphs);
* :class:`Isolated` — the modality ``⊙`` (execute without interleaving);
* :class:`Possibility` — the modality ``◇`` (test executability, consume
  nothing);
* :class:`Send` / :class:`Receive` — the communication primitives used by
  the ``sync`` transformation (Definition 5.3);
* :class:`Test` — a transition condition attached to a control-flow arc
  (a state query; evaluated by the run-time engine, ignored by the static
  trace semantics, which is exactly the paper's soundness caveat in §7);
* :data:`PATH` and :data:`NEG_PATH` — the CTR analogues of *true on any
  path* and *false*;
* :data:`EMPTY` — the unit of serial conjunction (the paper's ``state``
  proposition, true precisely on paths of length 1, i.e. "do nothing").

Formulas are immutable, hashable — and **hash-consed**: constructing a node
that is structurally equal to a live one returns *the same object* (a
weak-value intern table keyed by the structural identity keeps canonical
nodes alive only as long as someone references them). Hash-consing is what
tames the ``d^N`` factor of Theorem 5.11 in practice: the ``C₁ ∨ C₂`` case
of Apply duplicates the goal, but the duplicates are structurally identical,
so with interning they are *shared DAG nodes* rather than independent
trees, structural equality on the hot path is pointer equality, and every
downstream pass (simplify, Apply itself, Excise, the size metrics) can
memoise per shared node and visit it once. :func:`goal_size` still reports
the paper's tree measure ``|G|``; :func:`dag_size` reports the number of
*distinct* nodes actually allocated, and their ratio is the sharing factor
the benchmarks gate on.

Interning can be disabled (e.g. to measure its effect) with
:func:`set_interning` or the :func:`interning` context manager; semantics
never change — equality remains structural either way, canonical nodes just
stop being deduplicated.

The constructor helpers :func:`seq`, :func:`par` and :func:`alt` perform
light structural normalisation (flattening nested connectives of the same
kind, dropping serial units, unwrapping singletons); deeper simplification —
in particular the ``¬path`` absorption tautologies of Section 5 — lives in
:mod:`repro.ctr.simplify`.

A small operator DSL makes specifications readable::

    a, b, c = atoms("a b c")
    goal = a >> (b | c)          # a ⊗ (b | c)
    goal = a >> (b + c)          # a ⊗ (b ∨ c)
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import FrozenInstanceError
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "Goal",
    "Atom",
    "Send",
    "Receive",
    "Test",
    "Serial",
    "Concurrent",
    "Choice",
    "Isolated",
    "Possibility",
    "Path",
    "NegPath",
    "Empty",
    "PATH",
    "NEG_PATH",
    "EMPTY",
    "atom",
    "atoms",
    "seq",
    "par",
    "alt",
    "goal_size",
    "dag_size",
    "sharing_ratio",
    "event_names",
    "subgoals",
    "walk",
    "walk_unique",
    "is_concurrent_horn",
    "set_interning",
    "interning_enabled",
    "interning",
    "intern_table_size",
]


# -- the intern table ----------------------------------------------------------
#
# Maps a structural key (class, field values) to the canonical live node.
# Weak values: a canonical node is retired as soon as nothing else
# references it, so the table never pins memory. Keys hash in O(1) because
# every child node caches its own structural hash.

_INTERN: "weakref.WeakValueDictionary[tuple, Goal]" = weakref.WeakValueDictionary()
_INTERNING: bool = True


def interning_enabled() -> bool:
    """Is hash-consing of newly constructed nodes currently on?"""
    return _INTERNING


def set_interning(enabled: bool) -> bool:
    """Turn hash-consing on/off; returns the previous setting.

    Disabling only affects *future* constructions (existing canonical nodes
    stay shared); structural equality is unaffected either way. Meant for
    benchmarks and tests that measure the effect of sharing.
    """
    global _INTERNING
    previous = _INTERNING
    _INTERNING = bool(enabled)
    return previous


@contextmanager
def interning(enabled: bool = True):
    """Context manager form of :func:`set_interning`."""
    previous = set_interning(enabled)
    try:
        yield
    finally:
        set_interning(previous)


def intern_table_size() -> int:
    """Number of canonical nodes currently alive in the intern table."""
    return len(_INTERN)


class Goal:
    """Base class of all CTR goal formulas.

    Supports an operator DSL:

    * ``g >> h`` builds the serial conjunction ``g ⊗ h``;
    * ``g | h`` builds the concurrent conjunction ``g | h``;
    * ``g + h`` builds the choice ``g ∨ h``.
    """

    __slots__ = ()

    def __rshift__(self, other: "Goal") -> "Goal":
        return seq(self, other)

    def __or__(self, other: "Goal") -> "Goal":
        return par(self, other)

    def __add__(self, other: "Goal") -> "Goal":
        return alt(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .pretty import pretty_clipped

        return f"<{type(self).__name__} {pretty_clipped(self)}>"


def _frozen_setattr(self, name, value):  # pragma: no cover - error path
    raise FrozenInstanceError(f"cannot assign to field {name!r}")


def _frozen_delattr(self, name):  # pragma: no cover - error path
    raise FrozenInstanceError(f"cannot delete field {name!r}")


class _Node(Goal):
    """Shared machinery of the concrete formula classes.

    Instances are frozen (attribute writes raise), weak-referenceable (for
    the intern table and the pass-level memo caches), cache their structural
    hash, and re-intern on unpickling/copy. Subclasses define ``_FIELDS``
    (the structural key, in order) and set attributes via
    ``object.__setattr__`` inside ``__new__``.
    """

    __slots__ = ()
    _FIELDS: tuple[str, ...] = ()

    __setattr__ = _frozen_setattr
    __delattr__ = _frozen_delattr

    def _key(self) -> tuple:
        return tuple(getattr(self, f) for f in self._FIELDS)

    def __eq__(self, other: object) -> bool:
        # With interning on, structurally equal live nodes are the same
        # object, so the identity check is the whole comparison. Without
        # interning (``interning(False)``) equality must stay *structural*
        # — sets, dicts, and the pass-level caches all rely on it — and it
        # must not recurse through Python frames: structurally equal goals
        # a few hundred nodes deep would otherwise raise RecursionError.
        if self is other:
            return True
        if type(other) is not type(self):
            return NotImplemented
        return _structural_eq(self, other)

    def __hash__(self) -> int:
        h = self._hash
        if h == -1:
            h = _structural_hash(self)
        return h

    # Nodes are immutable: copies are the object itself, and pickling
    # round-trips through the constructor so loads re-intern.
    def __copy__(self) -> "_Node":
        return self

    def __deepcopy__(self, memo) -> "_Node":
        return self

    def __getnewargs__(self) -> tuple:
        return self._key()

    def __getstate__(self):
        return None


def _structural_eq(a: "_Node", b: "_Node") -> bool:
    """Iterative structural equality over the two nodes' field trees.

    An explicit pair stack replaces recursion (deep non-interned goals
    must not blow the interpreter stack), and a visited set of id-pairs
    caps re-comparison of shared subterms, so two DAG-shaped goals compare
    in time proportional to their distinct node pairs, not their tree
    sizes.
    """
    seen: set[tuple[int, int]] = set()
    stack: list[tuple[object, object]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        pair = (id(x), id(y))
        if pair in seen:
            continue
        if isinstance(x, _Node):
            if type(x) is not type(y):
                return False
            hx, hy = x._hash, y._hash  # type: ignore[attr-defined]
            if hx != -1 and hy != -1 and hx != hy:
                return False
            seen.add(pair)
            stack.extend(zip(x._key(), y._key()))  # type: ignore[attr-defined]
        elif isinstance(x, tuple):
            if not isinstance(y, tuple) or len(x) != len(y):
                return False
            seen.add(pair)
            stack.extend(zip(x, y))
        elif x != y:
            return False
    return True


def _structural_hash(node: "_Node") -> int:
    """Compute and cache ``node._hash`` bottom-up, without deep recursion.

    Children are hashed before their parents (explicit post-order stack),
    so the final ``hash()`` of each node's key tuple only ever recurses
    one level into already-cached child hashes.
    """
    stack: list[_Node] = [node]
    while stack:
        current = stack[-1]
        pending = [
            child
            for value in current._key()
            for child in (value if isinstance(value, tuple) else (value,))
            if isinstance(child, _Node) and child._hash == -1  # type: ignore[attr-defined]
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        h = hash((type(current).__name__,) + current._key())
        if h == -1:
            h = -2
        object.__setattr__(current, "_hash", h)
    return node._hash  # type: ignore[attr-defined]


def _make(cls, *values) -> Goal:
    """Allocate (or fetch the canonical) node of ``cls`` for ``values``."""
    if _INTERNING:
        key = (cls, *values)
        node = _INTERN.get(key)
        if node is not None:
            return node
    node = object.__new__(cls)
    for field, value in zip(cls._FIELDS, values):
        object.__setattr__(node, field, value)
    object.__setattr__(node, "_hash", -1)
    if _INTERNING:
        # setdefault tolerates a racing construction of the same key.
        node = _INTERN.setdefault(key, node)
    return node


class Atom(_Node):
    """A workflow activity / significant event.

    In CTR terms this is a variable-free atomic formula denoting an
    elementary update. Under assumption (2) of the paper, significant
    events are elementary updates that apply in every state (they merely
    append a record to the system log), so an :class:`Atom` is always
    executable and emits its name into the execution trace.
    """

    __slots__ = ("name", "_hash", "__weakref__")
    _FIELDS = ("name",)

    def __new__(cls, name: str) -> "Atom":
        if not name:
            raise ValueError("atom name must be non-empty")
        return _make(cls, name)  # type: ignore[return-value]

    def __str__(self) -> str:
        return self.name


class Send(_Node):
    """``send(token)`` — emit a synchronization token (Definition 5.3).

    Always executable; records the token so that the matching
    :class:`Receive` becomes enabled. Invisible in event traces.
    """

    __slots__ = ("token", "_hash", "__weakref__")
    _FIELDS = ("token",)

    def __new__(cls, token: str) -> "Send":
        return _make(cls, token)  # type: ignore[return-value]

    def __str__(self) -> str:
        return f"send({self.token})"


class Receive(_Node):
    """``receive(token)`` — block until the matching token has been sent.

    ``receive(t)`` is true iff ``send(t)`` has previously executed; this is
    how the ``sync`` transformation serialises two events that live in
    different concurrent branches. Invisible in event traces.
    """

    __slots__ = ("token", "_hash", "__weakref__")
    _FIELDS = ("token",)

    def __new__(cls, token: str) -> "Receive":
        return _make(cls, token)  # type: ignore[return-value]

    def __str__(self) -> str:
        return f"receive({self.token})"


class Test(_Node):
    """A transition condition on a control-flow arc.

    ``Test`` queries the current database state and succeeds without
    changing it (a path of length 1 in CTR terms). The optional
    ``predicate`` is consulted by the run-time engine
    (:mod:`repro.core.engine`); static analysis treats a test as always
    passable, which makes compilation *sound but not complete* for graphs
    with transition conditions — the caveat of Section 7 of the paper.

    The predicate is excluded from equality/hashing: two tests with the
    same name are the same condition. A test carrying a predicate is never
    interned (the callable is per-instance state the canonical node must
    not capture); predicate-less tests — the only kind the parsers and the
    compiler produce — are hash-consed like every other node.
    """

    # Not a test-case class, despite the name (pytest collection hint).
    __test__ = False

    __slots__ = ("name", "predicate", "_hash", "__weakref__")
    _FIELDS = ("name",)

    def __new__(
        cls, name: str, predicate: Optional[Callable[..., bool]] = None
    ) -> "Test":
        if predicate is None:
            node = _make(cls, name)
            # The predicate slot is not part of the intern key; fill it on
            # first construction (idempotent for cache hits).
            object.__setattr__(node, "predicate", None)
            return node  # type: ignore[return-value]
        node = object.__new__(cls)
        object.__setattr__(node, "name", name)
        object.__setattr__(node, "predicate", predicate)
        object.__setattr__(node, "_hash", -1)
        return node

    def __str__(self) -> str:
        return f"{self.name}?"


class Serial(_Node):
    """Serial conjunction ``T₁ ⊗ T₂ ⊗ … ⊗ Tₙ`` — execute parts in order."""

    __slots__ = ("parts", "_hash", "__weakref__")
    _FIELDS = ("parts",)

    def __new__(cls, parts: tuple[Goal, ...]) -> "Serial":
        parts = tuple(parts)
        if len(parts) < 2:
            raise ValueError("Serial needs at least two parts; use seq() to build")
        return _make(cls, parts)  # type: ignore[return-value]


class Concurrent(_Node):
    """Concurrent conjunction ``T₁ | T₂ | … | Tₙ`` — interleave parts."""

    __slots__ = ("parts", "_hash", "__weakref__")
    _FIELDS = ("parts",)

    def __new__(cls, parts: tuple[Goal, ...]) -> "Concurrent":
        parts = tuple(parts)
        if len(parts) < 2:
            raise ValueError("Concurrent needs at least two parts; use par() to build")
        return _make(cls, parts)  # type: ignore[return-value]


class Choice(_Node):
    """Disjunction ``T₁ ∨ T₂ ∨ … ∨ Tₙ`` — execute exactly one part."""

    __slots__ = ("parts", "_hash", "__weakref__")
    _FIELDS = ("parts",)

    def __new__(cls, parts: tuple[Goal, ...]) -> "Choice":
        parts = tuple(parts)
        if len(parts) < 2:
            raise ValueError("Choice needs at least two parts; use alt() to build")
        return _make(cls, parts)  # type: ignore[return-value]


class Isolated(_Node):
    """``⊙ T`` — execute ``T`` without interleaving with concurrent activity."""

    __slots__ = ("body", "_hash", "__weakref__")
    _FIELDS = ("body",)

    def __new__(cls, body: Goal) -> "Isolated":
        return _make(cls, body)  # type: ignore[return-value]

    def __str__(self) -> str:
        return f"isolated({self.body})"


class Possibility(_Node):
    """``◇ T`` — succeed iff ``T`` *could* execute here; consume nothing.

    Events inside a possibility test are hypothetical: they do not occur in
    the actual execution, hence do not count for the unique-event property
    nor for temporal constraints (see DESIGN.md, "Semantic choices").
    """

    __slots__ = ("body", "_hash", "__weakref__")
    _FIELDS = ("body",)

    def __new__(cls, body: Goal) -> "Possibility":
        return _make(cls, body)  # type: ignore[return-value]

    def __str__(self) -> str:
        return f"possible({self.body})"


class Path(_Node):
    """The proposition ``path`` — true on every execution path."""

    __slots__ = ("_hash", "__weakref__")
    _FIELDS = ()

    def __new__(cls) -> "Path":
        return _make(cls)  # type: ignore[return-value]

    def __str__(self) -> str:
        return "path"


class NegPath(_Node):
    """``¬path`` — the non-executable transaction, CTR's analogue of false."""

    __slots__ = ("_hash", "__weakref__")
    _FIELDS = ()

    def __new__(cls) -> "NegPath":
        return _make(cls)  # type: ignore[return-value]

    def __str__(self) -> str:
        return "neg_path"


class Empty(_Node):
    """The unit of ``⊗``: the paper's ``state`` proposition ("do nothing")."""

    __slots__ = ("_hash", "__weakref__")
    _FIELDS = ()

    def __new__(cls) -> "Empty":
        return _make(cls)  # type: ignore[return-value]

    def __str__(self) -> str:
        return "()"


# Module-level strong references keep the sentinels canonical forever, even
# when interning is toggled off (their constructors run at import time,
# while interning is on).
PATH = Path()
NEG_PATH = NegPath()
EMPTY = Empty()


def atom(name: str) -> Atom:
    """Build a single activity/event atom."""
    return Atom(name)


def atoms(names: str | Iterable[str]) -> tuple[Atom, ...]:
    """Build several atoms at once.

    Accepts either a whitespace/comma separated string or an iterable of
    names::

        a, b, c = atoms("a b c")
    """
    if isinstance(names, str):
        names = names.replace(",", " ").split()
    return tuple(Atom(n) for n in names)


def _flatten(kind: type, parts: Iterable[Goal]) -> Iterator[Goal]:
    for part in parts:
        if isinstance(part, kind):
            yield from part.parts  # type: ignore[attr-defined]
        else:
            yield part


def seq(*parts: Goal) -> Goal:
    """Serial conjunction of ``parts``, flattened, with units removed.

    ``seq()`` is :data:`EMPTY`; ``seq(g)`` is ``g``. A ``NEG_PATH`` part
    absorbs the whole composition (``¬path ⊗ φ ≡ ¬path``).
    """
    flat = [p for p in _flatten(Serial, parts) if p is not EMPTY and not isinstance(p, Empty)]
    if any(isinstance(p, NegPath) for p in flat):
        return NEG_PATH
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Serial(tuple(flat))


def par(*parts: Goal) -> Goal:
    """Concurrent conjunction of ``parts``, flattened, with units removed."""
    flat = [p for p in _flatten(Concurrent, parts) if p is not EMPTY and not isinstance(p, Empty)]
    if any(isinstance(p, NegPath) for p in flat):
        return NEG_PATH
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Concurrent(tuple(flat))


def alt(*parts: Goal) -> Goal:
    """Choice between ``parts``, flattened and de-duplicated.

    ``NEG_PATH`` alternatives are dropped (``¬path ∨ φ ≡ φ``); if every
    alternative is ``NEG_PATH`` the result is ``NEG_PATH``.
    """
    flat: list[Goal] = []
    seen: set[Goal] = set()
    for p in _flatten(Choice, parts):
        if isinstance(p, NegPath):
            continue
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        return NEG_PATH
    if len(flat) == 1:
        return flat[0]
    return Choice(tuple(flat))


def subgoals(goal: Goal) -> tuple[Goal, ...]:
    """Immediate children of ``goal`` (empty for leaves)."""
    if isinstance(goal, (Serial, Concurrent, Choice)):
        return goal.parts
    if isinstance(goal, (Isolated, Possibility)):
        return (goal.body,)
    return ()


def walk(goal: Goal) -> Iterator[Goal]:
    """Pre-order traversal of every node of ``goal`` (including itself).

    Shared nodes are yielded once per *occurrence* — this is the tree view,
    the measure of Theorem 5.11. For the DAG view (each distinct node once)
    use :func:`walk_unique`, which is the right tool for "does the goal
    contain X" questions on compiled goals, where sharing makes the tree
    exponentially larger than the DAG.
    """
    stack = [goal]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(subgoals(node)))


def walk_unique(goal: Goal) -> Iterator[Goal]:
    """Pre-order traversal yielding each *distinct* node exactly once.

    Distinctness is object identity: with interning on, structurally equal
    subterms are the same object, so this visits the goal as the DAG it
    actually is — time and output are proportional to :func:`dag_size`,
    not :func:`goal_size`.
    """
    seen: set[int] = set()
    stack = [goal]
    while stack:
        node = stack.pop()
        key = id(node)
        if key in seen:
            continue
        seen.add(key)
        yield node
        stack.extend(reversed(subgoals(node)))


def goal_size(goal: Goal) -> int:
    """Number of AST nodes of the *tree* — the measure ``|G|`` of Theorem 5.11.

    Computed over the DAG (each shared node's subtree size is computed
    once), so this is O(dag_size) time even when the tree is exponentially
    larger.
    """
    sizes: dict[int, int] = {}
    stack = [goal]
    while stack:
        node = stack[-1]
        if id(node) in sizes:
            stack.pop()
            continue
        children = subgoals(node)
        pending = [c for c in children if id(c) not in sizes]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        sizes[id(node)] = 1 + sum(sizes[id(c)] for c in children)
    return sizes[id(goal)]


def dag_size(goal: Goal) -> int:
    """Number of *distinct* nodes — the allocated size under sharing."""
    return sum(1 for _ in walk_unique(goal))


def sharing_ratio(goal: Goal) -> float:
    """``goal_size / dag_size`` — how much smaller sharing makes the goal.

    1.0 means no sharing (every node unique); on Apply output with ``∨``
    constraints this grows with ``d^N``.
    """
    return goal_size(goal) / dag_size(goal)


def event_names(goal: Goal, include_hypothetical: bool = False) -> frozenset[str]:
    """Names of the significant events that may *occur* in an execution.

    ``Send``/``Receive``/``Test`` are not significant events. Events under a
    ``Possibility`` test are hypothetical and excluded unless
    ``include_hypothetical`` is set.
    """
    names: set[str] = set()
    seen: set[int] = set()

    def visit(node: Goal) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, Atom):
            names.add(node.name)
        elif isinstance(node, Possibility):
            if include_hypothetical:
                visit(node.body)
        else:
            for child in subgoals(node):
                visit(child)

    visit(goal)
    return frozenset(names)


def is_concurrent_horn(goal: Goal) -> bool:
    """True iff ``goal`` lies in the concurrent-Horn fragment (Section 2).

    Concurrent-Horn goals are built from atomic formulas with ``⊗``, ``|``,
    ``∨``, ``⊙`` and ``◇``. ``¬path`` is *not* concurrent-Horn (the paper
    simplifies it away after Apply); ``path`` is not either, because it is
    defined with negation.
    """
    for node in walk_unique(goal):
        if isinstance(node, (Path, NegPath)):
            return False
        if not isinstance(
            node,
            (Atom, Send, Receive, Test, Empty, Serial, Concurrent, Choice, Isolated, Possibility),
        ):
            return False
    return True
