"""Enumerable trace semantics for unique-event concurrent-Horn goals.

Under assumption (2) of the paper — significant events are elementary
updates that apply in *every* state — the valid executions of a goal are
fully characterised by the sequences of events they emit. This module
enumerates that set exactly:

* ``⊗`` concatenates traces,
* ``|`` shuffles (interleaves) them,
* ``∨`` unions them,
* ``⊙`` forces its body's trace to appear as a contiguous block,
* ``◇`` contributes the empty trace iff its body is executable at all,
* ``send``/``receive`` restrict the shuffles: a ``receive(t)`` step is only
  valid after the matching ``send(t)`` — the interleavings violating this
  are discarded, and the surviving traces are projected onto significant
  events.

Enumeration is exponential in the parallel width of the goal. That is by
design: this module is the *semantic oracle* used by the test-suite to
validate the Apply/Excise compiler (``traces(Apply(C,G)) == {t ∈ traces(G) :
t ⊨ C}``) and by the brute-force baselines. Scalable execution goes through
:mod:`repro.ctr.machine` and :mod:`repro.core.scheduler` instead.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Union

from ..errors import SpecificationError
from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)

__all__ = [
    "traces",
    "iter_traces",
    "is_executable",
    "count_traces",
    "TraceCount",
    "TooManyTracesError",
]

# A low-level step is an event name, a ("send", token) / ("recv", token)
# marker, or a Block wrapping a completed isolated sub-trace.
_Step = Union[str, tuple]


class _Block(tuple):
    """A contiguous (isolated) run of steps, shuffled as a single unit."""

    __slots__ = ()


class TooManyTracesError(SpecificationError):
    """Raised when enumeration exceeds the caller-supplied budget."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(f"trace enumeration exceeded the budget of {limit} sequences")


@lru_cache(maxsize=65536)
def _shuffle_pair(xs: tuple, ys: tuple) -> frozenset:
    """All interleavings of the two step sequences ``xs`` and ``ys``."""
    if not xs:
        return frozenset((ys,))
    if not ys:
        return frozenset((xs,))
    first_x, rest_x = xs[0], xs[1:]
    first_y, rest_y = ys[0], ys[1:]
    out = set()
    for tail in _shuffle_pair(rest_x, ys):
        out.add((first_x,) + tail)
    for tail in _shuffle_pair(xs, rest_y):
        out.add((first_y,) + tail)
    return frozenset(out)


def _shuffle_sets(trace_sets: list[frozenset], budget: list[int]) -> frozenset:
    result: frozenset = frozenset(((),))
    for ts in trace_sets:
        merged = set()
        for left in result:
            for right in ts:
                pair = _shuffle_pair(left, right)
                # Charge interleavings as they are *generated*, before
                # dedup/filtering: the budget bounds work done, not just
                # sequences that happen to survive.
                budget[0] -= len(pair)
                if budget[0] < 0:
                    raise TooManyTracesError(budget[1])
                merged |= pair
        result = frozenset(merged)
    return result


def _concat_sets(trace_sets: list[frozenset], budget: list[int]) -> frozenset:
    result: frozenset = frozenset(((),))
    for ts in trace_sets:
        budget[0] -= len(result) * len(ts)
        if budget[0] < 0:
            raise TooManyTracesError(budget[1])
        result = frozenset(left + right for left in result for right in ts)
    return result


def _step_traces(goal: Goal, budget: list[int]) -> frozenset:
    """Raw step sequences of ``goal`` (tokens unvalidated, blocks unflattened)."""
    if isinstance(goal, Atom):
        return frozenset(((goal.name,),))
    if isinstance(goal, Send):
        return frozenset(((("send", goal.token),),))
    if isinstance(goal, Receive):
        return frozenset(((("recv", goal.token),),))
    if isinstance(goal, (Test, Empty)):
        # Statically passable, emits nothing.
        return frozenset(((),))
    if isinstance(goal, NegPath):
        return frozenset()
    if isinstance(goal, Path):
        raise SpecificationError(
            "the proposition `path` admits arbitrary executions and cannot be "
            "enumerated; it belongs in constraints, not goals"
        )
    if isinstance(goal, Possibility):
        return frozenset(((),)) if is_executable(goal.body) else frozenset()
    if isinstance(goal, Isolated):
        inner = _step_traces(goal.body, budget)
        wrapped = set()
        for t in inner:
            wrapped.add((_Block(t),) if len(t) > 1 else t)
        return frozenset(wrapped)
    if isinstance(goal, (Serial, Concurrent)):
        # Generation is charged inside the set combinators (it dominates
        # the surviving-result size, so a second node-level charge would
        # only double-count the same work).
        combine = _concat_sets if isinstance(goal, Serial) else _shuffle_sets
        return combine([_step_traces(p, budget) for p in goal.parts], budget)
    if isinstance(goal, Choice):
        merged: set = set()
        for p in goal.parts:
            merged |= _step_traces(p, budget)
        result = frozenset(merged)
    else:  # pragma: no cover - future node kinds
        raise TypeError(f"cannot enumerate {type(goal).__name__}")

    budget[0] -= len(result)
    if budget[0] < 0:
        raise TooManyTracesError(budget[1])
    return result


def _flatten(steps: Iterable[_Step]):
    for step in steps:
        if isinstance(step, _Block):
            yield from _flatten(step)
        else:
            yield step


def _validate_and_project(steps: Iterable[_Step]) -> tuple[str, ...] | None:
    """Check send-before-receive, drop markers; None if the order is invalid."""
    sent: set[str] = set()
    events: list[str] = []
    for step in _flatten(steps):
        if isinstance(step, tuple):
            kind, token = step
            if kind == "send":
                sent.add(token)
            else:  # "recv"
                if token not in sent:
                    return None
        else:
            events.append(step)
    return tuple(events)


def traces(goal: Goal, max_traces: int = 200_000) -> frozenset[tuple[str, ...]]:
    """All valid event sequences of ``goal``.

    ``max_traces`` bounds the intermediate enumeration; exceeding it raises
    :class:`TooManyTracesError` rather than consuming unbounded memory.
    """
    budget = [max_traces, max_traces]
    try:
        raw = _step_traces(goal, budget)
        out = set()
        for t in raw:
            projected = _validate_and_project(t)
            if projected is not None:
                out.add(projected)
        return frozenset(out)
    finally:
        # Bound the module-level shuffle cache between enumerations: one
        # wide goal can park tens of thousands of interleaving frozensets
        # in it, which a long test session would otherwise retain forever.
        if _shuffle_pair.cache_info().currsize > 8192:
            _shuffle_pair.cache_clear()


# -- lazy enumeration ----------------------------------------------------------
#
# The eager `traces()` above materializes the whole set before answering
# anything, so existence questions on wide concurrent goals used to cost —
# and, past the budget, *fail* with TooManyTracesError — despite the first
# interleaving already being the answer. The generators below produce
# candidate step sequences one at a time: `is_executable` stops at the
# first valid trace, and `count_traces` saturates instead of raising.


class _LazySeq:
    """A memoized, re-iterable view over a one-shot generator.

    Product/shuffle composition iterates every part many times; caching
    what the underlying generator has produced keeps each part's traces
    computed once while staying lazy past the prefix actually consumed.
    """

    __slots__ = ("_gen", "_cache", "_done")

    def __init__(self, gen):
        self._gen = gen
        self._cache: list = []
        self._done = False

    def __iter__(self):
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
            elif self._done:
                return
            else:
                try:
                    item = next(self._gen)
                except StopIteration:
                    self._done = True
                    return
                self._cache.append(item)
                yield item
            index += 1


def _iter_shuffle_pair(xs: tuple, ys: tuple):
    """Interleavings of two step sequences, lazily, first-fit first."""
    if not xs:
        yield ys
        return
    if not ys:
        yield xs
        return
    for tail in _iter_shuffle_pair(xs[1:], ys):
        yield (xs[0],) + tail
    for tail in _iter_shuffle_pair(xs, ys[1:]):
        yield (ys[0],) + tail


def _iter_raw(goal: Goal):
    """Candidate step sequences of ``goal``, generated lazily.

    May yield duplicates (``∨`` branches can overlap, distinct
    interleavings can project to the same event sequence); callers dedup.
    Token validity is *not* checked here — see :func:`iter_traces`.
    """
    if isinstance(goal, Atom):
        yield (goal.name,)
        return
    if isinstance(goal, Send):
        yield (("send", goal.token),)
        return
    if isinstance(goal, Receive):
        yield (("recv", goal.token),)
        return
    if isinstance(goal, (Test, Empty)):
        yield ()
        return
    if isinstance(goal, NegPath):
        return
    if isinstance(goal, Path):
        raise SpecificationError(
            "the proposition `path` admits arbitrary executions and cannot be "
            "enumerated; it belongs in constraints, not goals"
        )
    if isinstance(goal, Possibility):
        if is_executable(goal.body):
            yield ()
        return
    if isinstance(goal, Isolated):
        for t in _iter_raw(goal.body):
            yield (_Block(t),) if len(t) > 1 else t
        return
    if isinstance(goal, Choice):
        for part in goal.parts:
            yield from _iter_raw(part)
        return
    if isinstance(goal, Serial):
        parts = [_LazySeq(_iter_raw(p)) for p in goal.parts]

        def concat(index: int):
            if index == len(parts):
                yield ()
                return
            for head in parts[index]:
                for tail in concat(index + 1):
                    yield head + tail

        yield from concat(0)
        return
    if isinstance(goal, Concurrent):
        parts = [_LazySeq(_iter_raw(p)) for p in goal.parts]

        def shuffle(index: int):
            if index < 0:
                yield ()
                return
            for left in shuffle(index - 1):
                for right in parts[index]:
                    yield from _iter_shuffle_pair(left, right)

        yield from shuffle(len(parts) - 1)
        return
    raise TypeError(f"cannot enumerate {type(goal).__name__}")  # pragma: no cover


def iter_traces(goal: Goal, max_traces: int = 200_000):
    """Lazily yield the distinct valid event sequences of ``goal``.

    Candidates are produced one interleaving at a time, validated
    (send-before-receive) and deduplicated on the fly, so consumers that
    stop early — existence checks, top-k sampling — never pay for the
    full enumeration. ``max_traces`` bounds the number of *candidates
    examined*; if the generator is still being consumed when the budget
    runs out, :class:`TooManyTracesError` is raised at that point.
    """
    remaining = max_traces
    seen: set[tuple[str, ...]] = set()
    for raw in _iter_raw(goal):
        remaining -= 1
        if remaining < 0:
            raise TooManyTracesError(max_traces)
        projected = _validate_and_project(raw)
        if projected is not None and projected not in seen:
            seen.add(projected)
            yield projected


def is_executable(goal: Goal, max_traces: int = 200_000) -> bool:
    """True iff ``goal`` has at least one valid execution.

    Short-circuits on the first valid trace — a wide concurrent goal
    whose trace set dwarfs ``max_traces`` still answers ``True``
    immediately. :class:`TooManyTracesError` is raised only when the
    budget is exhausted with *no* valid trace found and candidates remain,
    i.e. when the question genuinely cannot be answered within budget.
    """
    for _ in iter_traces(goal, max_traces=max_traces):
        return True
    return False


class TraceCount(int):
    """An execution count that knows whether it is exact or saturated.

    Behaves as a plain ``int`` (the count, or the lower bound when
    ``exact`` is False) so existing arithmetic and comparisons keep
    working.
    """

    exact: bool

    def __new__(cls, value: int, exact: bool = True) -> "TraceCount":
        self = super().__new__(cls, value)
        self.exact = exact
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = "" if self.exact else "+ (saturated)"
        return f"TraceCount({int(self)}{suffix})"


def count_traces(goal: Goal, max_traces: int = 200_000) -> TraceCount:
    """Number of distinct valid event sequences of ``goal``.

    When enumeration exceeds ``max_traces`` candidates the count observed
    so far is returned as a *saturated lower bound* — ``TraceCount(n,
    exact=False)`` — rather than propagating the budget exception: "at
    least n" answers the question the caller asked, a traceback does not.
    """
    count = 0
    try:
        for _ in iter_traces(goal, max_traces=max_traces):
            count += 1
    except TooManyTracesError:
        return TraceCount(count, exact=False)
    return TraceCount(count, exact=True)
