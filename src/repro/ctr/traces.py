"""Enumerable trace semantics for unique-event concurrent-Horn goals.

Under assumption (2) of the paper — significant events are elementary
updates that apply in *every* state — the valid executions of a goal are
fully characterised by the sequences of events they emit. This module
enumerates that set exactly:

* ``⊗`` concatenates traces,
* ``|`` shuffles (interleaves) them,
* ``∨`` unions them,
* ``⊙`` forces its body's trace to appear as a contiguous block,
* ``◇`` contributes the empty trace iff its body is executable at all,
* ``send``/``receive`` restrict the shuffles: a ``receive(t)`` step is only
  valid after the matching ``send(t)`` — the interleavings violating this
  are discarded, and the surviving traces are projected onto significant
  events.

Enumeration is exponential in the parallel width of the goal. That is by
design: this module is the *semantic oracle* used by the test-suite to
validate the Apply/Excise compiler (``traces(Apply(C,G)) == {t ∈ traces(G) :
t ⊨ C}``) and by the brute-force baselines. Scalable execution goes through
:mod:`repro.ctr.machine` and :mod:`repro.core.scheduler` instead.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Union

from ..errors import SpecificationError
from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Empty,
    Goal,
    Isolated,
    NegPath,
    Path,
    Possibility,
    Receive,
    Send,
    Serial,
    Test,
)

__all__ = ["traces", "is_executable", "count_traces", "TooManyTracesError"]

# A low-level step is an event name, a ("send", token) / ("recv", token)
# marker, or a Block wrapping a completed isolated sub-trace.
_Step = Union[str, tuple]


class _Block(tuple):
    """A contiguous (isolated) run of steps, shuffled as a single unit."""

    __slots__ = ()


class TooManyTracesError(SpecificationError):
    """Raised when enumeration exceeds the caller-supplied budget."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(f"trace enumeration exceeded the budget of {limit} sequences")


@lru_cache(maxsize=65536)
def _shuffle_pair(xs: tuple, ys: tuple) -> frozenset:
    """All interleavings of the two step sequences ``xs`` and ``ys``."""
    if not xs:
        return frozenset((ys,))
    if not ys:
        return frozenset((xs,))
    first_x, rest_x = xs[0], xs[1:]
    first_y, rest_y = ys[0], ys[1:]
    out = set()
    for tail in _shuffle_pair(rest_x, ys):
        out.add((first_x,) + tail)
    for tail in _shuffle_pair(xs, rest_y):
        out.add((first_y,) + tail)
    return frozenset(out)


def _shuffle_sets(trace_sets: list[frozenset]) -> frozenset:
    result: frozenset = frozenset(((),))
    for ts in trace_sets:
        merged = set()
        for left in result:
            for right in ts:
                merged |= _shuffle_pair(left, right)
        result = frozenset(merged)
    return result


def _concat_sets(trace_sets: list[frozenset]) -> frozenset:
    result: frozenset = frozenset(((),))
    for ts in trace_sets:
        result = frozenset(left + right for left in result for right in ts)
    return result


def _step_traces(goal: Goal, budget: list[int]) -> frozenset:
    """Raw step sequences of ``goal`` (tokens unvalidated, blocks unflattened)."""
    if isinstance(goal, Atom):
        return frozenset(((goal.name,),))
    if isinstance(goal, Send):
        return frozenset(((("send", goal.token),),))
    if isinstance(goal, Receive):
        return frozenset(((("recv", goal.token),),))
    if isinstance(goal, (Test, Empty)):
        # Statically passable, emits nothing.
        return frozenset(((),))
    if isinstance(goal, NegPath):
        return frozenset()
    if isinstance(goal, Path):
        raise SpecificationError(
            "the proposition `path` admits arbitrary executions and cannot be "
            "enumerated; it belongs in constraints, not goals"
        )
    if isinstance(goal, Possibility):
        return frozenset(((),)) if is_executable(goal.body) else frozenset()
    if isinstance(goal, Isolated):
        inner = _step_traces(goal.body, budget)
        wrapped = set()
        for t in inner:
            wrapped.add((_Block(t),) if len(t) > 1 else t)
        return frozenset(wrapped)
    if isinstance(goal, Serial):
        result = _concat_sets([_step_traces(p, budget) for p in goal.parts])
    elif isinstance(goal, Concurrent):
        result = _shuffle_sets([_step_traces(p, budget) for p in goal.parts])
    elif isinstance(goal, Choice):
        merged: set = set()
        for p in goal.parts:
            merged |= _step_traces(p, budget)
        result = frozenset(merged)
    else:  # pragma: no cover - future node kinds
        raise TypeError(f"cannot enumerate {type(goal).__name__}")

    budget[0] -= len(result)
    if budget[0] < 0:
        raise TooManyTracesError(budget[1])
    return result


def _flatten(steps: Iterable[_Step]):
    for step in steps:
        if isinstance(step, _Block):
            yield from _flatten(step)
        else:
            yield step


def _validate_and_project(steps: Iterable[_Step]) -> tuple[str, ...] | None:
    """Check send-before-receive, drop markers; None if the order is invalid."""
    sent: set[str] = set()
    events: list[str] = []
    for step in _flatten(steps):
        if isinstance(step, tuple):
            kind, token = step
            if kind == "send":
                sent.add(token)
            else:  # "recv"
                if token not in sent:
                    return None
        else:
            events.append(step)
    return tuple(events)


def traces(goal: Goal, max_traces: int = 200_000) -> frozenset[tuple[str, ...]]:
    """All valid event sequences of ``goal``.

    ``max_traces`` bounds the intermediate enumeration; exceeding it raises
    :class:`TooManyTracesError` rather than consuming unbounded memory.
    """
    budget = [max_traces, max_traces]
    raw = _step_traces(goal, budget)
    out = set()
    for t in raw:
        projected = _validate_and_project(t)
        if projected is not None:
            out.add(projected)
    return frozenset(out)


def is_executable(goal: Goal, max_traces: int = 200_000) -> bool:
    """True iff ``goal`` has at least one valid execution (by enumeration)."""
    return bool(traces(goal, max_traces=max_traces))


def count_traces(goal: Goal, max_traces: int = 200_000) -> int:
    """Number of distinct valid event sequences of ``goal``."""
    return len(traces(goal, max_traces=max_traces))
