"""The unique-event property (Definition 3.1) and its linear-time checker.

A concurrent-Horn goal has the *unique event property* iff every significant
event occurs at most once in any execution. The paper's observations (3)
give the compositional characterisation we implement:

* ``E₁ ⊗ E₂`` / ``E₁ | E₂`` are unique-event iff both parts are and their
  event sets are disjoint;
* ``E₁ ∨ E₂`` is unique-event iff both parts are (overlap is fine — only
  one branch executes).

This syntactic check is *exact* for unique-event subparts: every syntactic
event occurrence inside a unique-event goal is realised by some execution
(choices can always select the branch containing it), so a shared event
between two serial/concurrent siblings really does yield a double
occurrence on some path.

Events under a ``◇`` test are hypothetical and do not count as occurrences.
"""

from __future__ import annotations

from ..errors import UniqueEventError
from .formulas import (
    Atom,
    Choice,
    Concurrent,
    Goal,
    Isolated,
    Possibility,
    Serial,
)

__all__ = ["check_unique_events", "is_unique_event_goal", "occurring_events"]


def occurring_events(goal: Goal) -> frozenset[str]:
    """Events that may occur in some execution of ``goal``.

    Raises :class:`~repro.errors.UniqueEventError` if the unique-event
    property is violated; i.e. this function *is* the checker and returns
    the occurrence set as a byproduct.
    """
    return _occ(goal)


def _occ(goal: Goal) -> frozenset[str]:
    if isinstance(goal, Atom):
        return frozenset((goal.name,))

    if isinstance(goal, Possibility):
        # Hypothetical execution: its events never actually occur, but the
        # body must itself be well-formed.
        _occ(goal.body)
        return frozenset()

    if isinstance(goal, Isolated):
        return _occ(goal.body)

    if isinstance(goal, (Serial, Concurrent)):
        seen: set[str] = set()
        for part in goal.parts:
            part_events = _occ(part)
            overlap = seen & part_events
            if overlap:
                raise UniqueEventError(min(overlap))
            seen |= part_events
        return frozenset(seen)

    if isinstance(goal, Choice):
        union: set[str] = set()
        for part in goal.parts:
            union |= _occ(part)
        return frozenset(union)

    # Send / Receive / Test / Path / NegPath / Empty carry no events.
    return frozenset()


def check_unique_events(goal: Goal) -> None:
    """Raise :class:`~repro.errors.UniqueEventError` unless ``goal`` is unique-event."""
    _occ(goal)


def is_unique_event_goal(goal: Goal) -> bool:
    """Boolean form of :func:`check_unique_events`."""
    try:
        _occ(goal)
    except UniqueEventError:
        return False
    return True
