"""R1/R2: the cost of resilient execution.

R1 measures the happy-path price of the resilience layer: the engine
journals restore points only at choice points, so on a fault-free run it
should cost within 5% of a bare scheduler+oracle loop (checkpoint, fire,
execute — no policies, no journal, no accounting).

R2 measures recovery: time to complete a workflow of n binary choices as
an increasing fraction of the preferred branches is permanently dead,
forcing one choice-branch failover (scheduler rewind + database restore)
per dead branch.
"""

import random

from conftest import save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.core.resilience import ChaosOracle
from repro.ctr.formulas import Atom, alt, seq
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database
from repro.graph.generators import serial_chain


def _chain_oracle(length: int) -> TransitionOracle:
    oracle = TransitionOracle()
    for i in range(1, length + 1):
        oracle.register(f"e{i}", insert_op("done", f"e{i}"))
    return oracle


def _bare_run(compiled, oracle):
    """The seed-engine loop: checkpoint, fire, execute; nothing else."""
    db = Database()
    checkpoint = db.snapshot()
    scheduler = compiled.scheduler()
    try:
        while True:
            events = scheduler.eligible()
            if not events:
                break
            event = min(events)
            scheduler.fire(event)
            oracle.execute(event, db)
    except Exception:
        db.restore(checkpoint)
        raise
    return scheduler.history


def test_r1_happy_path_overhead(benchmark):
    lengths = [50, 100, 200, 400]
    rows = []
    bare_total = engine_total = 0.0
    for length in lengths:
        compiled = compile_workflow(serial_chain(length), [])
        oracle = _chain_oracle(length)

        def engine_run():
            return WorkflowEngine(compiled, oracle=oracle, db=Database()).run()

        assert len(engine_run().schedule) == length
        bare = time_best_of(lambda: _bare_run(compiled, oracle), repeats=7)
        full = time_best_of(engine_run, repeats=7)
        bare_total += bare
        engine_total += full
        rows.append([length, bare * 1e3, full * 1e3, (full / bare - 1) * 100])

    compiled = compile_workflow(serial_chain(100), [])
    oracle = _chain_oracle(100)
    benchmark(lambda: WorkflowEngine(compiled, oracle=oracle, db=Database()).run())

    overhead = engine_total / bare_total - 1
    save_table(
        "R1_resilience_overhead",
        render_table(
            "R1: resilient engine vs bare scheduler+oracle loop (fault-free)",
            ["chain length", "bare ms", "engine ms", "overhead %"],
            rows,
            note=(
                f"aggregate happy-path overhead: {overhead * 100:.1f}% "
                "(restore points are journaled only at choice points; a "
                "serial chain has none)."
            ),
        ),
    )
    assert overhead <= 0.05, (
        f"happy-path overhead {overhead * 100:.1f}% exceeds the 5% budget"
    )


def test_r2_recovery_latency_vs_fault_rate(benchmark):
    n = 60
    goal = seq(*(alt(Atom(f"a{i}"), Atom(f"b{i}")) for i in range(n)))
    compiled = compile_workflow(goal, [])
    rng = random.Random(42)
    rows = []
    for rate in [0.0, 0.1, 0.25, 0.5, 1.0]:
        dead = [f"a{i}" for i in range(n) if rng.random() < rate]

        def run():
            chaos = ChaosOracle()
            for event in dead:
                chaos.fail_event(event)
            return WorkflowEngine(compiled, oracle=chaos).run()

        report = run()
        assert report.completed
        assert len(report.reroutes) == len(dead)
        elapsed = time_best_of(run, repeats=5)
        rows.append([rate, len(report.reroutes), elapsed * 1e3])

    benchmark(lambda: WorkflowEngine(compiled, oracle=ChaosOracle()).run())

    save_table(
        "R2_recovery_latency",
        render_table(
            f"R2: completion time vs fraction of dead preferred branches "
            f"({n} binary choices)",
            ["fault rate", "reroutes", "total ms"],
            rows,
            note=(
                "every dead branch costs one failover: scheduler rewind to "
                "the choice point, database restore, and a re-filtered "
                "eligible set avoiding all dead events."
            ),
        ),
    )
