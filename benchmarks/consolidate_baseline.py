"""Consolidate the benchmark tables into one machine-readable baseline.

The experiment benchmarks (``bench_*.py``) each save an ASCII table under
``results/<name>.txt``. This script parses every table — title, headers,
rows (numbers where they parse), and the trailing note with the fitted
exponents/bases — into ``results/BENCH_baseline.json``, the single
headline-numbers artifact CI tracks across revisions::

    python benchmarks/consolidate_baseline.py

``BENCH_sharing.json`` (already machine-readable, emitted by
``bench_sharing.py``) is folded in verbatim when present.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_baseline.json"


def _coerce(cell: str):
    cell = cell.strip()
    for parse in (int, float):
        try:
            return parse(cell)
        except ValueError:
            continue
    return cell


def parse_table(text: str) -> dict:
    """Parse one ``render_table`` artifact back into title/headers/rows/note."""
    lines = text.splitlines()
    title = lines[0].strip()
    headers = [h.strip() for h in lines[2].split(" | ")]
    rows = []
    note_lines = []
    in_note = False
    for line in lines[4:]:
        if not line.strip():
            in_note = True
            continue
        if in_note:
            note_lines.append(line.strip())
        else:
            rows.append([_coerce(c) for c in line.split(" | ")])
    return {
        "title": title,
        "headers": headers,
        "rows": rows,
        "note": " ".join(note_lines),
    }


def consolidate(results_dir: Path = RESULTS_DIR) -> dict:
    baseline: dict = {"experiments": {}}
    for path in sorted(results_dir.glob("*.txt")):
        baseline["experiments"][path.stem] = parse_table(path.read_text())
    sharing = results_dir / "BENCH_sharing.json"
    if sharing.exists():
        baseline["sharing"] = json.loads(sharing.read_text())
    return baseline


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(f"no results directory at {RESULTS_DIR}; "
              "run the benchmarks first (pytest benchmarks/)")
        return 1
    baseline = consolidate()
    OUTPUT.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {OUTPUT} "
          f"({len(baseline['experiments'])} experiments"
          f"{', sharing sweep included' if 'sharing' in baseline else ''})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
