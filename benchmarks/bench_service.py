"""S5: the verification service — batched throughput, fidelity, draining.

Workload: four concurrent event pairs plus a serial pad under four
width-2 disjunctive order constraints; every request verifies the same
five properties, each of which *holds* — so each one forces a full
(inconsistent) ``G ∧ C ∧ ¬Φ`` compile and represents maximal, uniform
verification work. The service runs with **no** persistent compile
cache: every verification the daemon actually performs is real
Apply/Excise work, and whatever the batcher saves, it saves by
coalescing — not by hiding behind the disk cache.

Three gates:

* **S5a** — *zero divergence*: every verdict and witness the service
  returns (sequential client, concurrent client, and during shutdown)
  is identical to direct :func:`~repro.core.verify.verify_property`
  library calls. Runs anywhere.
* **S5b** — *batched throughput*: 4 concurrent client workers sustain at
  least 2× the request throughput of a sequential one-request-at-a-time
  client, on any machine — the win is the batcher coalescing identical
  in-flight work (one verification fans out to every concurrent waiter),
  not process parallelism, so a single-core box passes too.
* **S5c** — *graceful draining*: a shutdown issued mid-burst answers
  every accepted request with a full (and correct) verdict; shed
  requests fail crisply with 503/connection-refused, never by hanging
  or by a dropped accepted request.

Saved machine-readably as ``results/BENCH_service.json`` (consumed by CI).
"""

from __future__ import annotations

import json
import os
import threading
import time

from conftest import RESULTS_DIR, save_table

from repro.analysis.metrics import render_table
from repro.core.verify import verify_properties
from repro.service import ServiceClientError, serve_in_thread
from repro.spec import parse_specification

N_PAIRS = 4
WORKERS = 4          # concurrent client workers in the batched phase
REQUESTS = 24        # total requests in each throughput phase
BATCH_WINDOW = 0.005

_RESULTS: dict | None = None


def _spec_text() -> str:
    lines = ["goal: "
             + " * ".join(f"(a{i} | b{i})" for i in range(N_PAIRS))
             + " * pad0 * pad1"]
    for i in range(N_PAIRS):
        lines.append(
            f"constraint: precedes(a{i}, b{i}) or precedes(b{i}, a{i})"
        )
    for i in range(N_PAIRS):
        lines.append(
            f"property p{i}: precedes(a{i}, b{i}) or precedes(b{i}, a{i})"
        )
    lines.append("property padded: happens(pad0)")
    return "\n".join(lines) + "\n"


def _direct_reference(text: str) -> list[dict]:
    """The library's own answers, shaped like the service's response rows."""
    spec = parse_specification(text)
    results = verify_properties(
        spec.goal, list(spec.constraints),
        [prop for _, prop in spec.properties], rules=spec.rules,
    )
    return [
        {
            "name": name,
            "property": str(result.property),
            "holds": result.holds,
            "witness": list(result.witness) if result.witness else None,
        }
        for (name, _), result in zip(spec.properties, results)
    ]


def _throughput_phase(handle, *, workers: int, requests: int):
    """Drive ``requests`` verify calls with ``workers`` threads; per-thread
    requests are sequential, so ``workers=1`` is the one-at-a-time client."""
    responses: list[dict] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    per_worker = requests // workers

    def worker():
        client = handle.client()
        try:
            for _ in range(per_worker):
                out = client.verify(spec="bench")
                with lock:
                    responses.append(out)
        except BaseException as exc:  # pragma: no cover - surfaces in gate
            with lock:
                errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return responses, elapsed


def _drain_phase(text: str):
    """Issue a burst, stop(drain=True) mid-flight, account for every request."""
    handle = serve_in_thread(batch_window=0.05, queue_limit=256)
    with handle.client() as setup:
        setup.register("bench", text)
    answered: list[dict] = []
    refused: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(9)

    def worker():
        client = handle.client()
        try:
            barrier.wait()
            out = client.verify(spec="bench")
            with lock:
                answered.append(out)
        except (ServiceClientError, OSError) as exc:
            with lock:
                refused.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    barrier.wait()  # all 8 requests are being written right now
    # Wait until the daemon has actually *accepted* work into the batcher
    # queue (the 50ms coalescing window holds it there), so the shutdown
    # below exercises the accepted-then-drained path, not just refusal.
    deadline = time.perf_counter() + 5.0
    batcher = handle.service.batcher
    while batcher.stats.accepted == 0 and time.perf_counter() < deadline:
        time.sleep(0.001)
    handle.stop(drain=True)
    hung = 0
    for thread in threads:
        thread.join(timeout=60)
        hung += thread.is_alive()
    cleanly_refused = all(
        not isinstance(e, ServiceClientError) or e.status == 503
        for e in refused
    )
    return {
        "requests": 8,
        "answered": len(answered),
        "refused": len(refused),
        "hung": hung,
        "cleanly_refused": cleanly_refused,
    }, answered


def _measure() -> dict:
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    text = _spec_text()
    reference = _direct_reference(text)

    handle = serve_in_thread(batch_window=BATCH_WINDOW, queue_limit=256)
    try:
        with handle.client() as setup:
            setup.register("bench", text)
            setup.verify(spec="bench")  # warm the registry's compile memo
        sequential, seq_s = _throughput_phase(handle, workers=1,
                                              requests=REQUESTS)
        batched, batch_s = _throughput_phase(handle, workers=WORKERS,
                                             requests=REQUESTS)
        stats = handle.service.batcher.stats
        coalesced = stats.coalesced
        verified = stats.verified
    finally:
        handle.stop()

    drain, drain_answered = _drain_phase(text)

    identical = all(
        out["results"] == reference
        for out in sequential + batched + drain_answered
    )
    seq_rps = REQUESTS / seq_s
    batch_rps = REQUESTS / batch_s
    speedup = batch_rps / seq_rps

    _RESULTS = {
        "benchmark": "service",
        "workload": (
            f"{N_PAIRS} concurrent event pairs + 2-event pad, {N_PAIRS} "
            f"width-2 disjunctive constraints, {N_PAIRS + 1} properties "
            f"per request; {REQUESTS} requests per phase; no compile cache"
        ),
        "cpu_count": os.cpu_count(),
        "batch_window_s": BATCH_WINDOW,
        "sequential": {"requests": REQUESTS, "wall_s": round(seq_s, 4),
                       "rps": round(seq_rps, 2)},
        "batched": {"requests": REQUESTS, "workers": WORKERS,
                    "wall_s": round(batch_s, 4), "rps": round(batch_rps, 2)},
        "speedup": round(speedup, 2),
        "batcher": {"verified": verified, "coalesced": coalesced},
        "drain": drain,
        "gates": {
            "zero_divergence": identical,
            "throughput_2x_at_4_workers": speedup >= 2.0,
            "graceful_drain": (
                drain["hung"] == 0
                and drain["answered"] >= 1  # the drained path really ran
                and drain["answered"] + drain["refused"] == drain["requests"]
                and drain["cleanly_refused"]
            ),
        },
    }
    return _RESULTS


def test_s5a_zero_divergence(benchmark):
    results = _measure()
    assert results["gates"]["zero_divergence"], (
        "service verdicts diverged from direct verify_property calls"
    )

    text = _spec_text()
    spec = parse_specification(text)
    benchmark(lambda: verify_properties(
        spec.goal, list(spec.constraints),
        [prop for _, prop in spec.properties[:1]], rules=spec.rules,
    ))

    save_table(
        "S5_service",
        render_table(
            f"S5: service throughput, sequential vs {WORKERS} concurrent "
            f"workers ({REQUESTS} requests)",
            ["client", "wall s", "req/s"],
            [
                ["sequential", results["sequential"]["wall_s"],
                 results["sequential"]["rps"]],
                [f"{WORKERS} workers", results["batched"]["wall_s"],
                 results["batched"]["rps"]],
            ],
            note=(
                f"speedup {results['speedup']}x on cpu_count="
                f"{results['cpu_count']}: the batcher verified "
                f"{results['batcher']['verified']} unique properties and "
                f"coalesced {results['batcher']['coalesced']} more — the "
                "win is request coalescing, not cores. Drain: "
                f"{results['drain']['answered']} answered + "
                f"{results['drain']['refused']} refused of "
                f"{results['drain']['requests']} mid-shutdown."
            ),
        ),
    )


def test_s5b_batched_throughput_2x():
    results = _measure()
    assert results["gates"]["throughput_2x_at_4_workers"], (
        f"expected >=2x throughput with {WORKERS} concurrent workers, got "
        f"{results['speedup']:.2f}x (sequential "
        f"{results['sequential']['rps']} req/s, batched "
        f"{results['batched']['rps']} req/s)"
    )


def test_s5c_graceful_drain_never_drops_accepted_requests():
    results = _measure()
    drain = results["drain"]
    assert drain["hung"] == 0, "a client thread hung through shutdown"
    assert drain["answered"] >= 1, (
        "shutdown refused everything — the drain path was never exercised"
    )
    assert drain["answered"] + drain["refused"] == drain["requests"]
    assert drain["cleanly_refused"], (
        "a refused request saw something other than 503/connection-refused"
    )


def test_s5d_emit_json():
    results = _measure()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_service.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
