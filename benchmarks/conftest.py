"""Shared helpers for the benchmark harness.

Every benchmark prints its experiment table (visible with ``pytest -s``)
and also saves it under ``benchmarks/results/`` so EXPERIMENTS.md can
reference the generated artifacts. Timings inside parameter sweeps use
``time.perf_counter`` with a best-of-``repeats`` policy; each test
additionally runs one representative operation under pytest-benchmark for
the harness's own statistics.
"""

from __future__ import annotations

import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(name: str, table: str) -> None:
    """Persist a rendered experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
    print()
    print(table)


def time_best_of(fn, repeats: int = 3) -> float:
    """Wall-clock seconds of ``fn()``, best of ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
