"""Ablation: sub-workflow-scoped compilation (Section 7) vs monolithic Apply.

The paper's claim: when dependencies do not span sub-workflow boundaries
and M is the largest number of dependencies in a sub-workflow, the
compiled size drops from O(d^N · |G|) to O(d^M · |G|). The workload has k
sub-workflows, each carrying one width-2 local constraint (so N = k
monolithically, M = 1 per scope); the compiled-size ratio between the two
strategies should grow like 2^k / k.
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_exponential, render_table
from repro.constraints.algebra import disj, order
from repro.core.compiler import compile_workflow
from repro.core.modular import compile_modular
from repro.ctr.formulas import Atom, goal_size, seq
from repro.ctr.rules import Rule, RuleBase
from repro.ctr.traces import traces


def _workload(n_subs: int):
    rules = RuleBase()
    goal_parts = []
    scoped = {}
    flat = []
    for i in range(n_subs):
        head = f"sub{i}"
        rules.add(Rule(head, Atom(f"x{i}") | Atom(f"y{i}")))
        goal_parts.append(Atom(head))
        constraint = disj(order(f"x{i}", f"y{i}"), order(f"y{i}", f"x{i}"))
        scoped[head] = [constraint]
        flat.append(constraint)
    return seq(*goal_parts), rules, scoped, flat


def test_ablation_modular_vs_monolithic(benchmark):
    rows = []
    ratios = []
    for n_subs in (1, 2, 3, 4, 5, 6):
        goal, rules, scoped, flat = _workload(n_subs)
        modular = compile_modular(goal, rules, scoped)
        monolithic = compile_workflow(goal, flat, rules=rules)
        if n_subs <= 4:  # exact trace comparison stays tractable here
            assert traces(modular.goal) == traces(monolithic.goal)

        modular_ms = time_best_of(
            lambda: compile_modular(goal, rules, scoped), repeats=3
        ) * 1e3
        mono_ms = time_best_of(
            lambda: compile_workflow(goal, flat, rules=rules), repeats=3
        ) * 1e3
        m_size = goal_size(modular.goal)
        g_size = goal_size(monolithic.goal)
        rows.append([n_subs, m_size, g_size, g_size / m_size, modular_ms, mono_ms])
        ratios.append(float(g_size) / m_size)

    base, r2 = fit_exponential([float(n) for n in range(1, 7)], ratios)

    goal, rules, scoped, _flat = _workload(4)
    benchmark(lambda: compile_modular(goal, rules, scoped))

    save_table(
        "E9_modular_ablation",
        render_table(
            "E9 (ablation): scoped vs monolithic compilation, k width-2 scopes",
            ["k scopes", "modular size", "monolithic size", "ratio",
             "modular ms", "monolithic ms"],
            rows,
            note=f"size ratio ∝ {base:.2f}^k (r²={r2:.3f}); Section 7: scoping "
            "confines the d^N blow-up to d^M per sub-workflow.",
        ),
    )
    assert ratios[-1] > ratios[0], "scoping should pay off more with more scopes"
    assert base > 1.4, f"expected exponential separation, got base {base:.2f}"
