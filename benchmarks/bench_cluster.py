"""C: the cluster — fidelity under replication, recovery, scaling.

Workload: the service benchmark's shape (concurrent event pairs under
width-2 disjunctive order constraints, every property holding so each
forces a full ``G ∧ C ∧ ¬Φ`` compile), served by a router consistent-
hashing keys onto real subprocess workers. No persistent compile cache:
whatever a worker answers, it computed.

Three gates:

* **C1** — *zero divergence*: every verdict and witness the cluster
  returns — sequential, concurrent, and across distinct replicas — is
  identical to a single daemon's (and hence, by the S5a gate, to direct
  library calls). Corollary 3.5 makes this a correctness property of
  replication, not a statistical hope. Runs anywhere.
* **C2** — *recovery after kill*: SIGKILL a worker; the supervisor must
  restore a healthy replacement within the latency budget, and the
  resurrected worker must serve traffic. Runs anywhere.
* **C3** — *throughput scaling*: 4 workers sustain at least 1.8× the
  request throughput of 1 worker on distinct (non-coalescable) specs.
  This one needs real cores — skipped when ``os.cpu_count() < 4``.

Saved machine-readably as ``results/BENCH_cluster.json`` (consumed by CI).
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest
from conftest import RESULTS_DIR, save_table

from repro.analysis.metrics import render_table
from repro.cluster import cluster_in_thread
from repro.core.resilience import RetryPolicy
from repro.service import serve_in_thread

N_PAIRS = 4
REQUESTS = 12        # per throughput phase (C3)
CLIENTS = 4          # concurrent client threads in C1/C3
RECOVERY_BUDGET_S = 10.0

_RESULTS: dict | None = None


def _spec_text(tag: str = "") -> str:
    """Distinct ``tag``s give distinct specs: different inline keys, so
    they spread across the ring and the batcher cannot coalesce them."""
    names = [(f"a{tag}x{i}", f"b{tag}x{i}") for i in range(N_PAIRS)]
    lines = ["goal: " + " * ".join(f"({a} | {b})" for a, b in names)]
    for a, b in names:
        lines.append(f"constraint: precedes({a}, {b}) or precedes({b}, {a})")
    for i, (a, b) in enumerate(names):
        lines.append(f"property p{i}: precedes({a}, {b}) or precedes({b}, {a})")
        lines.append(f"property h{i}: happens({a}) or happens({b})")
    return "\n".join(lines) + "\n"


def _single_daemon_reference(text: str) -> list[dict]:
    with serve_in_thread(batch_window=0.001) as handle:
        with handle.client() as client:
            return client.verify(text=text)["results"]


def _fidelity_phase() -> dict:
    """C1: sequential + concurrent verify through a 2-worker cluster,
    every response compared row-for-row against a single daemon."""
    text = _spec_text()
    reference = _single_daemon_reference(text)
    handle = cluster_in_thread(workers=2, replicas=2)
    outs: list[dict] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    try:
        with handle.client() as client:
            client.register("bench", text)
            for _ in range(3):
                outs.append(client.verify(spec="bench"))

        def worker():
            try:
                with handle.client() as client:
                    for _ in range(2):
                        out = client.verify(spec="bench")
                        with lock:
                            outs.append(out)
            except BaseException as exc:  # pragma: no cover - gate below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        handle.stop()
    if errors:
        raise errors[0]
    workers_seen = sorted({out["worker"] for out in outs})
    return {
        "requests": len(outs),
        "workers_seen": workers_seen,
        "identical": all(out["results"] == reference for out in outs),
        "degraded": sum(1 for out in outs if out.get("degraded")),
    }


def _recovery_phase() -> dict:
    """C2: SIGKILL a worker mid-service, time the supervisor's recovery."""
    handle = cluster_in_thread(
        workers=2, replicas=2,
        supervisor_kwargs={
            "health_interval": 0.1,
            "restart_policy": RetryPolicy(
                max_attempts=1000, base_delay=0.2,
                multiplier=2.0, max_delay=1.0, jitter=0.5,
            ),
        },
    )
    try:
        text = _spec_text("r")
        reference = _single_daemon_reference(text)
        state = handle.router.supervisor.state_of("w0")
        first_pid = state.handle.pid
        start = time.perf_counter()
        handle.kill_worker("w0")
        deadline = start + 60.0
        while time.perf_counter() < deadline:
            if state.healthy and state.handle.pid != first_pid:
                break
            time.sleep(0.02)
        recovery_s = time.perf_counter() - start
        with handle.client() as client:
            after = client.verify(text=text)
        return {
            "recovered": state.healthy and state.handle.pid != first_pid,
            "recovery_s": round(recovery_s, 3),
            "budget_s": RECOVERY_BUDGET_S,
            "restarts": state.restarts,
            "serves_after_restart": after["results"] == reference,
        }
    finally:
        handle.stop()


def _throughput_phase(n_workers: int) -> tuple[int, float]:
    """``REQUESTS`` verifies of *distinct* inline specs through an
    ``n_workers`` cluster — no coalescing, no cache: pure compile work
    spread by the ring."""
    texts = [_spec_text(f"w{n_workers}n{i}") for i in range(REQUESTS)]
    handle = cluster_in_thread(workers=n_workers, replicas=1)
    errors: list[BaseException] = []
    lock = threading.Lock()
    queue = list(enumerate(texts))
    try:
        with handle.client() as warm:
            warm.healthz()

        def worker():
            with handle.client(timeout=120.0) as client:
                while True:
                    with lock:
                        if not queue:
                            return
                        _, text = queue.pop()
                    try:
                        client.verify(text=text)
                    except BaseException as exc:  # pragma: no cover
                        with lock:
                            errors.append(exc)
                        return

        threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    finally:
        handle.stop()
    if errors:
        raise errors[0]
    return REQUESTS, elapsed


def _measure() -> dict:
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    fidelity = _fidelity_phase()
    recovery = _recovery_phase()

    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        n1, one_s = _throughput_phase(1)
        n4, four_s = _throughput_phase(4)
        scaling = {
            "skipped": False,
            "one_worker": {"requests": n1, "wall_s": round(one_s, 3),
                           "rps": round(n1 / one_s, 2)},
            "four_workers": {"requests": n4, "wall_s": round(four_s, 3),
                             "rps": round(n4 / four_s, 2)},
            "speedup": round((n4 / four_s) / (n1 / one_s), 2),
        }
    else:
        scaling = {
            "skipped": True,
            "reason": f"needs >=4 cores, have {cpu_count}",
        }

    _RESULTS = {
        "benchmark": "cluster",
        "workload": (
            f"{N_PAIRS} concurrent event pairs, {N_PAIRS} width-2 "
            f"disjunctive constraints, {2 * N_PAIRS} properties per "
            "request; 2 workers x 2 replicas (C1/C2), distinct inline "
            "specs (C3); no compile cache"
        ),
        "cpu_count": cpu_count,
        "fidelity": fidelity,
        "recovery": recovery,
        "scaling": scaling,
        "gates": {
            "zero_divergence": (
                fidelity["identical"] and fidelity["degraded"] == 0
            ),
            "recovery_within_budget": (
                recovery["recovered"]
                and recovery["serves_after_restart"]
                and recovery["recovery_s"] <= RECOVERY_BUDGET_S
            ),
            "throughput_1_8x_at_4_workers": (
                None if scaling["skipped"] else scaling["speedup"] >= 1.8
            ),
        },
    }
    return _RESULTS


def test_c1_zero_divergence(benchmark):
    results = _measure()
    assert results["gates"]["zero_divergence"], (
        "cluster verdicts diverged from the single daemon "
        f"(identical={results['fidelity']['identical']}, "
        f"degraded={results['fidelity']['degraded']})"
    )

    from repro.core.verify import verify_properties
    from repro.spec import parse_specification

    spec = parse_specification(_spec_text())
    benchmark(lambda: verify_properties(
        spec.goal, list(spec.constraints),
        [prop for _, prop in spec.properties[:1]], rules=spec.rules,
    ))

    scaling = results["scaling"]
    rows = [
        ["fidelity", f"{results['fidelity']['requests']} requests",
         "identical" if results["fidelity"]["identical"] else "DIVERGED"],
        ["recovery", f"{results['recovery']['recovery_s']} s",
         "ok" if results["recovery"]["recovered"] else "FAILED"],
        ["scaling 1->4",
         "skipped" if scaling["skipped"] else f"{scaling['speedup']}x",
         scaling.get("reason", "")],
    ]
    save_table(
        "C_cluster",
        render_table(
            "C: cluster fidelity, recovery, scaling",
            ["phase", "result", "note"],
            rows,
            note=(
                f"workers seen: {results['fidelity']['workers_seen']}; "
                f"recovery budget {RECOVERY_BUDGET_S}s on cpu_count="
                f"{results['cpu_count']}."
            ),
        ),
    )


def test_c2_recovery_after_kill_within_budget():
    results = _measure()
    recovery = results["recovery"]
    assert recovery["recovered"], "worker was never restarted"
    assert recovery["serves_after_restart"], (
        "resurrected worker returned different verdicts"
    )
    assert recovery["recovery_s"] <= RECOVERY_BUDGET_S, (
        f"recovery took {recovery['recovery_s']}s, "
        f"budget {RECOVERY_BUDGET_S}s"
    )


def test_c3_throughput_scaling_1_8x():
    results = _measure()
    scaling = results["scaling"]
    if scaling["skipped"]:
        pytest.skip(scaling["reason"])
    assert results["gates"]["throughput_1_8x_at_4_workers"], (
        f"expected >=1.8x throughput from 1 to 4 workers, got "
        f"{scaling['speedup']}x ({scaling['one_worker']['rps']} -> "
        f"{scaling['four_workers']['rps']} req/s)"
    )


def test_c4_emit_json():
    results = _measure()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
