"""E10: scheduling-automaton synthesis vs Apply-based compilation (Section 6).

"Process scheduling using the standard toolkit of process algebras and
temporal logic requires automata that are exponential in the size of the
original graph" — whereas the CTR compilation is linear in the graph
(exponential only in the constraints).

The sweep widens a parallel workflow under one fixed order constraint and
measures both schedulers' *setup* cost: states and wall-time for the
automaton synthesis, compiled-goal size and wall-time for Apply/Excise.
Both schedulers then produce identical schedule languages (asserted on the
small instances).
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_exponential, fit_power_law, render_table
from repro.baselines.automata_scheduler import AutomatonScheduler
from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import goal_size
from repro.graph.generators import parallel_chains


def test_e10_synthesis_cost_vs_compilation(benchmark):
    constraint = order("t1_1", "t2_1")
    rows = []
    widths = [2, 3, 4, 5, 6]
    sizes, compile_sizes = [], []
    automaton_states = []
    for width in widths:
        goal = parallel_chains(width, 2)
        size = goal_size(goal)

        compile_seconds = time_best_of(
            lambda: compile_workflow(goal, [constraint]), repeats=3
        )
        compiled = compile_workflow(goal, [constraint])

        synthesis_seconds = time_best_of(
            lambda: AutomatonScheduler.build(goal, [constraint]), repeats=1
        )
        automaton = AutomatonScheduler.build(goal, [constraint])

        if width <= 3:  # language equality is cheap to assert here
            assert set(compiled.schedules()) == _language(automaton)

        rows.append(
            [
                width,
                size,
                compiled.compiled_size,
                compile_seconds * 1e3,
                automaton.state_count,
                synthesis_seconds * 1e3,
            ]
        )
        sizes.append(float(size))
        compile_sizes.append(float(compiled.compiled_size))
        automaton_states.append(float(automaton.state_count))

    compile_k, compile_r2 = fit_power_law(sizes, compile_sizes)
    automaton_base, automaton_r2 = fit_exponential(
        [float(w) for w in widths], automaton_states
    )

    goal = parallel_chains(4, 2)
    benchmark(lambda: compile_workflow(goal, [constraint]))

    save_table(
        "E10_automata_synthesis",
        render_table(
            "E10: CTR compilation vs scheduling-automaton synthesis",
            ["width", "|G|", "compiled size", "compile ms",
             "automaton states", "synthesis ms"],
            rows,
            note=(
                f"compiled size ∝ |G|^{compile_k:.2f} (r²={compile_r2:.3f}); "
                f"automaton states ∝ {automaton_base:.2f}^width "
                f"(r²={automaton_r2:.3f}) — exponential in the graph, as the "
                "paper charges against the standard toolkit."
            ),
        ),
    )
    assert compile_k < 1.3
    assert automaton_base > 2.0


def _language(scheduler, limit: int = 100_000):
    out = set()

    def dfs(state, prefix):
        if state in scheduler.accepting:
            out.add(prefix)
        for event, target in scheduler.transitions.get(state, {}).items():
            dfs(target, prefix + (event,))

    dfs(scheduler.initial_state, ())
    return out
