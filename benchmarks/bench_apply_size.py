"""E3: Theorem 5.11(1) — the size of Apply(C, G) is O(d^N · |G|).

Three sweeps validate the bound's shape:

* **E3a** — serial/order constraints only (d = 1): |Apply(C, G)| grows
  *linearly* in |G| (the corollary of Theorem 5.11). Measured exponent of
  a power-law fit must be ≈ 1.
* **E3b** — N constraints of width d = 2 over a fixed graph:
  |Apply(C, G)| grows like 2^N. Measured base of an exponential fit must
  be ≈ 2 (at most 2 — simplification only shrinks it).
* **E3c** — constraint width d ∈ {1, 2, 3} at fixed N: size tracks d^N.
"""

from conftest import save_table

from repro.analysis.metrics import fit_exponential, fit_power_law, render_table
from repro.constraints.algebra import disj, order
from repro.core.apply import apply_all
from repro.ctr.formulas import goal_size
from repro.graph.generators import parallel_chains, random_goal

# Disjoint event pairs used to build width-d constraints over one graph.
_PAIRS = [("p1", "q1"), ("p2", "q2"), ("p3", "q3"), ("p4", "q4"),
          ("p5", "q5"), ("p6", "q6"), ("p7", "q7")]


def _pair_goal(n_pairs: int, padding: int = 4):
    """All pair events concurrent, plus a serial pad to control |G|."""
    from repro.ctr.formulas import Atom, par, seq

    events = [Atom(e) for pair in _PAIRS[:n_pairs] for e in pair]
    pad = [Atom(f"pad{i}") for i in range(padding)]
    return seq(par(*events), *pad)


def _width_d_constraint(pair_index: int, d: int):
    """A constraint over pair i with exactly d disjuncts in normal form."""
    a, b = _PAIRS[pair_index]
    alternatives = [order(a, b), order(b, a)]
    if d >= 3:
        c = f"r{pair_index}"  # third event: widen the goal accordingly
        alternatives.append(order(a, c))
    return disj(*alternatives[:d]) if d > 1 else alternatives[0]


def test_e3a_serial_only_is_linear_in_graph(benchmark):
    # Choice-free graphs isolate the size claim: with OR nodes present,
    # Apply may also *prune* branches that cannot satisfy the constraint,
    # shrinking the result below |G| (a stronger outcome than the bound).
    sizes = [20, 40, 80, 160, 320]
    rows = []
    xs, ys = [], []
    for n in sizes:
        goal = random_goal(n, seed=7, p_choice=0.0)
        events = sorted(_event_names(goal))
        constraints = [order(events[0], events[-1]), order(events[1], events[-2])]
        applied = apply_all(constraints, goal)
        rows.append([n, goal_size(goal), goal_size(applied)])
        xs.append(float(goal_size(goal)))
        ys.append(float(goal_size(applied)))
    exponent, r2 = fit_power_law(xs, ys)

    goal = random_goal(160, seed=7, p_choice=0.0)
    events = sorted(_event_names(goal))
    benchmark(lambda: apply_all([order(events[0], events[-1])], goal))

    save_table(
        "E3a_serial_only_linear",
        render_table(
            "E3a: |Apply(C,G)| vs |G|, serial constraints only (d=1)",
            ["events", "|G|", "|Apply(C,G)|"],
            rows,
            note=f"power-law fit: size ∝ |G|^{exponent:.3f} (r²={r2:.4f}); "
            "paper claims linear (exponent 1).",
        ),
    )
    assert 0.8 < exponent < 1.25, f"expected ~linear growth, got exponent {exponent}"


def test_e3b_exponential_in_constraint_count(benchmark):
    rows = []
    xs, ys = [], []
    for n_constraints in range(1, 8):
        goal = _pair_goal(7)
        constraints = [_width_d_constraint(i, d=2) for i in range(n_constraints)]
        applied = apply_all(constraints, goal)
        rows.append([n_constraints, 2, goal_size(applied)])
        xs.append(float(n_constraints))
        ys.append(float(goal_size(applied)))
    base, r2 = fit_exponential(xs, ys)

    goal = _pair_goal(7)
    constraints = [_width_d_constraint(i, d=2) for i in range(5)]
    benchmark(lambda: apply_all(constraints, goal))

    save_table(
        "E3b_exponential_in_N",
        render_table(
            "E3b: |Apply(C,G)| vs N at constraint width d=2, fixed G",
            ["N", "d", "|Apply(C,G)|"],
            rows,
            note=f"exponential fit: size ∝ {base:.3f}^N (r²={r2:.4f}); "
            "paper bound: O(d^N · |G|) with d=2.",
        ),
    )
    assert 1.6 < base <= 2.4, f"expected ~2^N growth, got base {base}"


def test_e3c_width_sweep(benchmark):
    from repro.ctr.formulas import Atom, par, seq

    n_constraints = 4
    rows = []
    for d in (1, 2, 3):
        events = [Atom(e) for pair in _PAIRS[:n_constraints] for e in pair]
        extras = [Atom(f"r{i}") for i in range(n_constraints)] if d >= 3 else []
        goal = seq(par(*events, *extras), Atom("pad0"))
        constraints = [_width_d_constraint(i, d) for i in range(n_constraints)]
        applied = apply_all(constraints, goal)
        rows.append([d, n_constraints, d**n_constraints, goal_size(applied)])

    goal = _pair_goal(4)
    constraints = [_width_d_constraint(i, 2) for i in range(4)]
    benchmark(lambda: apply_all(constraints, goal))

    save_table(
        "E3c_width_sweep",
        render_table(
            "E3c: |Apply(C,G)| vs constraint width d at N=4",
            ["d", "N", "d^N", "|Apply(C,G)|"],
            rows,
            note="size tracks the d^N bound of Theorem 5.11.",
        ),
    )
    # Size must grow monotonically with d and stay within the d^N envelope
    # times a graph-size factor.
    sizes = [row[3] for row in rows]
    assert sizes[0] < sizes[1] < sizes[2]


def _event_names(goal):
    from repro.ctr.formulas import event_names

    return event_names(goal)
