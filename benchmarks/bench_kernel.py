"""K: the flat kernel backend vs the object-graph engine (PR 10).

Three gates over N=7 concurrent workloads (seven parallel tasks with
order constraints — 7! interleavings before pruning):

* **K1 — speedup:** the kernel answers the verify-side query
  (``count_traces`` over the compiled goal, two constraints) and the
  scheduling-side queries (``viable_events`` + ``run``, three
  constraints) at least 5x faster than the object engine. The object
  engine shuffles every interleaving the Apply-transformed goal denotes
  before filtering; the kernel's pruned integer-table search never
  materializes a prefix the constraints already killed — each added
  constraint *slows* the object enumeration and *speeds* the kernel.
* **K2 — zero divergence:** traces (N=6 keeps the object engine's
  enumeration CI-sized), schedule enumeration in order, witness
  extraction, and batched ``verify_properties`` at ``jobs=2`` are
  bit-identical across backends.
* **K3 — dispatch overhead:** shipping the goal to a worker pool via a
  shared-memory handle (export once + tiny handle pickle per task +
  one attach per worker) costs less than pickling the goal into every
  task, at 16 tasks / 4 workers.

The sweep is saved machine-readably as ``results/BENCH_kernel.json``.
"""

from __future__ import annotations

import json
import pickle
import time

from conftest import RESULTS_DIR, save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.constraints.algebra import must, order
from repro.core import kernel_backend
from repro.core.compiler import compile_workflow
from repro.core.scheduler import Scheduler
from repro.core.verify import verify_properties, verify_property
from repro.ctr.formulas import event_names
from repro.ctr.kernel import KernelScheduler, lower_goal
from repro.ctr.traces import count_traces, traces
from repro.graph.generators import parallel_chains

N = 7
ENUM_LIMIT = 500_000_000
_cache: dict = {}


def _workload(n: int = N, ncons: int = 2):
    goal = parallel_chains(n, 1)
    names = sorted(event_names(goal))
    constraints = [order(names[2 * i], names[2 * i + 1]) for i in range(ncons)]
    return goal, names, constraints


def _measure() -> dict:
    if _cache:
        return _cache

    # Verify-side workload: two order constraints; the object engine
    # still finishes its shuffle in CI time (one repeat, ~6s).
    goal_v, _, cons_v = _workload(ncons=2)
    compiled_v = compile_workflow(goal_v, cons_v)
    assert compiled_v.consistent
    started = time.perf_counter()
    program_v = lower_goal(compiled_v.goal)
    lower_s = time.perf_counter() - started
    obj_count_s = time_best_of(
        lambda: count_traces(compiled_v.goal, ENUM_LIMIT), repeats=1
    )
    ker_count_s = time_best_of(lambda: program_v.count_traces(ENUM_LIMIT))

    # Scheduling-side workload: three constraints; viability analysis
    # plus one schedule extraction, both from a cold scheduler.
    goal_s, _, cons_s = _workload(ncons=3)
    compiled_s = compile_workflow(goal_s, cons_s)
    assert compiled_s.consistent
    program_s = lower_goal(compiled_s.goal)
    obj_viable_s = time_best_of(lambda: Scheduler(compiled_s.goal).viable_events())
    ker_viable_s = time_best_of(lambda: KernelScheduler(program_s).viable_events())
    obj_run_s = time_best_of(lambda: Scheduler(compiled_s.goal).run())
    ker_run_s = time_best_of(lambda: KernelScheduler(program_s).run())

    # Full enumeration rides along in the table (its speedup is smaller:
    # both engines must materialize every one of the legal schedules).
    obj_enum_s = time_best_of(
        lambda: list(Scheduler(compiled_s.goal).enumerate_schedules(ENUM_LIMIT)),
        repeats=1,
    )
    ker_enum_s = time_best_of(
        lambda: list(KernelScheduler(program_s).enumerate_schedules(ENUM_LIMIT))
    )

    obj_sched_s = obj_viable_s + obj_run_s
    ker_sched_s = ker_viable_s + ker_run_s
    _cache.update({
        "n": N,
        "verify_constraints": len(cons_v),
        "scheduling_constraints": len(cons_s),
        "legal_schedules": int(program_s.count_traces(ENUM_LIMIT)),
        "lower_ms": lower_s * 1e3,
        "verify": {
            "object_s": obj_count_s,
            "kernel_s": ker_count_s,
            "speedup": obj_count_s / ker_count_s,
        },
        "scheduling": {
            "object_s": obj_sched_s,
            "kernel_s": ker_sched_s,
            "speedup": obj_sched_s / ker_sched_s,
        },
        "enumerate": {
            "object_s": obj_enum_s,
            "kernel_s": ker_enum_s,
            "speedup": obj_enum_s / ker_enum_s,
        },
        "run": {
            "object_s": obj_run_s,
            "kernel_s": ker_run_s,
            "speedup": obj_run_s / max(ker_run_s, 1e-9),
        },
    })
    return _cache


def test_k1_kernel_5x_on_verify_and_scheduling():
    results = _measure()
    rows = [
        [name, results[name]["object_s"] * 1e3, results[name]["kernel_s"] * 1e3,
         results[name]["speedup"]]
        for name in ("verify", "scheduling", "enumerate", "run")
    ]
    save_table(
        "K1_kernel",
        render_table(
            f"K1: flat kernel vs object engine at N={results['n']} "
            f"(verify: {results['verify_constraints']} constraints; "
            f"scheduling: {results['scheduling_constraints']} constraints, "
            f"{results['legal_schedules']} legal schedules)",
            ["query", "object ms", "kernel ms", "speedup"],
            rows,
            note=f"one-time lowering {results['lower_ms']:.2f}ms; the "
            "object engine shuffles every interleaving of the "
            "Apply-transformed goal, the kernel's integer-table search "
            "prunes constraint-dead prefixes as it walks.",
        ),
    )
    assert results["verify"]["speedup"] >= 5.0, (
        f"verify-side speedup {results['verify']['speedup']:.1f}x < 5x"
    )
    assert results["scheduling"]["speedup"] >= 5.0, (
        f"scheduling-side speedup {results['scheduling']['speedup']:.1f}x < 5x"
    )


def test_k2_zero_divergence():
    # Full trace equality on an instance whose object-side enumeration
    # stays CI-sized.
    goal6, _, cons6 = _workload(n=6, ncons=2)
    compiled6 = compile_workflow(goal6, cons6)
    program6 = lower_goal(compiled6.goal)
    assert program6.traces(ENUM_LIMIT) == traces(compiled6.goal, ENUM_LIMIT)

    goal, names, constraints = _workload(ncons=3)
    compiled = compile_workflow(goal, constraints)
    program = lower_goal(compiled.goal)
    assert list(KernelScheduler(program).enumerate_schedules(ENUM_LIMIT)) == \
        list(Scheduler(compiled.goal).enumerate_schedules(ENUM_LIMIT))
    assert KernelScheduler(program).run() == Scheduler(compiled.goal).run()

    props = [must(names[0]), order(names[1], names[0]), must("never_happens")]
    for prop in props:
        obj = verify_property(goal6, cons6, prop, backend="object")
        ker = verify_property(goal6, cons6, prop, backend="kernel")
        assert (obj.holds, obj.witness) == (ker.holds, ker.witness)
    batch_obj = verify_properties(goal6, cons6, props, jobs=2,
                                  backend="object")
    batch_ker = verify_properties(goal6, cons6, props, jobs=2,
                                  backend="kernel")
    assert [(r.holds, r.witness) for r in batch_obj] == \
        [(r.holds, r.witness) for r in batch_ker]
    _cache.setdefault("divergence", 0)


def test_k3_shm_dispatch_beats_pickle():
    tasks, workers = 16, 4
    goal, _, constraints = _workload(ncons=2)
    compiled = compile_workflow(goal, constraints)
    expanded = compiled.goal

    probe = kernel_backend.export_goal(expanded)
    if probe is None:  # pragma: no cover - diskless runner
        import pytest

        pytest.skip("shared memory unavailable on this runner")
    kernel_backend.release_goal(probe)

    def pickle_dispatch():
        # What the pool's queue feeder does with the goal in every task,
        # plus the worker-side decode.
        for _ in range(tasks):
            pickle.loads(pickle.dumps(expanded))

    def shm_dispatch():
        handle = kernel_backend.export_goal(expanded)
        try:
            for _ in range(tasks):
                pickle.loads(pickle.dumps(handle))
            for _ in range(workers):
                # Each worker attaches (and decodes) once, then serves
                # every further task from its cache.
                kernel_backend._attached_goals.clear()
                kernel_backend.attach_goal(handle)
        finally:
            kernel_backend.release_goal(handle)

    pickle_s = time_best_of(pickle_dispatch)
    shm_s = time_best_of(shm_dispatch)
    goal_bytes = len(pickle.dumps(expanded))
    handle_bytes = len(pickle.dumps(probe))
    _cache["dispatch"] = {
        "tasks": tasks,
        "workers": workers,
        "goal_pickle_bytes": goal_bytes,
        "handle_pickle_bytes": handle_bytes,
        "pickle_s": pickle_s,
        "shm_s": shm_s,
    }
    assert shm_s < pickle_s, (
        f"shm dispatch {shm_s * 1e3:.2f}ms should undercut per-task goal "
        f"pickling {pickle_s * 1e3:.2f}ms at {tasks} tasks"
    )
    assert handle_bytes < goal_bytes


def test_k4_emit_json():
    results = dict(_measure())
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_kernel.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
