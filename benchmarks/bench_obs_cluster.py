"""OC: fleet observability — tracing overhead, federation exactness.

Workload: sequential verifies of one registered spec through a
2-worker/2-replica cluster of real subprocess workers, with distributed
tracing either off or on end to end (router + workers + trace sink).
The per-request cost is dominated by the HTTP round trip and the
worker's batch window — identical in both modes — so the measured delta
isolates what tracing itself adds (header minting/parsing, span
bookkeeping, contextvars).

Three gates:

* **OC1** — *tracing is affordable*: the traced cluster's best-round
  wall time stays within 5% of the untraced cluster's. Observability
  that taxes the hot path does not get turned on in production.
* **OC2** — *federation is bookkeeping, not estimation*: the counter
  and histogram totals on ``/cluster/metrics`` equal the sum of the
  per-worker scrapes **exactly** (recomputed here from the same
  response), bit for bit.
* **OC3** — *traces reassemble*: a traced request's spans, collected
  fleet-wide, form a single tree rooted at the router with the serving
  worker's segment beneath it.

Saved machine-readably as ``results/BENCH_obs_cluster.json`` (CI).
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR, save_table

from repro.analysis.metrics import render_table
from repro.cluster import cluster_in_thread
from repro.obs.context import IdSource
from repro.obs.distributed import assemble
from repro.obs.metrics import sum_scrapes

N_PAIRS = 3
REQUESTS = 25        # per timing round
ROUNDS = 5           # best-of rounds per mode per pass
PASSES = 3           # fresh cluster instantiations (early exit on pass)
OVERHEAD_BUDGET = 0.05

_RESULTS: dict | None = None


def _spec_text() -> str:
    names = [(f"a{i}", f"b{i}") for i in range(N_PAIRS)]
    lines = ["goal: " + " * ".join(f"({a} | {b})" for a, b in names)]
    for a, b in names:
        lines.append(f"constraint: precedes({a}, {b}) or precedes({b}, {a})")
    for i, (a, b) in enumerate(names):
        lines.append(f"property p{i}: precedes({a}, {b}) "
                     f"or precedes({b}, {a})")
    return "\n".join(lines) + "\n"


def _one_round(client) -> float:
    start = time.perf_counter()
    for _ in range(REQUESTS):
        client.verify(spec="bench")
    return time.perf_counter() - start


def _overhead_pass(tmp_dir) -> tuple[float, float]:
    """One interleaved timing pass: both clusters alive at once, rounds
    alternating between them, so machine-load drift hits both modes
    equally and the best-of delta isolates tracing itself."""
    plain = cluster_in_thread(workers=2, replicas=2)
    traced = cluster_in_thread(workers=2, replicas=2, tracing=True,
                               ids_seed=42, trace_dir=tmp_dir)
    try:
        with plain.client() as plain_client, \
                traced.client(ids=IdSource(seed=99)) as traced_client:
            for client in (plain_client, traced_client):
                client.register("bench", _spec_text())
                client.verify(spec="bench")  # warm the compile memo
            plain_s, traced_s = float("inf"), float("inf")
            for _ in range(ROUNDS):
                plain_s = min(plain_s, _one_round(plain_client))
                traced_s = min(traced_s, _one_round(traced_client))
    finally:
        traced.stop()
        plain.stop()
    return plain_s, traced_s


def _overhead_phase(tmp_dir) -> dict:
    """OC1: the same workload, tracing off vs on end to end.

    Minima are taken across whole cluster instantiations as well as
    rounds: which cores the OS hands a worker subprocess is luck that
    lasts the process's lifetime, so a single instantiation can pin the
    traced fleet to a busy core for every round. A pass is retried (up
    to ``PASSES``) only while the measured overhead still exceeds the
    budget — the minimum over honest measurements of both modes.
    """
    plain_s, traced_s = float("inf"), float("inf")
    passes = 0
    for _ in range(PASSES):
        pass_plain, pass_traced = _overhead_pass(tmp_dir)
        plain_s = min(plain_s, pass_plain)
        traced_s = min(traced_s, pass_traced)
        passes += 1
        if traced_s / plain_s - 1.0 <= OVERHEAD_BUDGET:
            break

    return {
        "passes": passes,
        "requests_per_round": REQUESTS,
        "rounds": ROUNDS,
        "plain_s": round(plain_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead": round(traced_s / plain_s - 1.0, 4),
        "budget": OVERHEAD_BUDGET,
    }


def _federation_phase(tmp_dir) -> dict:
    """OC2 + OC3 on one traced cluster: exact totals, assembled trace."""
    handle = cluster_in_thread(workers=2, replicas=2, tracing=True,
                               ids_seed=7, trace_dir=tmp_dir)
    try:
        client = handle.client(ids=IdSource(seed=11))
        try:
            client.register("bench", _spec_text())
            for _ in range(5):
                client.verify(spec="bench")
            trace_id = client.last_trace_id
            federated = client.cluster_metrics(format="json")
            prometheus = client.cluster_metrics()
            deadline = time.monotonic() + 10.0
            spans = []
            while time.monotonic() < deadline:
                spans = client.trace(trace_id)["spans"]
                if any(s["segment"] != "router" for s in spans):
                    break
                time.sleep(0.05)
        finally:
            client.close()
    finally:
        handle.stop()

    recomputed = sum_scrapes(federated["workers"])
    roots = assemble(spans)
    segments = sorted({s["segment"] for s in spans})
    return {
        "workers_scraped": sorted(federated["workers"]),
        "counters_federated": len(federated["totals"].get("counters", {})),
        "totals_exact": federated["totals"] == recomputed,
        "prometheus_has_worker_labels": 'worker="w0"' in prometheus,
        "trace_segments": segments,
        "trace_roots": len(roots),
        "root_segment": roots[0]["segment"] if roots else None,
    }


def _measure(tmp_dir) -> dict:
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    overhead = _overhead_phase(tmp_dir)
    federation = _federation_phase(tmp_dir)

    _RESULTS = {
        "benchmark": "obs_cluster",
        "workload": (
            f"{N_PAIRS} concurrent event pairs, {N_PAIRS} properties per "
            f"request; {REQUESTS} sequential verifies x {ROUNDS} rounds "
            "(best-of) through 2 workers x 2 replicas; warm compile memo"
        ),
        "overhead": overhead,
        "federation": federation,
        "gates": {
            "tracing_overhead_within_5pct": (
                overhead["overhead"] <= OVERHEAD_BUDGET
            ),
            "federated_totals_exact": federation["totals_exact"],
            "distributed_trace_assembles": (
                federation["trace_roots"] == 1
                and federation["root_segment"] == "router"
                and len(federation["trace_segments"]) >= 2
            ),
        },
    }
    return _RESULTS


def test_oc1_tracing_overhead_within_budget(tmp_path_factory, benchmark):
    results = _measure(tmp_path_factory.mktemp("traces"))
    overhead = results["overhead"]
    assert results["gates"]["tracing_overhead_within_5pct"], (
        f"tracing added {overhead['overhead']:.1%} to the cluster path "
        f"(budget {OVERHEAD_BUDGET:.0%}): {overhead['plain_s']}s -> "
        f"{overhead['traced_s']}s"
    )

    from repro.obs.context import TraceContext, format_trace_header, \
        parse_trace_header

    ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    benchmark(lambda: parse_trace_header(format_trace_header(ctx)))

    federation = results["federation"]
    rows = [
        ["tracing overhead", f"{overhead['overhead']:+.1%}",
         f"budget {OVERHEAD_BUDGET:.0%}"],
        ["federated totals",
         "exact" if federation["totals_exact"] else "DIVERGED",
         f"{federation['counters_federated']} counters"],
        ["trace assembly", f"{federation['trace_roots']} root(s)",
         " ".join(federation["trace_segments"])],
    ]
    save_table(
        "OC_obs_cluster",
        render_table(
            "OC: fleet observability — overhead, federation, assembly",
            ["phase", "result", "note"],
            rows,
            note=(
                f"{REQUESTS} requests x {ROUNDS} rounds, best-of; "
                f"plain {overhead['plain_s']}s vs traced "
                f"{overhead['traced_s']}s."
            ),
        ),
    )


def test_oc2_federated_totals_exact(tmp_path_factory):
    results = _measure(tmp_path_factory.mktemp("traces"))
    assert results["gates"]["federated_totals_exact"], (
        "/cluster/metrics totals diverged from the recomputed sum of "
        "per-worker scrapes"
    )
    assert results["federation"]["prometheus_has_worker_labels"]


def test_oc3_distributed_trace_assembles(tmp_path_factory):
    results = _measure(tmp_path_factory.mktemp("traces"))
    federation = results["federation"]
    assert results["gates"]["distributed_trace_assembles"], (
        f"expected one router-rooted tree spanning >=2 segments, got "
        f"{federation['trace_roots']} root(s) over "
        f"{federation['trace_segments']}"
    )


def test_oc4_emit_json(tmp_path_factory):
    results = _measure(tmp_path_factory.mktemp("traces"))
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs_cluster.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
