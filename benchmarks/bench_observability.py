"""O1/O2: the cost of the observability subsystem.

O1 gates the *disabled* path: every hook in the engine's drive loop checks
``Observability.active`` once and falls through, so an engine built with
the default ``OBS_DISABLED`` must run within 3% of the same engine with an
``active`` observability object whose sinks are all null (a
:class:`~repro.obs.tracer.NullTracer`, no metrics, no recorder). That
forced-active configuration pays for every instrumented branch and every
``NullTracer.span`` call — the worst case the disabled default can hide.

O2 reports (without gating) what full instrumentation costs: tracer +
metrics + flight recorder all on, against the disabled default.
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.core.compiler import compile_workflow
from repro.core.engine import WorkflowEngine
from repro.db.oracle import TransitionOracle, insert_op
from repro.db.state import Database
from repro.graph.generators import serial_chain
from repro.obs import NullTracer, Observability


def _chain_oracle(length: int) -> TransitionOracle:
    oracle = TransitionOracle()
    for i in range(1, length + 1):
        oracle.register(f"e{i}", insert_op("done", f"e{i}"))
    return oracle


def _forced_active_null() -> Observability:
    """All hooks taken, all sinks null: the instrumented-branch worst case."""
    obs = Observability(tracer=NullTracer(), metrics=None, recorder=None)
    obs.active = True
    return obs


def test_o1_disabled_overhead(benchmark):
    lengths = [50, 100, 200, 400]
    rows = []
    disabled_total = hooks_total = 0.0
    for length in lengths:
        compiled = compile_workflow(serial_chain(length), [])
        oracle = _chain_oracle(length)

        def run_disabled():
            return WorkflowEngine(compiled, oracle=oracle, db=Database()).run()

        def run_hooked():
            return WorkflowEngine(compiled, oracle=oracle, db=Database(),
                                  obs=_forced_active_null()).run()

        assert len(run_disabled().schedule) == length
        assert len(run_hooked().schedule) == length
        disabled = time_best_of(run_disabled, repeats=7)
        hooked = time_best_of(run_hooked, repeats=7)
        disabled_total += disabled
        hooks_total += hooked
        rows.append([length, disabled * 1e3, hooked * 1e3,
                     (hooked / disabled - 1) * 100])

    compiled = compile_workflow(serial_chain(100), [])
    oracle = _chain_oracle(100)
    benchmark(lambda: WorkflowEngine(compiled, oracle=oracle,
                                     db=Database()).run())

    overhead = hooks_total / disabled_total - 1
    save_table(
        "O1_observability_overhead",
        render_table(
            "O1: default-disabled engine vs forced-active null-sink hooks",
            ["chain length", "disabled ms", "hooks ms", "overhead %"],
            rows,
            note=(
                f"aggregate instrumented-branch overhead: "
                f"{overhead * 100:.1f}% (budget 3%); the disabled default "
                "additionally skips these branches entirely."
            ),
        ),
    )
    assert overhead <= 0.03, (
        f"observability hook overhead {overhead * 100:.1f}% exceeds "
        "the 3% budget"
    )


def test_o2_enabled_cost(benchmark):
    lengths = [50, 100, 200]
    rows = []
    for length in lengths:
        compiled = compile_workflow(serial_chain(length), [])
        oracle = _chain_oracle(length)

        def run_disabled():
            return WorkflowEngine(compiled, oracle=oracle, db=Database()).run()

        def run_enabled():
            obs = Observability.enabled()
            report = WorkflowEngine(compiled, oracle=oracle, db=Database(),
                                    obs=obs).run()
            return report, obs

        report, obs = run_enabled()
        assert len(report.schedule) == length
        assert len(obs.recorder.decisions) == length
        disabled = time_best_of(run_disabled, repeats=5)
        enabled = time_best_of(run_enabled, repeats=5)
        rows.append([length, disabled * 1e3, enabled * 1e3,
                     enabled / disabled])

    compiled = compile_workflow(serial_chain(100), [])
    oracle = _chain_oracle(100)
    benchmark(lambda: WorkflowEngine(compiled, oracle=oracle, db=Database(),
                                     obs=Observability.enabled()).run())

    save_table(
        "O2_full_instrumentation_cost",
        render_table(
            "O2: fully-instrumented run (spans + metrics + recorder) vs "
            "disabled",
            ["chain length", "disabled ms", "enabled ms", "slowdown x"],
            rows,
            note=(
                "informational, not gated: the enabled path records one "
                "span, one decision (with a database digest), and one "
                "latency observation per step."
            ),
        ),
    )
