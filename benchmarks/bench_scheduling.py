"""E6: pro-active vs passive scheduling (Section 4).

After compilation, picking a legal schedule is linear in the original
graph per path; the passive baselines re-validate the constraint store on
every arriving event, costing quadratic time per sequence ("each of these
schedulers takes at least quadratic time in the number of events").

The sweep runs both schedulers over serial workflows of growing length
with a fixed number of order constraints, regresses time against path
length, and reports the measured exponents and the speedup at the largest
size.
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_power_law, render_table
from repro.baselines.passive import validate_sequence
from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.graph.generators import serial_chain


def _workload(length: int):
    goal = serial_chain(length)
    constraints = [
        order(f"e{i}", f"e{i + length // 4}") for i in range(1, length // 2, max(1, length // 8))
    ][:4]
    return goal, constraints


def test_e6_proactive_vs_passive_scheduling(benchmark):
    lengths = [40, 80, 160, 320, 640, 1280]
    rows = []
    xs, pro_ys, passive_ys = [], [], []
    for length in lengths:
        goal, constraints = _workload(length)
        compiled = compile_workflow(goal, constraints)
        assert compiled.consistent
        scheduler = compiled.scheduler()

        def proactive_run():
            scheduler.reset()
            return scheduler.run()

        schedule = proactive_run()
        pro = time_best_of(proactive_run, repeats=3)
        passive = time_best_of(
            lambda: validate_sequence(schedule, constraints), repeats=3
        )
        rows.append([length, pro * 1e3, passive * 1e3, passive / pro])
        xs.append(float(length))
        pro_ys.append(pro)
        passive_ys.append(passive)

    pro_k, pro_r2 = fit_power_law(xs, pro_ys)
    passive_k, passive_r2 = fit_power_law(xs, passive_ys)

    goal, constraints = _workload(80)
    compiled = compile_workflow(goal, constraints)

    def run_once():
        s = compiled.scheduler()
        return s.run()

    benchmark(run_once)

    save_table(
        "E6_scheduling",
        render_table(
            "E6: time to produce/validate one schedule vs path length",
            ["path length", "pro-active ms", "passive ms", "passive/pro-active"],
            rows,
            note=(
                f"pro-active fit: t ∝ n^{pro_k:.2f} (r²={pro_r2:.3f}); "
                f"passive fit: t ∝ n^{passive_k:.2f} (r²={passive_r2:.3f}). "
                "paper: linear per path after compilation vs quadratic passive "
                "validation."
            ),
        ),
    )
    assert pro_k < 1.25, f"pro-active scheduling should be ~linear, got {pro_k:.2f}"
    assert passive_k > pro_k + 0.4, (
        f"passive ({passive_k:.2f}) should grow clearly faster "
        f"than pro-active ({pro_k:.2f})"
    )
    assert passive_k > 1.4, f"passive validation should trend quadratic, got {passive_k:.2f}"
