"""S1: hash-consing turns the d^N tree into a small DAG, and the compile
cache makes re-compilation an O(dag) disk load.

Workload: E3b (the Theorem 5.11 exponential sweep) — seven concurrent
event pairs plus a serial pad, constrained by N width-2 disjunctive order
constraints. The *tree* size of Apply(C, G) grows like 2^N; the gates
check that structural sharing and the persistent cache absorb that
growth:

* **S1a** — at the largest N, ``dag_size`` is at least 5× below the tree
  size (sharing absorbs ≥80% of the blow-up);
* **S1b** — a warm-cache compile (persistent :class:`CompileCache` hit)
  is at least 10× faster than the cold compile that populated it;
* **S1c** — compiling with interning disabled yields a *structurally
  identical* goal: hash-consing is a pure representation change.

Besides the usual table, the sweep is saved machine-readably as
``results/BENCH_sharing.json`` (consumed by CI).
"""

from __future__ import annotations

import json

from bench_apply_size import _pair_goal, _width_d_constraint
from conftest import RESULTS_DIR, save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.core.compiler import CompileCache, compile_workflow
from repro.ctr.formulas import interning

MAX_N = 7
_RESULTS: dict | None = None


def _measure(tmp_path) -> dict:
    """The full sharing/cache measurement (computed once per run)."""
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    sweep = []
    for n in range(1, MAX_N + 1):
        goal = _pair_goal(MAX_N)
        constraints = [_width_d_constraint(i, d=2) for i in range(n)]
        compiled = compile_workflow(goal, constraints)
        sweep.append({
            "N": n,
            "tree": compiled.applied_size,
            "dag": compiled.applied_dag_size,
            "sharing": round(compiled.sharing_ratio, 2),
        })

    goal = _pair_goal(MAX_N)
    constraints = [_width_d_constraint(i, d=2) for i in range(MAX_N)]
    cold_s = time_best_of(lambda: compile_workflow(goal, constraints))

    cache = CompileCache(tmp_path / "compile-cache")
    reference = compile_workflow(goal, constraints, cache=cache)
    warm_s = time_best_of(lambda: compile_workflow(goal, constraints, cache=cache))

    with interning(False):
        uninterned = compile_workflow(goal, constraints)
    equivalent = (uninterned.applied == reference.applied
                  and uninterned.goal == reference.goal)

    largest = sweep[-1]
    _RESULTS = {
        "benchmark": "sharing",
        "workload": (
            "E3b: 7 concurrent event pairs + serial pad; "
            "N width-2 disjunctive order constraints"
        ),
        "sweep": sweep,
        "cache": {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "speedup": round(cold_s / warm_s, 2),
            "hits": cache.hits,
            "misses": cache.misses,
        },
        "gates": {
            "dag_5x_below_tree": largest["dag"] * 5 <= largest["tree"],
            "warm_10x_faster": warm_s * 10 <= cold_s,
            "interning_equivalent": equivalent,
        },
    }
    return _RESULTS


def test_s1a_dag_absorbs_the_blowup(benchmark, tmp_path):
    results = _measure(tmp_path)
    rows = [[r["N"], r["tree"], r["dag"], r["sharing"]] for r in results["sweep"]]
    largest = results["sweep"][-1]

    goal = _pair_goal(MAX_N)
    constraints = [_width_d_constraint(i, d=2) for i in range(MAX_N)]
    benchmark(lambda: compile_workflow(goal, constraints))

    save_table(
        "S1_sharing",
        render_table(
            "S1: tree vs DAG size of Apply(C,G) under hash-consing (E3b workload)",
            ["N", "tree |Apply|", "dag |Apply|", "sharing"],
            rows,
            note=f"cache: cold {results['cache']['cold_s']*1e3:.1f}ms, "
            f"warm {results['cache']['warm_s']*1e3:.1f}ms "
            f"({results['cache']['speedup']:.1f}x); Theorem 5.11's d^N factor "
            "lives in the tree measure — sharing absorbs it.",
        ),
    )
    assert largest["dag"] * 5 <= largest["tree"], (
        f"expected >=5x sharing at N={MAX_N}, got "
        f"tree={largest['tree']} dag={largest['dag']}"
    )


def test_s1b_warm_cache_is_10x_faster(tmp_path):
    results = _measure(tmp_path)
    cache = results["cache"]
    assert cache["hits"] >= 1 and cache["misses"] >= 1
    assert cache["warm_s"] * 10 <= cache["cold_s"], (
        f"expected warm cache >=10x faster, got cold {cache['cold_s']:.4f}s "
        f"warm {cache['warm_s']:.4f}s ({cache['speedup']:.1f}x)"
    )


def test_s1c_interning_is_a_pure_representation_change(tmp_path):
    results = _measure(tmp_path)
    assert results["gates"]["interning_equivalent"], (
        "compiling with interning disabled produced a structurally "
        "different goal"
    )


def test_s1d_emit_json(tmp_path):
    results = _measure(tmp_path)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_sharing.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
    assert all(results["gates"].values()), results["gates"]
