"""E4: Theorem 5.11(2) — Excise runs in time proportional to |Apply(C, G)|.

The sweep grows the compiled goal two ways — larger graphs at fixed
constraints, and more width-2 constraints over a fixed graph (which grows
the output exponentially) — and regresses Excise wall-time against the
size of its input. The paper claims proportionality, i.e. a power-law
exponent ≈ 1 of time versus |Apply(C, G)|.
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_power_law, render_table
from repro.constraints.algebra import disj, order
from repro.core.apply import apply_all
from repro.core.excise import excise
from repro.ctr.formulas import event_names as _names
from repro.ctr.formulas import goal_size
from repro.graph.generators import random_goal


def _workloads():
    """(label, applied_goal) pairs spanning two orders of magnitude of size."""
    out = []
    # Graph-size driven growth (d = 1).
    for n in (40, 80, 160, 320, 640):
        goal = random_goal(n, seed=5, p_choice=0.0)
        events = sorted(_names(goal))
        constraints = [order(events[0], events[-1]), order(events[2], events[-3])]
        out.append((f"graph n={n}", apply_all(constraints, goal)))
    # Constraint-count driven growth (d = 2): output doubles per constraint.
    from repro.ctr.formulas import Atom, par, seq

    for n_constraints in (2, 4, 6, 8):
        pairs = [(f"p{i}", f"q{i}") for i in range(n_constraints)]
        goal = seq(par(*(Atom(e) for pair in pairs for e in pair)), Atom("pad"))
        constraints = [disj(order(a, b), order(b, a)) for a, b in pairs]
        out.append((f"width-2 N={n_constraints}", apply_all(constraints, goal)))
    return out


def test_e4_excise_time_proportional_to_apply_size(benchmark):
    rows = []
    xs, ys = [], []
    for label, applied in _workloads():
        size = goal_size(applied)
        seconds = time_best_of(lambda: excise(applied), repeats=3)
        rows.append([label, size, seconds * 1e3])
        xs.append(float(size))
        ys.append(seconds)
    exponent, r2 = fit_power_law(xs, ys)

    representative = _workloads()[3][1]
    benchmark(lambda: excise(representative))

    save_table(
        "E4_excise_time",
        render_table(
            "E4: Excise wall-time vs |Apply(C,G)|",
            ["workload", "|Apply(C,G)|", "excise ms"],
            rows,
            note=f"power-law fit: time ∝ size^{exponent:.3f} (r²={r2:.4f}); "
            "paper: Excise time is proportional to the size of Apply(C,G).",
        ),
    )
    assert 0.7 < exponent < 1.6, f"expected ~proportional, got exponent {exponent}"
