"""E8: the verification workbench (Theorems 5.9 and 5.10) on real workflows.

For every example specification shipped with the library, run the full
analysis a workflow designer would: consistency, a battery of property
verifications (with counterexample extraction on failure), and redundancy
detection. The table records outcomes and timings; the assertions pin the
expected verdicts.
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.constraints.algebra import absent, disj, must, order
from repro.constraints.klein import klein_order
from repro.core.compiler import compile_workflow
from repro.core.verify import redundant_constraints, verify_property
from repro.workflows.figure1 import figure1_constraints, figure1_goal
from repro.workflows.orders import PAYMENT, SHIPPING, orders_specification
from repro.workflows.registration import registration_specification
from repro.workflows.trip import trip_specification


def _suite():
    """(name, goal, constraints, rules, [(property name, prop, expected)])"""
    from repro.workflows.claims import claims_specification
    from repro.workflows.release import release_specification

    reg_goal, reg_constraints, reg_rules = registration_specification()
    trip_goal, trip_constraints = trip_specification()
    orders_goal, orders_constraints = orders_specification()
    claims_goal_, claims_constraints_ = claims_specification()
    release_goal_, release_constraints_ = release_specification()
    extra = [
        (
            "claims",
            claims_goal_,
            claims_constraints_,
            None,
            [
                ("fraud never paid",
                 disj(absent("flag_fraud"), absent("transfer_funds")), True),
                ("every claim settles", must("transfer_funds"), False),
            ],
        ),
        (
            "release",
            release_goal_,
            release_constraints_,
            None,
            [
                ("review gates promote",
                 disj(absent("promote"), order("review_signoff", "promote")), True),
                ("always announced", must("announce"), False),
            ],
        ),
    ]
    return extra + [
        (
            "figure1",
            figure1_goal(),
            figure1_constraints(),
            None,
            [
                ("k always last", order("a", "k"), True),
                # f requires h (existence), and h lives on the branch that
                # excludes e — so e and f can indeed never co-occur.
                ("e excludes f", disj(absent("e"), absent("f")), True),
                ("d excludes g", disj(absent("d"), absent("g")), False),
            ],
        ),
        (
            "trip",
            trip_goal,
            trip_constraints,
            None,
            [
                ("hotel before charge", order("book_hotel", "charge_card"), True),
                ("always ticketed", must("issue_ticket"), False),
            ],
        ),
        (
            "orders",
            orders_goal,
            orders_constraints,
            None,
            [
                (
                    "no shipping commit after payment abort",
                    disj(absent(PAYMENT.abort), absent(SHIPPING.commit)),
                    True,
                ),
                ("payment always commits", must(PAYMENT.commit), False),
            ],
        ),
        (
            "registration",
            reg_goal,
            reg_constraints,
            reg_rules,
            [
                ("tuition always paid", must("pay_tuition"), True),
                (
                    "plan signed before offers",
                    klein_order("sign_plan", "accept_offer"),
                    True,
                ),
            ],
        ),
    ]


def test_e8_verification_workbench(benchmark):
    rows = []
    for name, goal, constraints, rules, properties in _suite():
        compile_ms = time_best_of(
            lambda: compile_workflow(goal, constraints, rules=rules), repeats=3
        ) * 1e3
        compiled = compile_workflow(goal, constraints, rules=rules)
        assert compiled.consistent

        for prop_name, prop, expected in properties:
            seconds = time_best_of(
                lambda: verify_property(goal, constraints, prop, rules=rules),
                repeats=3,
            )
            result = verify_property(goal, constraints, prop, rules=rules)
            assert result.holds == expected, f"{name}: {prop_name}"
            if not result.holds:
                assert result.witness is not None
            rows.append(
                [
                    name,
                    prop_name,
                    "holds" if result.holds else "fails+witness",
                    seconds * 1e3,
                    compile_ms,
                ]
            )

        redundant = redundant_constraints(goal, constraints, rules=rules)
        rows.append(
            [name, "(redundancy scan)", f"{len(redundant)}/{len(constraints)} redundant",
             "-", compile_ms]
        )

    goal, constraints = trip_specification()
    benchmark(lambda: verify_property(goal, constraints, must("issue_ticket")))

    save_table(
        "E8_verification",
        render_table(
            "E8: verification & redundancy on the example workflow suite",
            ["workflow", "property", "outcome", "verify ms", "compile ms"],
            rows,
            note="Theorem 5.9: failed properties come with the most general "
            "counterexample; Theorem 5.10: redundancy via re-verification.",
        ),
    )
