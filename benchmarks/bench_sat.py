"""E5: Proposition 4.1 — NP-completeness of verification/consistency.

Two sides of the proposition:

* **E5a** — hardness: consistency checking solves random 3-SAT near the
  phase transition (clause/variable ratio ≈ 4.3). Median decision time
  grows super-polynomially with the variable count; the reduction uses
  *existence constraints only* ("synchronization per se is not the
  culprit").
* **E5b** — the tractable fragment: with *order constraints only*
  (d = 1), the whole pipeline is polynomial — measured time versus graph
  size fits a low-degree power law.
"""

import statistics

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_exponential, fit_power_law, render_table
from repro.analysis.sat import brute_force_sat, cnf_to_workflow, random_cnf
from repro.constraints.algebra import order
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import goal_size
from repro.graph.generators import parallel_chains


def test_e5a_consistency_solves_3sat(benchmark):
    rows = []
    xs, ys = [], []
    for n_vars in (4, 6, 8, 10, 12):
        n_clauses = round(4.3 * n_vars)
        times = []
        sat_count = 0
        for seed in range(5):
            cnf = random_cnf(n_vars, n_clauses, seed=seed)
            goal, constraints = cnf_to_workflow(cnf)
            seconds = time_best_of(
                lambda: compile_workflow(goal, constraints).consistent, repeats=1
            )
            times.append(seconds)
            consistent = compile_workflow(goal, constraints).consistent
            sat_count += consistent
            # Ground truth: the reduction is exact.
            assert consistent == (brute_force_sat(cnf) is not None)
        median = statistics.median(times)
        rows.append([n_vars, n_clauses, f"{sat_count}/5", median * 1e3])
        xs.append(float(n_vars))
        ys.append(median)
    base, r2 = fit_exponential(xs, ys)

    cnf = random_cnf(8, 34, seed=0)
    goal, constraints = cnf_to_workflow(cnf)
    benchmark(lambda: compile_workflow(goal, constraints).consistent)

    save_table(
        "E5a_np_hardness",
        render_table(
            "E5a: consistency checking on random 3-SAT (ratio 4.3)",
            ["vars", "clauses", "SAT", "median ms"],
            rows,
            note=f"semi-log fit: time ∝ {base:.2f}^n (r²={r2:.3f}); existence "
            "constraints only, matching Prop 4.1's NP-hardness source.",
        ),
    )
    assert base > 1.3, f"expected super-polynomial growth, got base {base}"
    assert ys[-1] > ys[0], "largest instances should dominate"


def test_e5b_order_constraints_are_polynomial(benchmark):
    rows = []
    xs, ys = [], []
    for width in (2, 4, 8, 16, 32):
        goal = parallel_chains(width, 4)
        # One order constraint per chain pair: strictly d = 1 workload.
        constraints = [
            order(f"t{i}_1", f"t{i + 1}_1") for i in range(1, width)
        ]
        seconds = time_best_of(
            lambda: compile_workflow(goal, constraints).consistent, repeats=3
        )
        rows.append([width, goal_size(goal), len(constraints), seconds * 1e3])
        xs.append(float(goal_size(goal)))
        ys.append(seconds)
    exponent, r2 = fit_power_law(xs, ys)

    goal = parallel_chains(8, 4)
    constraints = [order(f"t{i}_1", f"t{i + 1}_1") for i in range(1, 8)]
    benchmark(lambda: compile_workflow(goal, constraints).consistent)

    save_table(
        "E5b_order_polynomial",
        render_table(
            "E5b: consistency with order constraints only (d=1)",
            ["width", "|G|", "N", "time ms"],
            rows,
            note=f"power-law fit: time ∝ |G|^{exponent:.2f} (r²={r2:.3f}); "
            "paper: for order constraints verification is polynomial.",
        ),
    )
    assert exponent < 3.0, f"expected polynomial, got exponent {exponent}"
