"""E1 + E2: the paper's own worked artifacts.

E1 — Figure 1 / formula (1): the control flow graph round-trips through
the concurrent-Horn encoding, compiles consistently with the global
constraints, and every allowed execution satisfies them.

E2 — Example 5.7: compiling the three conditional-order constraints into
``γ ⊗ (η ∨ (α|β|η))`` leaves exactly ``G₂ = γ ⊗ η`` after Excise (the
``α|β|η`` alternative is a knot).
"""

from conftest import save_table

from repro.analysis.metrics import render_table
from repro.constraints.satisfy import satisfies
from repro.core.apply import apply_all
from repro.core.compiler import compile_workflow
from repro.core.excise import excise
from repro.ctr.formulas import atoms, goal_size
from repro.ctr.pretty import pretty
from repro.workflows.figure1 import (
    example_5_7,
    figure1_constraints,
    figure1_goal,
)


def test_e1_figure1_compilation(benchmark):
    goal = figure1_goal()
    constraints = figure1_constraints()

    compiled = benchmark(lambda: compile_workflow(goal, constraints))

    assert compiled.consistent
    schedules = list(compiled.schedules())
    for schedule in schedules:
        for constraint in constraints:
            assert satisfies(schedule, constraint)

    unconstrained = len(list(compile_workflow(goal).schedules()))
    rows = [
        ["|G| (formula (1))", goal_size(goal)],
        ["|Apply(C, G)|", compiled.applied_size],
        ["|Excise(Apply(C, G))|", compiled.compiled_size],
        ["executions of G", unconstrained],
        ["allowed executions of G ∧ C", len(schedules)],
    ]
    save_table(
        "E1_figure1",
        render_table(
            "E1: Figure 1 workflow, compiled with its global constraints",
            ["quantity", "value"],
            rows,
            note="paper: Apply produces an executable concurrent-Horn goal whose "
            "executions are exactly the constraint-satisfying ones.",
        ),
    )


def test_e2_example_5_7(benchmark):
    goal, constraints = example_5_7()
    gamma, eta = atoms("gamma eta")

    compiled = benchmark(lambda: compile_workflow(goal, constraints))

    assert compiled.goal == gamma >> eta, "Excise must leave exactly G2 = γ ⊗ η"

    # Reproduce the intermediate staging of Example 5.7 for the record.
    rows = [["original G", pretty(goal)]]
    for i in range(1, len(constraints) + 1):
        stage = apply_all(constraints[:i], goal)
        rows.append([f"Apply(c1..c{i}, G)", pretty(stage)])
    rows.append(["Excise(...)", pretty(excise(apply_all(constraints, goal)))])
    save_table(
        "E2_example_5_7",
        render_table(
            "E2: Example 5.7 — knot excision",
            ["stage", "goal"],
            rows,
            note="paper: Excise(Apply(c1 ∧ c2 ∧ c3, G)) ≡ G2 = γ ⊗ η "
            "(the α|β|η branch deadlocks on its send/receive cycle).",
        ),
    )
