"""S2: parallel verification — DNF fan-out, batch verify, early exit.

Workload: the Theorem 5.11 sweep (seven concurrent event pairs plus a
serial pad) under N = 7 width-2 disjunctive order constraints, i.e.
2^7 = 128 pure-conjunctive branches. Three gates:

* **S2a** — *zero divergence*: ``jobs=4`` returns results identical to
  ``jobs=1`` (holds, counterexample, witness) for the whole property
  batch, and the fan-out consistency probe agrees with the monolithic
  compile on consistent and inconsistent specifications alike. Runs on
  any machine.
* **S2b** — *speedup*: the 16-property batch verifies at least 2× faster
  at ``jobs=4`` than sequentially. Requires ≥4 cores (CI); skipped on
  smaller machines, where there is no parallelism to measure.
* **S2c** — *early exit*: a consistent specification is decided after
  examining one branch, pruning the other 127 — the fan-out's answer to
  the Proposition 4.1 exponent. Runs on any machine (pruning is a
  counter, not a timing).

The sweep is saved machine-readably as ``results/BENCH_parallel.json``
(consumed by CI).
"""

from __future__ import annotations

import json
import os

import pytest

from bench_apply_size import _PAIRS, _pair_goal, _width_d_constraint
from conftest import RESULTS_DIR, save_table, time_best_of

from repro.analysis.metrics import render_table
from repro.constraints.algebra import disj, must, order
from repro.core.parallel import check_consistency, shutdown_pool
from repro.core.verify import verify_properties

N_CONSTRAINTS = 7  # 2^7 = 128 DNF branches; ISSUE gate wants N >= 6
JOBS_SWEEP = [1, 2, 4]
_RESULTS: dict | None = None


def _workload():
    goal = _pair_goal(7, padding=6)
    constraints = [_width_d_constraint(i, d=2) for i in range(N_CONSTRAINTS)]
    # 16 properties that all hold: each forces the full (inconsistent)
    # G ∧ C ∧ ¬Φ compile, so every batch item is maximal, uniform work.
    props = (
        [disj(order(a, b), order(b, a)) for a, b in _PAIRS[:7]]
        + [must(f"pad{i}") for i in range(6)]
        + [order("pad0", "pad3"), order("pad1", "pad4"), order("pad2", "pad5")]
    )
    return goal, constraints, props


def _measure() -> dict:
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS

    goal, constraints, props = _workload()

    # --- divergence: jobs=4 must reproduce the sequential batch exactly.
    sequential = verify_properties(goal, constraints, props, jobs=1)
    fanned = verify_properties(goal, constraints, props, jobs=4)
    identical = sequential == fanned

    consistent_seq = check_consistency(goal, constraints, jobs=1)
    consistent_par = check_consistency(goal, constraints, jobs=4)
    impossible = constraints + [must("nonexistent")]
    inconsistent_seq = check_consistency(goal, impossible, jobs=1)
    inconsistent_par = check_consistency(goal, impossible, jobs=4)
    probe_agrees = (
        consistent_seq.consistent
        and consistent_par.consistent
        and not inconsistent_seq.consistent
        and not inconsistent_par.consistent
    )

    # --- timing sweep over the jobs knob (pool pre-warmed per size so the
    # one-time fork cost is not billed to the measured batch).
    sweep = []
    base_s = None
    for jobs in JOBS_SWEEP:
        verify_properties(goal, constraints, props[:1], jobs=jobs)  # warm pool
        batch_s = time_best_of(
            lambda jobs=jobs: verify_properties(goal, constraints, props,
                                                jobs=jobs),
            repeats=3,
        )
        if base_s is None:
            base_s = batch_s
        sweep.append({
            "jobs": jobs,
            "batch_s": round(batch_s, 6),
            "speedup": round(base_s / batch_s, 2),
        })
    shutdown_pool()

    # --- early exit: the consistent spec needs exactly one of 128 branches.
    stats = consistent_seq.stats
    fanout = {
        "disjuncts_total": stats.disjuncts_total,
        "examined": stats.examined,
        "pruned": stats.pruned,
        "early_exit": stats.early_exit,
    }

    speedup_at_4 = sweep[-1]["speedup"]
    _RESULTS = {
        "benchmark": "parallel",
        "workload": (
            f"7 concurrent event pairs + 6-event serial pad; "
            f"{N_CONSTRAINTS} width-2 disjunctive order constraints "
            f"(2^{N_CONSTRAINTS} = {2 ** N_CONSTRAINTS} DNF branches); "
            f"{len(props)}-property batch"
        ),
        "cpu_count": os.cpu_count(),
        "properties": len(props),
        "sweep": sweep,
        "fanout": fanout,
        "divergence": {
            "properties_checked": len(props),
            "batch_identical": identical,
            "probe_agrees": probe_agrees,
        },
        "gates": {
            "zero_divergence": identical and probe_agrees,
            "speedup_2x_at_4": (
                speedup_at_4 >= 2.0 if (os.cpu_count() or 1) >= 4 else None
            ),
            "early_exit_prunes": stats.early_exit and stats.pruned >= 100,
        },
    }
    return _RESULTS


def test_s2a_zero_divergence(benchmark):
    results = _measure()
    assert results["divergence"]["batch_identical"], (
        "jobs=4 returned a different VerificationResult batch than jobs=1"
    )
    assert results["divergence"]["probe_agrees"], (
        "fan-out consistency probe disagrees with the monolithic compile"
    )

    goal, constraints, props = _workload()
    benchmark(lambda: verify_properties(goal, constraints, props[:2]))

    rows = [[r["jobs"], round(r["batch_s"] * 1e3, 1), r["speedup"]]
            for r in results["sweep"]]
    save_table(
        "S2_parallel",
        render_table(
            "S2: batch verification wall time vs jobs "
            f"({results['properties']} properties, "
            f"2^{N_CONSTRAINTS} DNF branches)",
            ["jobs", "batch ms", "speedup"],
            rows,
            note=f"cpu_count={results['cpu_count']}; early exit examined "
            f"{results['fanout']['examined']}/"
            f"{results['fanout']['disjuncts_total']} branches on the "
            "consistent probe. Proposition 4.1 puts the exponent in N; "
            "the fan-out buys back a core-count factor of it.",
        ),
    )


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup gate needs >=4 cores (measured in CI)")
def test_s2b_speedup_2x_at_jobs4():
    results = _measure()
    at4 = next(r for r in results["sweep"] if r["jobs"] == 4)
    assert at4["speedup"] >= 2.0, (
        f"expected >=2x speedup at jobs=4, got {at4['speedup']:.2f}x "
        f"(sequential {results['sweep'][0]['batch_s']:.3f}s, "
        f"jobs=4 {at4['batch_s']:.3f}s)"
    )


def test_s2c_early_exit_prunes_the_branch_space():
    results = _measure()
    fanout = results["fanout"]
    assert fanout["early_exit"], "consistent probe should stop at first hit"
    assert fanout["examined"] < fanout["disjuncts_total"]
    assert fanout["pruned"] >= 100, (
        f"expected >=100 of {fanout['disjuncts_total']} branches pruned, "
        f"got {fanout['pruned']}"
    )


def test_s2d_emit_json():
    results = _measure()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_parallel.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
