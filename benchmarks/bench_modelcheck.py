"""E7: Apply vs explicit-state model checking (Section 6).

"Standard model checking techniques are worst-case exponential in the
size of the control flow graph — the state-explosion problem. In
contrast, Apply is linear in the size of the graph."

The sweep widens a parallel workflow (``parallel_chains(w, L)``) while
verifying one Klein order property, and measures

* the states explored by the explicit-state checker (grows combinatorially
  with the width), and
* the size of Apply's output and the Apply-based verification time (grow
  linearly with the graph).
"""

from conftest import save_table, time_best_of

from repro.analysis.metrics import fit_exponential, fit_power_law, render_table
from repro.baselines.modelcheck import model_check_property
from repro.constraints.klein import klein_order
from repro.core.verify import verify_property
from repro.core.compiler import compile_workflow
from repro.ctr.formulas import goal_size
from repro.graph.generators import parallel_chains


def test_e7_state_explosion_vs_apply(benchmark):
    length = 3
    # A property that *holds* (chain order is structural), so the model
    # checker must exhaust the whole interleaving space to conclude it —
    # the worst case the state-explosion argument is about.
    prop = klein_order("t1_1", "t1_2")
    background = []
    rows = []
    widths = [1, 2, 3, 4, 5]
    apply_xs, apply_ys = [], []
    mc_states = []
    for width in widths:
        goal = parallel_chains(width, length)
        size = goal_size(goal)

        apply_seconds = time_best_of(
            lambda: verify_property(goal, background, prop), repeats=3
        )
        compiled = compile_workflow(goal, [prop])
        mc = model_check_property(goal, background, prop)
        mc_seconds = time_best_of(
            lambda: model_check_property(goal, background, prop), repeats=1
        )

        rows.append(
            [width, size, compiled.applied_size, apply_seconds * 1e3,
             mc.states_explored, mc_seconds * 1e3]
        )
        apply_xs.append(float(size))
        apply_ys.append(float(compiled.applied_size))
        mc_states.append(float(mc.states_explored))

    apply_k, apply_r2 = fit_power_law(apply_xs, apply_ys)
    mc_base, mc_r2 = fit_exponential([float(w) for w in widths], mc_states)

    goal = parallel_chains(3, 3)
    benchmark(lambda: verify_property(goal, background, prop))

    save_table(
        "E7_state_explosion",
        render_table(
            "E7: verification via Apply vs explicit-state model checking",
            ["width", "|G|", "|Apply|", "Apply ms", "MC states", "MC ms"],
            rows,
            note=(
                f"Apply output ∝ |G|^{apply_k:.2f} (r²={apply_r2:.3f}) — linear in "
                f"the graph; model-checker states ∝ {mc_base:.2f}^width "
                f"(r²={mc_r2:.3f}) — the state-explosion problem."
            ),
        ),
    )
    assert apply_k < 1.3, f"Apply must stay linear in |G|, got exponent {apply_k:.2f}"
    assert mc_base > 2.0, f"model checker should explode with width, got base {mc_base:.2f}"
    # Both sides agree on the verdict, of course.
    assert model_check_property(parallel_chains(3, 2), [], prop).holds == bool(
        verify_property(parallel_chains(3, 2), [], prop)
    )
