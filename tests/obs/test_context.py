"""Trace context: id minting, header wire format, in-process carrier."""

from repro.obs.context import (
    TRACE_HEADER,
    IdSource,
    TraceContext,
    current_trace_context,
    format_trace_header,
    parse_trace_header,
    reset_trace_context,
    set_trace_context,
    use_trace_context,
)


class TestIdSource:
    def test_seeded_sources_mint_identical_streams(self):
        a, b = IdSource(seed=7), IdSource(seed=7)
        assert [a.trace_id(), a.span_id(), a.request_id()] == [
            b.trace_id(), b.span_id(), b.request_id()
        ]

    def test_different_seeds_diverge(self):
        assert IdSource(seed=1).trace_id() != IdSource(seed=2).trace_id()

    def test_id_shapes(self):
        ids = IdSource(seed=0)
        trace_id, span_id = ids.trace_id(), ids.span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert trace_id == trace_id.lower()


class TestHeaderFormat:
    def test_roundtrip(self):
        ids = IdSource(seed=3)
        ctx = TraceContext(trace_id=ids.trace_id(), span_id=ids.span_id())
        assert parse_trace_header(format_trace_header(ctx)) == ctx
        assert format_trace_header(ctx).startswith("00-")
        assert format_trace_header(ctx).endswith("-01")

    def test_header_name(self):
        assert TRACE_HEADER == "X-Repro-Trace"

    def test_malformed_headers_drop_to_none(self):
        good = format_trace_header(
            TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        )
        assert parse_trace_header(good) is not None
        for bad in [
            None,
            "",
            "garbage",
            "00-abc-def-01",                       # wrong lengths
            good.replace("00-", "ff-"),            # unknown version
            good.replace("ab", "zz"),              # non-hex
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
            good + "-extra",
        ]:
            assert parse_trace_header(bad) is None, bad

    def test_parse_tolerates_whitespace_and_case(self):
        ctx = TraceContext(trace_id="AB" * 16, span_id="CD" * 8)
        parsed = parse_trace_header(" " + format_trace_header(ctx) + " ")
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16  # normalized to lowercase


class TestCarrier:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_set_and_reset(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        token = set_trace_context(ctx)
        try:
            assert current_trace_context() is ctx
        finally:
            reset_trace_context(token)
        assert current_trace_context() is None

    def test_use_trace_context_nests_and_restores(self):
        outer = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        inner = TraceContext(trace_id="ef" * 16, span_id="12" * 8)
        with use_trace_context(outer):
            assert current_trace_context() is outer
            with use_trace_context(inner):
                assert current_trace_context() is inner
            assert current_trace_context() is outer
        assert current_trace_context() is None
